"""Unit and property tests for energy/state accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.metrics import EnergyMeter, StateTimeline, TimeWeightedStat


class TestEnergyMeter:
    def test_constant_power_integration(self):
        m = EnergyMeter()
        m.set_power(0.0, 2.0, "active")
        m.advance(10.0)
        assert m.total() == pytest.approx(20.0)

    def test_power_change_mid_interval(self):
        m = EnergyMeter()
        m.set_power(0.0, 2.0, "active")
        m.set_power(5.0, 0.5, "idle")   # advances to 5 first
        m.advance(10.0)
        assert m.total() == pytest.approx(2.0 * 5 + 0.5 * 5)
        assert m.breakdown()["active"] == pytest.approx(10.0)
        assert m.breakdown()["idle"] == pytest.approx(2.5)

    def test_impulse(self):
        m = EnergyMeter()
        m.add_impulse(5.0, "spinup")
        assert m.total() == pytest.approx(5.0)
        assert m.breakdown() == {"spinup": 5.0}

    def test_negative_impulse_rejected(self):
        m = EnergyMeter()
        with pytest.raises(ValueError):
            m.add_impulse(-1.0, "x")

    def test_negative_power_rejected(self):
        m = EnergyMeter()
        with pytest.raises(ValueError):
            m.set_power(0.0, -2.0, "x")

    def test_total_with_projection(self):
        m = EnergyMeter()
        m.set_power(0.0, 1.0, "x")
        m.advance(4.0)
        assert m.total(upto=10.0) == pytest.approx(10.0)
        # projection does not mutate
        assert m.total() == pytest.approx(4.0)

    def test_rewind_is_clamped(self):
        m = EnergyMeter()
        m.set_power(0.0, 1.0, "x")
        m.advance(10.0)
        m.advance(5.0)          # no-op, never rewinds
        assert m.last_time == 10.0
        assert m.total() == pytest.approx(10.0)

    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 5)),
                    min_size=1, max_size=30))
    def test_total_is_nonnegative_and_monotone(self, steps):
        m = EnergyMeter()
        t = 0.0
        prev_total = 0.0
        for dt, watts in steps:
            t += dt
            m.set_power(t, watts, "b")
            total = m.total()
            assert total >= prev_total - 1e-9
            prev_total = total


class TestStateTimeline:
    def test_residency(self):
        tl = StateTimeline("idle", 0.0)
        tl.record(4.0, "active")
        tl.record(6.0, "idle")
        res = tl.residency(10.0)
        assert res["idle"] == pytest.approx(8.0)
        assert res["active"] == pytest.approx(2.0)

    def test_duplicate_states_coalesce(self):
        tl = StateTimeline("idle")
        tl.record(1.0, "idle")
        tl.record(2.0, "idle")
        assert len(tl) == 1

    def test_monotonicity_enforced(self):
        tl = StateTimeline("idle", 5.0)
        with pytest.raises(ValueError):
            tl.record(1.0, "active")

    def test_segments_clip_at_end(self):
        tl = StateTimeline("a", 0.0)
        tl.record(3.0, "b")
        segs = list(tl.segments(2.0))
        assert segs == [(0.0, 2.0, "a")]

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1,
                    max_size=40))
    def test_residency_sums_to_elapsed(self, states):
        tl = StateTimeline("a", 0.0)
        for i, s in enumerate(states):
            tl.record(float(i + 1), s)
        end = float(len(states) + 3)
        assert sum(tl.residency(end).values()) == pytest.approx(end)


class TestTimeWeightedStat:
    def test_mean(self):
        s = TimeWeightedStat()
        s.update(0.0, 2.0)
        s.update(10.0, 4.0)     # value was 2.0 for 10 s
        s.update(20.0, 0.0)     # value was 4.0 for 10 s
        assert s.mean() == pytest.approx(3.0)

    def test_mean_with_projection(self):
        s = TimeWeightedStat()
        s.update(0.0, 2.0)
        assert s.mean(now=5.0) == pytest.approx(2.0)

    def test_empty_mean_is_zero(self):
        assert TimeWeightedStat().mean() == 0.0

    def test_backwards_time_rejected(self):
        s = TimeWeightedStat()
        s.update(5.0, 1.0)
        with pytest.raises(ValueError):
            s.update(4.0, 1.0)
