"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim.engine import EventLoop, SimulationError


class TestScheduling:
    def test_schedule_at_and_run(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(2.0, lambda: fired.append(loop.now))
        loop.schedule_at(1.0, lambda: fired.append(loop.now))
        end = loop.run()
        assert fired == [1.0, 2.0]
        assert end == 2.0

    def test_schedule_after(self):
        loop = EventLoop(start_time=10.0)
        fired = []
        loop.schedule_after(5.0, lambda: fired.append(loop.now))
        loop.run()
        assert fired == [15.0]

    def test_schedule_into_past_rejected(self):
        loop = EventLoop(start_time=10.0)
        with pytest.raises(SimulationError):
            loop.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule_after(-1.0, lambda: None)

    def test_tiny_past_jitter_clamped(self):
        loop = EventLoop(start_time=1.0)
        event = loop.schedule_at(1.0 - 1e-12, lambda: None)
        assert event.time == 1.0

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        fired = []

        def first():
            fired.append("first")
            loop.schedule_after(1.0, lambda: fired.append("second"))

        loop.schedule_at(0.0, first)
        loop.run()
        assert fired == ["first", "second"]
        assert loop.now == 1.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule_at(1.0, lambda: fired.append("x"))
        event.cancel()
        loop.run()
        assert fired == []

    def test_pending_count_excludes_cancelled(self):
        loop = EventLoop()
        keep = loop.schedule_at(1.0, lambda: None)
        drop = loop.schedule_at(2.0, lambda: None)
        drop.cancel()
        assert loop.pending_count() == 1
        assert keep in list(loop.pending())


class TestRunUntil:
    def test_stops_at_deadline(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.0, lambda: fired.append(1))
        loop.schedule_at(5.0, lambda: fired.append(5))
        loop.run_until(3.0)
        assert fired == [1]
        assert loop.now == 3.0
        loop.run()
        assert fired == [1, 5]

    def test_deadline_in_past_keeps_clock(self):
        loop = EventLoop(start_time=10.0)
        assert loop.run_until(5.0) == 10.0


class TestSafety:
    def test_event_budget_circuit_breaker(self):
        loop = EventLoop(max_events=100)

        def reschedule():
            loop.schedule_after(0.001, reschedule)

        loop.schedule_at(0.0, reschedule)
        with pytest.raises(SimulationError, match="budget"):
            loop.run()

    def test_not_reentrant(self):
        loop = EventLoop()

        def nested():
            loop.run()

        loop.schedule_at(0.0, nested)
        with pytest.raises(SimulationError, match="re-entrant"):
            loop.run()


class TestDeterminism:
    def test_same_schedule_same_order(self):
        def run_once():
            loop = EventLoop()
            fired = []
            for i in range(50):
                loop.schedule_at((i * 7) % 10 * 0.1,
                                 lambda i=i: fired.append(i))
            loop.run()
            return fired

        assert run_once() == run_once()


class TestCounterConsistency:
    """The live/dead tallies must stay exact through every pop path."""

    @staticmethod
    def _dead_in_heap(loop):
        return sum(1 for e in loop._events if e.cancelled)

    def test_run_until_pops_cancelled_heads_consistently(self):
        loop = EventLoop()
        events = [loop.schedule_at(float(i), lambda: None)
                  for i in range(200)]
        # Cancel the earliest 80 (they sit at the heap head) plus a
        # scattering of later ones; stay under the compaction trigger.
        for e in events[:80]:
            e.cancel()
        assert loop.pending_count() == 120
        assert loop._cancelled == self._dead_in_heap(loop)

        # run_until sweeps past the cancelled heads without firing them.
        loop.run_until(99.5)
        assert loop.now == 99.5
        assert loop.pending_count() == 100
        assert loop._cancelled == self._dead_in_heap(loop)

        # Cancelling the bulk of the remainder crosses the compaction
        # threshold; the tally must reset with the purge, not double
        # count the heads run_until already discarded.
        for e in events[100:190]:
            e.cancel()
        assert loop.pending_count() == 10
        assert loop._cancelled == self._dead_in_heap(loop)
        fired = loop.run()
        assert fired == 199.0
        assert loop.pending_count() == 0
        assert loop._cancelled == 0

    def test_direct_and_loop_cancel_share_bookkeeping(self):
        loop = EventLoop()
        a = loop.schedule_at(1.0, lambda: None)
        b = loop.schedule_at(2.0, lambda: None)
        loop.cancel(a)
        b.cancel()
        b.cancel()  # idempotent: no double decrement
        assert loop.pending_count() == 0
        assert loop._cancelled == 2
        loop.run()
        assert loop.pending_count() == 0
        assert loop._cancelled == 0

    def test_cancel_after_fire_is_noop(self):
        loop = EventLoop()
        event = loop.schedule_at(1.0, lambda: None)
        loop.schedule_at(2.0, lambda: None)
        loop.run()
        event.cancel()  # fired already; counters must not move
        assert loop.pending_count() == 0
        assert loop._cancelled == 0
