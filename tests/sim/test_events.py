"""Unit tests for repro.sim.events ordering semantics."""

from repro.sim.events import (
    PRIORITY_DEVICE,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    Event,
)


class TestOrdering:
    def test_earlier_time_first(self):
        a = Event(time=1.0)
        b = Event(time=2.0)
        assert a < b

    def test_priority_breaks_time_ties(self):
        late = Event(time=1.0, priority=PRIORITY_LATE)
        device = Event(time=1.0, priority=PRIORITY_DEVICE)
        normal = Event(time=1.0, priority=PRIORITY_NORMAL)
        assert sorted([late, device, normal]) == [device, normal, late]

    def test_insertion_order_breaks_full_ties(self):
        first = Event(time=1.0)
        second = Event(time=1.0)
        assert first < second          # seq increments monotonically

    def test_callback_not_compared(self):
        # Events with uncomparable callbacks still sort.
        a = Event(time=1.0, callback=lambda: None)
        b = Event(time=1.0, callback=print)
        assert (a < b) or (b < a)


class TestCancel:
    def test_cancel_sets_flag(self):
        e = Event(time=0.0)
        assert not e.cancelled
        e.cancel()
        assert e.cancelled
