"""Unit tests for repro.sim.clock."""

import pytest

from repro.sim import clock


class TestUnits:
    def test_kb_mb_gb_are_binary(self):
        assert clock.KB == 1024
        assert clock.MB == 1024 ** 2
        assert clock.GB == 1024 ** 3

    def test_mbps_is_decimal_megabits(self):
        # 11 Mbps -> 1.375 MB/s, the Aironet figure that matters.
        assert clock.Mbps(11) == pytest.approx(1_375_000.0)

    def test_mbps_zero(self):
        assert clock.Mbps(0) == 0.0

    def test_mbps_negative_rejected(self):
        with pytest.raises(ValueError):
            clock.Mbps(-1)

    def test_mbps_vs_mbytes_gap(self):
        # The disk/WNIC bandwidth gap the paper leans on is ~25x.
        assert clock.MBps(35) / clock.Mbps(11) == pytest.approx(
            35e6 / 1.375e6)

    def test_mbytes_negative_rejected(self):
        with pytest.raises(ValueError):
            clock.MBps(-0.5)


class TestBytesPerSecond:
    def test_requires_exactly_one_unit(self):
        with pytest.raises(ValueError):
            clock.bytes_per_second()
        with pytest.raises(ValueError):
            clock.bytes_per_second(megabits=1, megabytes=1)

    def test_megabit_path(self):
        assert clock.bytes_per_second(megabits=8) == pytest.approx(1e6)

    def test_megabyte_path(self):
        assert clock.bytes_per_second(megabytes=2) == pytest.approx(2e6)


class TestSecondsToTransfer:
    def test_basic(self):
        assert clock.seconds_to_transfer(1_375_000, clock.Mbps(11)) == \
            pytest.approx(1.0)

    def test_zero_bytes_is_free(self):
        assert clock.seconds_to_transfer(0, 1.0) == 0.0
        # even with nonsense bandwidth
        assert clock.seconds_to_transfer(0, -5.0) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            clock.seconds_to_transfer(-1, 100.0)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            clock.seconds_to_transfer(10, 0.0)


class TestAlmostEqual:
    def test_within_eps(self):
        assert clock.almost_equal(1.0, 1.0 + 5e-10)

    def test_outside_eps(self):
        assert not clock.almost_equal(1.0, 1.001)
