"""Unit tests for seeded RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import DEFAULT_SEED, child_seed, make_rng


class TestChildSeed:
    def test_deterministic(self):
        assert child_seed(42, "disk") == child_seed(42, "disk")

    def test_distinct_names_distinct_seeds(self):
        assert child_seed(42, "disk") != child_seed(42, "wnic")

    def test_distinct_parents_distinct_seeds(self):
        assert child_seed(1, "disk") != child_seed(2, "disk")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            child_seed(42, "")

    def test_fits_in_63_bits(self):
        for name in ("a", "b", "layout", "trace:xmms"):
            assert 0 <= child_seed(DEFAULT_SEED, name) < 2 ** 63


class TestMakeRng:
    def test_named_streams_reproducible(self):
        a = make_rng(7, "x").random(8)
        b = make_rng(7, "x").random(8)
        assert np.array_equal(a, b)

    def test_named_streams_independent(self):
        a = make_rng(7, "x").random(8)
        b = make_rng(7, "y").random(8)
        assert not np.array_equal(a, b)

    def test_isolation_between_components(self):
        # Drawing extra values from one stream must not shift another.
        a1 = make_rng(7, "a")
        b1 = make_rng(7, "b")
        a1.random(100)          # extra draws
        first_b1 = b1.random()

        b2 = make_rng(7, "b")
        assert first_b1 == b2.random()

    def test_unnamed_stream(self):
        assert make_rng(5).random() == make_rng(5).random()
