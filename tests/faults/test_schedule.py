"""Unit tests for the deterministic fault schedule."""

import pytest

from repro.faults.schedule import (
    FALLBACK_RATES_BPS,
    FaultSchedule,
    FaultSpec,
    FaultSpecError,
    RateWindow,
)


class TestFaultSpec:
    def test_default_is_inert(self):
        spec = FaultSpec()
        assert not spec.enabled

    def test_any_rate_enables(self):
        assert FaultSpec(outage_rate=0.01).enabled
        assert FaultSpec(rate_flap_rate=0.01).enabled
        assert FaultSpec(spinup_fail_prob=0.1).enabled

    @pytest.mark.parametrize("kwargs", [
        {"outage_rate": -1.0},
        {"outage_mean": 0.0},
        {"spinup_fail_prob": 1.0},
        {"spinup_fail_prob": -0.1},
        {"network_retries": -1},
        {"network_timeout": 0.0},
        {"max_consecutive_spinup_failures": 0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(FaultSpecError):
            FaultSpec(**kwargs)


class TestFaultSpecParse:
    def test_parse_round_trip(self):
        spec = FaultSpec.parse(
            "outage-rate=0.01,outage-mean=15,network_retries=3")
        assert spec.outage_rate == 0.01
        assert spec.outage_mean == 15.0
        assert spec.network_retries == 3
        assert isinstance(spec.network_retries, int)

    def test_parse_empty_is_default(self):
        assert FaultSpec.parse("") == FaultSpec()

    def test_unknown_key_names_vocabulary(self):
        with pytest.raises(FaultSpecError, match="outage_rate"):
            FaultSpec.parse("bogus=1")

    def test_missing_equals_rejected(self):
        with pytest.raises(FaultSpecError, match="key=value"):
            FaultSpec.parse("outage-rate")

    def test_bad_value_rejected(self):
        with pytest.raises(FaultSpecError, match="outage_rate"):
            FaultSpec.parse("outage-rate=fast")

    def test_out_of_range_value_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultSpec.parse("spinup-fail-prob=2.0")


class TestScheduleGeneration:
    def test_deterministic_in_seed(self):
        spec = FaultSpec(outage_rate=0.01, rate_flap_rate=0.005,
                         spinup_fail_prob=0.3)
        a = FaultSchedule(spec, seed=42)
        b = FaultSchedule(spec, seed=42)
        assert a.outages == b.outages
        assert a.rate_windows == b.rate_windows
        assert a._spinup_failures == b._spinup_failures

    def test_seed_changes_timeline(self):
        spec = FaultSpec(outage_rate=0.05)
        a = FaultSchedule(spec, seed=1)
        b = FaultSchedule(spec, seed=2)
        assert a.outages != b.outages

    def test_outages_sorted_and_disjoint(self):
        spec = FaultSpec(outage_rate=0.1, outage_mean=10.0)
        sched = FaultSchedule(spec, seed=3)
        assert sched.outages
        for (a0, a1), (b0, _b1) in zip(sched.outages, sched.outages[1:], strict=False):
            assert a0 < a1 <= b0

    def test_rate_windows_use_fallback_rates(self):
        spec = FaultSpec(rate_flap_rate=0.05)
        sched = FaultSchedule(spec, seed=3)
        assert sched.rate_windows
        for window in sched.rate_windows:
            assert window.rate_bps in FALLBACK_RATES_BPS

    def test_consecutive_spinup_failures_capped(self):
        spec = FaultSpec(spinup_fail_prob=0.95,
                         max_consecutive_spinup_failures=3)
        sched = FaultSchedule(spec, seed=9)
        run = longest = 0
        for fail in sched._spinup_failures:
            run = run + 1 if fail else 0
            longest = max(longest, run)
        assert 0 < longest <= 3

    def test_inert_spec_yields_disabled_schedule(self):
        sched = FaultSchedule(FaultSpec(), seed=7)
        assert not sched.enabled
        assert not sched.affects_network
        assert not sched.affects_disk


class TestScheduleQueries:
    def make(self, **kwargs):
        return FaultSchedule(FaultSpec(), seed=0, **kwargs)

    def test_link_available_half_open(self):
        sched = self.make(outages=[(10.0, 20.0)])
        assert sched.link_available(9.999)
        assert not sched.link_available(10.0)
        assert not sched.link_available(19.999)
        assert sched.link_available(20.0)

    def test_outage_end(self):
        sched = self.make(outages=[(10.0, 20.0)])
        assert sched.outage_end(15.0) == 20.0
        assert sched.outage_end(5.0) == 5.0

    def test_outage_start_within(self):
        sched = self.make(outages=[(10.0, 20.0), (50.0, 60.0)])
        assert sched.outage_start_within(0.0, 5.0) is None
        assert sched.outage_start_within(0.0, 15.0) == 10.0
        assert sched.outage_start_within(30.0, 55.0) == 50.0
        assert sched.outage_start_within(10.0, 12.0) == 10.0

    def test_network_bandwidth_capped_in_window(self):
        sched = self.make(rate_windows=[RateWindow(10.0, 20.0, 1e6)])
        assert sched.network_bandwidth(5.0, 11e6) == 11e6
        assert sched.network_bandwidth(15.0, 11e6) == 1e6
        # A window never raises the rate above nominal.
        assert sched.network_bandwidth(15.0, 0.5e6) == 0.5e6

    def test_spinup_cursor_and_copy(self):
        sched = self.make(spinup_failures=[True, False, True])
        assert sched.next_spinup_fails() is True
        assert sched.next_spinup_fails() is False
        rewound = sched.copy()
        assert sched.next_spinup_fails() is True
        assert sched.next_spinup_fails() is False  # exhausted
        assert rewound.next_spinup_fails() is True  # cursor rewound

    def test_bad_explicit_outage_rejected(self):
        with pytest.raises(FaultSpecError):
            self.make(outages=[(10.0, 10.0)])
