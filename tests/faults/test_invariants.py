"""Unit tests for the strict-mode invariant checker."""

import pytest

from repro.core.policies import DiskOnlyPolicy
from repro.core.simulator import MobileSystem, ProgramSpec, ReplaySimulator
from repro.faults.invariants import (
    InvariantChecker,
    SimulationInvariantError,
    check_result,
)
from tests.conftest import make_trace


def _run_tiny():
    trace = make_trace([
        (1, 0, 4096, "read", 0.0),
        (1, 4096, 8192, "read", 1.0),
        (1, 12288, 4096, "read", 30.0),
    ])
    return ReplaySimulator([ProgramSpec(trace)], DiskOnlyPolicy(),
                           seed=1).run()


class TestErrorShape:
    def test_structured_fields(self):
        err = SimulationInvariantError("clock", "went backwards",
                                       {"now": 1.0, "previous": 2.0})
        assert err.check == "clock"
        assert err.context == {"now": 1.0, "previous": 2.0}
        assert "clock" in str(err)
        assert "now=1.0" in str(err)


class TestChecker:
    def test_clock_regression_raises(self):
        checker = InvariantChecker()
        env = MobileSystem(seed=0)
        checker.on_clock(5.0, env)
        with pytest.raises(SimulationInvariantError, match="clock"):
            checker.on_clock(1.0, env)

    def test_duplicate_record_raises(self):
        checker = InvariantChecker()
        checker.on_record("grep", 0, 4096)
        with pytest.raises(SimulationInvariantError, match="exactly-once"):
            checker.on_record("grep", 0, 4096)

    def test_non_causal_service_raises(self):
        checker = InvariantChecker()

        class Result:
            arrival = 10.0
            start = 5.0
            completion = 6.0
            energy = 0.1

        with pytest.raises(SimulationInvariantError, match="service-order"):
            checker.on_service(Result(), program="p", source="disk")

    def test_negative_service_energy_raises(self):
        checker = InvariantChecker()

        class Result:
            arrival = 0.0
            start = 0.0
            completion = 1.0
            energy = -1.0

        with pytest.raises(SimulationInvariantError, match="energy"):
            checker.on_service(Result(), program="p", source="disk")

    def test_missing_record_detected_at_end(self):
        checker = InvariantChecker()
        checker.on_record("grep", 0, 4096)
        result = _run_tiny()
        with pytest.raises(SimulationInvariantError, match="exactly-once"):
            checker.on_end(result, {"grep": (2, 8192)})


class TestCheckResult:
    def test_clean_run_passes(self):
        check_result(_run_tiny())

    def test_corrupted_device_meter_caught(self):
        """A tampered meter total must trip the conservation audit."""
        result = _run_tiny()
        result.disk_energy += 100.0
        with pytest.raises(SimulationInvariantError):
            check_result(result)

    def test_corrupted_breakdown_caught(self):
        result = _run_tiny()
        result.disk_breakdown["disk.active"] = \
            result.disk_breakdown.get("disk.active", 0.0) + 50.0
        with pytest.raises(SimulationInvariantError, match="breakdown"):
            check_result(result)


class TestStrictMode:
    def test_strict_replay_passes_all_policies(self):
        from repro.core.bluefs import BlueFSPolicy
        from repro.core.flexfetch import FlexFetchPolicy
        from repro.core.policies import WnicOnlyPolicy
        from repro.core.profile import profile_from_trace
        trace = make_trace([
            (1, i * 4096, 4096, "read", i * 2.0) for i in range(12)
        ])
        for policy in (DiskOnlyPolicy(), WnicOnlyPolicy(), BlueFSPolicy(),
                       FlexFetchPolicy(profile_from_trace(trace))):
            result = ReplaySimulator([ProgramSpec(trace)], policy, seed=1,
                                     strict=True).run()
            assert result.requests > 0

    def test_strict_passes_on_scenario_workload(self):
        """Strict mode stays silent on a real figure workload."""
        from repro.core.flexfetch import FlexFetchPolicy
        from repro.traces.synth.scenarios import build_scenario
        scenario = build_scenario("grep", seed=7)
        result = ReplaySimulator(
            list(scenario.programs),
            FlexFetchPolicy(scenario.profile), seed=7, strict=True).run()
        assert result.total_energy > 0
