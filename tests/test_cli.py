"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_tables_command(self):
        args = build_parser().parse_args(["tables"])
        assert args.command == "tables"

    def test_figure_command(self):
        args = build_parser().parse_args(
            ["figure", "fig2", "--panel", "a", "--csv"])
        assert args.figure == "fig2"
        assert args.panel == "a"
        assert args.csv

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_run_command(self):
        args = build_parser().parse_args(["run", "xmms"])
        assert args.workload == "xmms"

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "42", "tables"])
        assert args.seed == 42

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_tables_output(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Hitachi" in out
        assert "Cisco Aironet 350" in out
        assert "thunderbird" in out

    def test_run_workload(self, capsys):
        assert main(["run", "xmms"]) == 0
        out = capsys.readouterr().out
        assert "Disk-only" in out
        assert "FlexFetch" in out
        assert "J" in out


class TestTraceExport:
    def test_jsonl_export(self, tmp_path, capsys):
        out = tmp_path / "x.jsonl"
        assert main(["trace", "xmms", "--out", str(out)]) == 0
        from repro.traces.io import load_trace_jsonl
        trace = load_trace_jsonl(out)
        assert trace.name == "xmms"
        assert "wrote" in capsys.readouterr().out

    def test_csv_export(self, tmp_path):
        out = tmp_path / "x.csv"
        assert main(["trace", "xmms", "--out", str(out),
                     "--format", "csv"]) == 0
        from repro.traces.io import load_trace_csv
        assert len(load_trace_csv(out)) > 0

    def test_strace_export_parses_back(self, tmp_path):
        out = tmp_path / "x.strace"
        assert main(["trace", "xmms", "--out", str(out),
                     "--format", "strace"]) == 0
        from repro.traces.strace import parse_strace_file
        trace = parse_strace_file(out)
        assert len(trace) > 0


class TestInspect:
    def test_inspect_scenario(self, capsys):
        assert main(["inspect", "mplayer"]) == 0
        out = capsys.readouterr().out
        assert "trace mplayer" in out
        assert "gap structure" in out

    def test_inspect_composite(self, capsys):
        assert main(["inspect", "grep+make+xmms"]) == 0
        out = capsys.readouterr().out
        assert "disk-pinned" in out


class TestFaultFlags:
    def test_run_accepts_fault_flags(self):
        args = build_parser().parse_args(
            ["run", "xmms", "--faults", "outage-rate=0.01", "--strict"])
        assert args.faults == "outage-rate=0.01"
        assert args.strict

    def test_faults_subcommand(self):
        args = build_parser().parse_args(
            ["faults", "xmms", "--rates", "0,0.01", "--csv"])
        assert args.command == "faults"
        assert args.rates == "0,0.01"
        assert args.csv

    def test_faulted_run_executes(self, capsys):
        assert main(["run", "xmms", "--faults",
                     "outage-rate=0.01,spinup-fail-prob=0.2",
                     "--strict"]) == 0
        out = capsys.readouterr().out
        assert "FlexFetch" in out


class TestExitCodes:
    """Every failure path exits nonzero with a one-line message —
    never a raw traceback."""

    def test_unknown_workload_exits_2(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["run", "nope"])
        assert info.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_bad_fault_spec_exits_1(self, capsys):
        assert main(["run", "xmms", "--faults", "bogus=1"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("flexfetch: error:")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_unwritable_output_exits_1(self, capsys):
        assert main(["trace", "xmms", "--out",
                     "/nonexistent-dir/x.jsonl"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("flexfetch: error:")
        assert "Traceback" not in err

    def test_faults_unknown_workload_exits_2(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["faults", "nope"])
        assert info.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_faults_bad_rates_exits_2(self, capsys):
        assert main(["faults", "xmms", "--rates", "fast,slow"]) == 2
        assert "--rates" in capsys.readouterr().err

    def test_faults_negative_rate_exits_2(self, capsys):
        assert main(["faults", "xmms", "--rates", "-0.5"]) == 2
        assert "non-negative" in capsys.readouterr().err

    def test_unknown_subcommand_exits_2(self):
        with pytest.raises(SystemExit) as info:
            main(["frobnicate"])
        assert info.value.code == 2

    def test_trace_validation_error_is_one_line(self, capsys):
        """A TraceValidationError escaping a handler becomes the
        standard one-line stderr message, not a traceback."""
        from unittest import mock
        from repro.traces.io import TraceValidationError
        with mock.patch("repro.cli._cmd_tables",
                        side_effect=TraceValidationError(3, "size is NaN")):
            assert main(["tables"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("flexfetch: error:")
        assert "record 3" in err
        assert "Traceback" not in err
