"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXIT_PARTIAL, build_parser, main
from repro.core.policies import DiskOnlyPolicy
from repro.core.simulator import ProgramSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FIGURES, FigureResult
from repro.experiments.runner import ProgramSet, run_sweep
from tests.conftest import make_trace


class _BoomFactory:
    """Policy factory that always fails (sweep failure-path tests)."""

    def __call__(self):
        raise RuntimeError("boom in worker")


def _tiny_figure(factories):
    """A FIGURES-compatible builder over a 1x2 grid of tiny cells."""

    def build(config, *, panels="ab", progress=None, workers=1,
              cache=None, executor=None):
        tiny = ExperimentConfig(seed=config.seed,
                                latency_sweep=(0.0, 0.010),
                                bandwidth_sweep_bps=(11e6 / 8,))
        trace = make_trace([(1, 0, 65536, "read", 0.0),
                            (1, 65536, 65536, "read", 2.0)],
                           name="tiny", file_sizes={1: 2 * 65536})
        result = FigureResult(figure_id="tiny", title="tiny sweep",
                              workload="tiny")
        result.by_latency = run_sweep(
            ProgramSet((ProgramSpec(trace),)), factories,
            tiny.latency_points(), tiny, progress=progress,
            workers=workers, cache=cache, executor=executor)
        return result

    return build


class TestParser:
    def test_tables_command(self):
        args = build_parser().parse_args(["tables"])
        assert args.command == "tables"

    def test_figure_command(self):
        args = build_parser().parse_args(
            ["figure", "fig2", "--panel", "a", "--csv"])
        assert args.figure == "fig2"
        assert args.panel == "a"
        assert args.csv

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_run_command(self):
        args = build_parser().parse_args(["run", "xmms"])
        assert args.workload == "xmms"

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "42", "tables"])
        assert args.seed == 42

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_tables_output(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Hitachi" in out
        assert "Cisco Aironet 350" in out
        assert "thunderbird" in out

    def test_run_workload(self, capsys):
        assert main(["run", "xmms"]) == 0
        out = capsys.readouterr().out
        assert "Disk-only" in out
        assert "FlexFetch" in out
        assert "J" in out


class TestTraceExport:
    def test_jsonl_export(self, tmp_path, capsys):
        out = tmp_path / "x.jsonl"
        assert main(["trace", "xmms", "--out", str(out)]) == 0
        from repro.traces.io import load_trace_jsonl
        trace = load_trace_jsonl(out)
        assert trace.name == "xmms"
        assert "wrote" in capsys.readouterr().out

    def test_csv_export(self, tmp_path):
        out = tmp_path / "x.csv"
        assert main(["trace", "xmms", "--out", str(out),
                     "--format", "csv"]) == 0
        from repro.traces.io import load_trace_csv
        assert len(load_trace_csv(out)) > 0

    def test_strace_export_parses_back(self, tmp_path):
        out = tmp_path / "x.strace"
        assert main(["trace", "xmms", "--out", str(out),
                     "--format", "strace"]) == 0
        from repro.traces.strace import parse_strace_file
        trace = parse_strace_file(out)
        assert len(trace) > 0


class TestInspect:
    def test_inspect_scenario(self, capsys):
        assert main(["inspect", "mplayer"]) == 0
        out = capsys.readouterr().out
        assert "trace mplayer" in out
        assert "gap structure" in out

    def test_inspect_composite(self, capsys):
        assert main(["inspect", "grep+make+xmms"]) == 0
        out = capsys.readouterr().out
        assert "disk-pinned" in out


class TestFaultFlags:
    def test_run_accepts_fault_flags(self):
        args = build_parser().parse_args(
            ["run", "xmms", "--faults", "outage-rate=0.01", "--strict"])
        assert args.faults == "outage-rate=0.01"
        assert args.strict

    def test_faults_subcommand(self):
        args = build_parser().parse_args(
            ["faults", "xmms", "--rates", "0,0.01", "--csv"])
        assert args.command == "faults"
        assert args.rates == "0,0.01"
        assert args.csv

    def test_faulted_run_executes(self, capsys):
        assert main(["run", "xmms", "--faults",
                     "outage-rate=0.01,spinup-fail-prob=0.2",
                     "--strict"]) == 0
        out = capsys.readouterr().out
        assert "FlexFetch" in out


class TestSweepCommand:
    def test_sweep_parser_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["sweep", "fig3", "--panel", "a", "--workers", "2",
             "--journal", str(tmp_path / "j.jsonl"), "--retries", "3",
             "--backoff", "0.5", "--timeout", "120", "--partial",
             "--chaos", "kill-prob=0.5",
             "--manifest", str(tmp_path / "m.json")])
        assert args.command == "sweep"
        assert args.figure == "fig3"
        assert args.retries == 3
        assert args.backoff == 0.5
        assert args.timeout == 120.0
        assert args.partial
        assert args.chaos == "kill-prob=0.5"

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "fig1"])
        assert args.retries == 2
        assert args.backoff == 0.25
        assert args.timeout is None
        assert not args.partial
        assert args.journal is None and args.resume is None

    def test_sweep_runs_and_journals(self, tmp_path, capsys,
                                     monkeypatch):
        monkeypatch.setitem(FIGURES, "tiny", _tiny_figure(
            {"Disk-only": DiskOnlyPolicy}))
        journal = tmp_path / "sweep.jsonl"
        assert main(["sweep", "tiny", "--no-cache",
                     "--journal", str(journal)]) == 0
        captured = capsys.readouterr()
        assert "tiny sweep" in captured.out
        assert "2 cells (2 live, 0 cached, 0 journal)" in captured.err
        from repro.experiments.journal import load_journal
        assert len(load_journal(journal).completed) == 2

    def test_sweep_resume_skips_completed(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.setitem(FIGURES, "tiny", _tiny_figure(
            {"Disk-only": DiskOnlyPolicy}))
        journal = tmp_path / "sweep.jsonl"
        assert main(["sweep", "tiny", "--no-cache",
                     "--journal", str(journal)]) == 0
        first = capsys.readouterr().out
        assert main(["sweep", "tiny", "--no-cache",
                     "--resume", str(journal)]) == 0
        captured = capsys.readouterr()
        assert captured.out == first   # bit-identical rendering
        assert "2 cells (0 live, 0 cached, 2 journal)" in captured.err

    def test_sweep_partial_exits_3_with_manifest(self, tmp_path, capsys,
                                                 monkeypatch):
        monkeypatch.setitem(FIGURES, "tiny", _tiny_figure(
            {"Disk-only": DiskOnlyPolicy, "Boom": _BoomFactory()}))
        manifest = tmp_path / "failures.json"
        assert main(["sweep", "tiny", "--no-cache", "--partial",
                     "--retries", "1", "--backoff", "0.01",
                     "--manifest", str(manifest)]) == EXIT_PARTIAL
        captured = capsys.readouterr()
        assert "FAILED=2" in captured.err
        assert str(manifest) in captured.err
        payload = json.loads(manifest.read_text())
        assert payload["failed_cells"] == 2
        for entry in payload["failures"]:
            assert entry["curve"] == "Boom"
            assert len(entry["attempts"]) == 2   # initial + 1 retry
            assert "boom in worker" in entry["attempts"][0]["traceback"]

    def test_sweep_failure_shows_remote_traceback(self, capsys,
                                                  monkeypatch):
        monkeypatch.setitem(FIGURES, "tiny", _tiny_figure(
            {"Boom": _BoomFactory()}))
        assert main(["sweep", "tiny", "--no-cache",
                     "--retries", "0"]) == 1
        err = capsys.readouterr().err
        assert "boom in worker" in err          # the remote traceback
        assert "flexfetch: error: sweep cell failed" in err

    def test_sweep_retries_recover_flaky_cells(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.setitem(FIGURES, "tiny", _tiny_figure(
            {"Disk-only": DiskOnlyPolicy}))
        assert main(["sweep", "tiny", "--cache-dir",
                     str(tmp_path / "cache"), "--chaos",
                     "corrupt-prob=1.0"]) == 0
        capsys.readouterr()
        # Warm pass over chaos-damaged rows: corrupt rows surface in the
        # summary and every cell re-simulates.
        assert main(["sweep", "tiny", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        err = capsys.readouterr().err
        assert "corrupt-cache-rows=2" in err
        assert "2 live" in err


class TestExitCodes:
    """Every failure path exits nonzero with a one-line message —
    never a raw traceback."""

    def test_unknown_workload_exits_2(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["run", "nope"])
        assert info.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_bad_fault_spec_exits_1(self, capsys):
        assert main(["run", "xmms", "--faults", "bogus=1"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("flexfetch: error:")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_unwritable_output_exits_1(self, capsys):
        assert main(["trace", "xmms", "--out",
                     "/nonexistent-dir/x.jsonl"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("flexfetch: error:")
        assert "Traceback" not in err

    def test_faults_unknown_workload_exits_2(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["faults", "nope"])
        assert info.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_faults_bad_rates_exits_2(self, capsys):
        assert main(["faults", "xmms", "--rates", "fast,slow"]) == 2
        assert "--rates" in capsys.readouterr().err

    def test_faults_negative_rate_exits_2(self, capsys):
        assert main(["faults", "xmms", "--rates", "-0.5"]) == 2
        assert "non-negative" in capsys.readouterr().err

    def test_unknown_subcommand_exits_2(self):
        with pytest.raises(SystemExit) as info:
            main(["frobnicate"])
        assert info.value.code == 2

    def test_sweep_conflicting_journal_flags_exit_2(self, tmp_path,
                                                    capsys):
        assert main(["sweep", "fig1", "--no-cache",
                     "--journal", str(tmp_path / "a.jsonl"),
                     "--resume", str(tmp_path / "b.jsonl")]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_sweep_bad_chaos_spec_exits_1(self, capsys):
        assert main(["sweep", "fig1", "--no-cache",
                     "--chaos", "bogus=1"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("flexfetch: error:")
        assert "Traceback" not in err

    def test_trace_validation_error_is_one_line(self, capsys):
        """A TraceValidationError escaping a handler becomes the
        standard one-line stderr message, not a traceback."""
        from unittest import mock
        from repro.traces.io import TraceValidationError
        with mock.patch("repro.cli._cmd_tables",
                        side_effect=TraceValidationError(3, "size is NaN")):
            assert main(["tables"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("flexfetch: error:")
        assert "record 3" in err
        assert "Traceback" not in err
