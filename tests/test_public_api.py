"""Public-API surface tests.

The README and examples program against ``repro``'s top-level names;
these tests pin that surface so refactors can't silently break
downstream users.
"""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self) -> None:
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_imports(self) -> None:
        # The exact import list the README's quickstart uses.
        from repro import (  # noqa: F401
            DiskOnlyPolicy,
            FlexFetchPolicy,
            ProgramSpec,
            ReplaySimulator,
            profile_from_trace,
        )

    def test_version(self) -> None:
        assert repro.__version__.count(".") == 2

    def test_units_exported(self) -> None:
        assert repro.units.SECOND.dimension == "time"
        assert repro.approx_eq(1.0, 1.0 + 1e-12)
        duration: repro.Seconds = 0.5
        assert isinstance(duration, float)

    def test_paper_constants_exported(self) -> None:
        assert repro.HITACHI_DK23DA.active_power == 2.0
        assert repro.AIRONET_350.cam_idle_power == 1.41


class TestSubpackageImports:
    @pytest.mark.parametrize("module", [
        "repro.sim", "repro.sim.clock", "repro.sim.engine",
        "repro.sim.events", "repro.sim.metrics", "repro.sim.rng",
        "repro.devices", "repro.devices.disk", "repro.devices.dpm",
        "repro.devices.layout", "repro.devices.power",
        "repro.devices.specs", "repro.devices.wnic",
        "repro.kernel", "repro.kernel.cache", "repro.kernel.page",
        "repro.kernel.readahead", "repro.kernel.scheduler",
        "repro.kernel.vfs", "repro.kernel.writeback",
        "repro.traces", "repro.traces.io", "repro.traces.record",
        "repro.traces.strace", "repro.traces.trace",
        "repro.traces.synth", "repro.traces.synth.scenarios",
        "repro.core", "repro.core.burst", "repro.core.bluefs",
        "repro.core.decision", "repro.core.estimator",
        "repro.core.flexfetch", "repro.core.oracle",
        "repro.core.policies", "repro.core.profile",
        "repro.core.simulator",
        "repro.experiments", "repro.experiments.config",
        "repro.experiments.figures", "repro.experiments.report",
        "repro.experiments.runner", "repro.experiments.sensitivity",
        "repro.experiments.svg", "repro.experiments.tables",
        "repro.experiments.validate",
        "repro.faults", "repro.faults.invariants",
        "repro.faults.schedule",
        "repro.units",
        "repro.lint", "repro.lint.findings", "repro.lint.rules",
        "repro.lint.runner", "repro.lint.suppressions",
        "repro.lint.unitinfer",
        "repro.cli",
    ])
    def test_module_imports(self, module: str) -> None:
        importlib.import_module(module)

    @pytest.mark.parametrize("module", [
        "repro", "repro.sim", "repro.devices", "repro.kernel",
        "repro.traces", "repro.core", "repro.experiments",
        "repro.faults", "repro.lint",
    ])
    def test_packages_have_docstrings(self, module: str) -> None:
        assert importlib.import_module(module).__doc__


class TestDocstringCoverage:
    """Every public callable on the top-level surface is documented."""

    def test_exported_objects_documented(self) -> None:
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert getattr(obj, "__doc__", None), name

    def test_policy_methods_documented(self) -> None:
        from repro.core.policies import Policy
        for method in ("choose", "route", "on_serviced", "on_syscall",
                       "on_tick", "on_external_disk_request"):
            assert getattr(Policy, method).__doc__, method
