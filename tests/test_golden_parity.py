"""Golden parity: the layered session reproduces pre-refactor results.

``benchmarks/results/golden.json`` pins the :class:`RunResult` numbers
produced by the monolithic ``ReplaySimulator`` *before* the layered
decomposition (workload/kernel/device/routing/telemetry behind
:class:`~repro.core.session.SimulationSession`).  The refactor was
required to be behaviour-preserving — same seeds, same results — so a
fresh session must land on the pinned numbers within ``approx_eq``.

Regenerate the pins (only after an *intentional* behaviour change)::

    PYTHONPATH=src python benchmarks/pin_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.flexfetch import FlexFetchPolicy
from repro.core.oracle import ClairvoyantStagePolicy
from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.profile import profile_from_trace
from repro.core.session import SimulationSession
from repro.core.workload import ProgramSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import _standard_policies
from repro.experiments.runner import run_point
from repro.traces.synth import (
    generate_acroread_profile_run,
    generate_acroread_search_run,
    generate_grep_make,
    generate_grep_make_xmms,
    generate_mplayer,
    generate_thunderbird,
)
from repro.units import approx_eq

GOLDEN_PATH = (Path(__file__).parent.parent / "benchmarks" / "results"
               / "golden.json")

FIGURE_IDS = ("fig1", "fig2", "fig3", "fig4", "fig5")


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig()


@pytest.fixture(scope="module")
def figure_setups(config):
    """fig id -> (programs factory, policy factories), as pinned."""
    seed = config.seed
    fig1 = generate_grep_make(seed)
    fig2 = generate_mplayer(seed)
    fig3 = generate_thunderbird(seed)
    fg4, bg4 = generate_grep_make_xmms(seed)
    search5 = generate_acroread_search_run(seed)
    stale5 = profile_from_trace(generate_acroread_profile_run(seed))
    return {
        "fig1": (lambda: [ProgramSpec(fig1)],
                 _standard_policies(profile_from_trace(fig1), config)),
        "fig2": (lambda: [ProgramSpec(fig2)],
                 _standard_policies(profile_from_trace(fig2), config)),
        "fig3": (lambda: [ProgramSpec(fig3)],
                 _standard_policies(profile_from_trace(fig3), config)),
        "fig4": (lambda: [ProgramSpec(fg4),
                          ProgramSpec(bg4, profiled=False,
                                      disk_pinned=True)],
                 _standard_policies(profile_from_trace(fg4), config,
                                    include_static=True)),
        "fig5": (lambda: [ProgramSpec(search5)],
                 _standard_policies(stale5, config,
                                    include_static=True)),
    }


def test_golden_file_is_pinned(golden):
    assert set(golden["points"]) == set(FIGURE_IDS)
    assert golden["oracle"]


@pytest.mark.parametrize("fig_id", FIGURE_IDS)
def test_points_match_golden(fig_id, golden, config, figure_setups):
    """Every figure's default-link replay lands on the pinned numbers."""
    programs, policies = figure_setups[fig_id]
    pinned = golden["points"][fig_id]
    assert set(policies) == set(pinned)
    for name, factory in policies.items():
        result = run_point(programs, factory, config.wnic_spec,
                           config).result
        want = pinned[name]
        assert approx_eq(result.total_energy, want["energy"]), \
            f"{fig_id}/{name} energy {result.total_energy} != {want['energy']}"
        assert approx_eq(result.disk_energy, want["disk_energy"])
        assert approx_eq(result.wnic_energy, want["wnic_energy"])
        assert approx_eq(result.end_time, want["time"])


@pytest.mark.parametrize("workload,gen", [
    ("grep+make", generate_grep_make),
    ("mplayer", generate_mplayer),
    ("thunderbird", generate_thunderbird),
])
def test_oracle_matches_golden(workload, gen, golden):
    """Clairvoyant-headroom energies land on the pinned numbers."""
    seed = golden["oracle_seed"]
    trace = gen(seed)
    runs = {
        "Disk-only": DiskOnlyPolicy(),
        "WNIC-only": WnicOnlyPolicy(),
        "FlexFetch": FlexFetchPolicy(profile_from_trace(trace)),
        "Clairvoyant": ClairvoyantStagePolicy(trace),
    }
    pinned = golden["oracle"][workload]
    assert set(runs) == set(pinned)
    for label, policy in runs.items():
        result = SimulationSession([ProgramSpec(trace)], policy,
                                   seed=seed).run()
        assert approx_eq(result.total_energy, pinned[label]), \
            f"{workload}/{label}: {result.total_energy} != {pinned[label]}"
