"""Suppression pragmas: file-level opt-outs and multi-line statements.

The line-pragma basics (``ignore[R1]``, ``skip-file``) are covered in
``test_rules.py`` via the ``suppressed.pysnippet`` fixture; this module
covers the file-level ``ignore-file[...]`` form and the expansion of
trailing pragmas on multi-line statements.
"""

from __future__ import annotations

from repro.lint import lint_source, parse_suppressions

CORE = ("repro", "core", "x.py")

R4_BAD = "def f(a=[]):\n    return a\n"


class TestIgnoreFile:
    def test_header_pragma_suppresses_everywhere(self):
        source = ("# repro-lint: ignore-file[R4]\n\n" + R4_BAD +
                  "\n\ndef g(b={}):\n    return b\n")
        assert lint_source(source) == []

    def test_only_the_named_rules_are_suppressed(self):
        source = ("# repro-lint: ignore-file[R1]\n"
                  "import time\n\n\n"
                  "def now():\n"
                  "    return time.time()\n\n\n" + R4_BAD)
        findings = lint_source(source, path="x.py", package_rel=CORE)
        assert {f.rule for f in findings} == {"R4"}

    def test_multiple_rules_in_one_pragma(self):
        source = ("# repro-lint: ignore-file[R1, R4]\n"
                  "import time\n\n\n"
                  "def now():\n"
                  "    return time.time()\n\n\n" + R4_BAD)
        assert lint_source(source, path="x.py", package_rel=CORE) == []

    def test_buried_ignore_file_is_inert(self):
        source = ("X = 1\n"
                  "# repro-lint: ignore-file[R4]\n" + R4_BAD)
        findings = lint_source(source)
        assert [f.rule for f in findings] == ["R4"]

    def test_bare_ignore_file_suppresses_nothing(self):
        # a blanket file opt-out is spelled skip-file; ignore-file
        # requires an explicit rule list.
        source = "# repro-lint: ignore-file\n" + R4_BAD
        assert [f.rule for f in lint_source(source)] == ["R4"]

    def test_unknown_rule_ids_are_harmless(self):
        source = "# repro-lint: ignore-file[R99]\n" + R4_BAD
        assert [f.rule for f in lint_source(source)] == ["R4"]

    def test_docstring_does_not_end_the_header(self):
        # comment block, then module docstring: the pragma still leads.
        source = ('# repro-lint: ignore-file[R4]\n'
                  '"""Docstring."""\n' + R4_BAD)
        assert lint_source(source) == []

    def test_combines_with_line_pragmas(self):
        source = ("# repro-lint: ignore-file[R1]\n"
                  "import time\n\n\n"
                  "def now():\n"
                  "    return time.time()\n\n\n"
                  "def f(a=[]):  # repro-lint: ignore[R4]\n"
                  "    return a\n\n\n" + R4_BAD.replace("f(a", "g(b"))
        findings = lint_source(source, path="x.py", package_rel=CORE)
        assert len(findings) == 1
        assert findings[0].rule == "R4"
        assert findings[0].line == 13

    def test_parse_exposes_file_rules(self):
        parsed = parse_suppressions(
            "# repro-lint: ignore-file[R6,R7]\nX = 1\n")
        assert parsed.file_rules == frozenset({"R6", "R7"})
        assert not parsed.skip_file


class TestMultilineStatements:
    def test_trailing_pragma_covers_the_statement(self):
        source = ("import time\n"
                  "\n"
                  "\n"
                  "def f():\n"
                  "    t = (time.time()\n"
                  "         + 0.0)  # repro-lint: ignore[R1]\n"
                  "    return t\n")
        assert lint_source(source, path="x.py",
                           package_rel=CORE) == []

    def test_bare_ignore_on_a_continuation_line(self):
        source = ("import time\n"
                  "\n"
                  "\n"
                  "def f():\n"
                  "    t = (time.time()\n"
                  "         + 0.0)  # repro-lint: ignore\n"
                  "    return t\n")
        assert lint_source(source, path="x.py",
                           package_rel=CORE) == []

    def test_wrong_rule_on_a_continuation_line_does_not_suppress(self):
        source = ("import time\n"
                  "\n"
                  "\n"
                  "def f():\n"
                  "    t = (time.time()\n"
                  "         + 0.0)  # repro-lint: ignore[R4]\n"
                  "    return t\n")
        findings = lint_source(source, path="x.py", package_rel=CORE)
        assert [f.rule for f in findings] == ["R1"]

    def test_compound_statements_do_not_inherit_nested_pragmas(self):
        # the def spans lines 4-6; a pragma inside its body must not
        # leak onto the def line (or suppress sibling statements).
        source = ("import time\n"
                  "\n"
                  "\n"
                  "def f():\n"
                  "    x = 1  # repro-lint: ignore\n"
                  "    return time.time()\n")
        findings = lint_source(source, path="x.py", package_rel=CORE)
        assert [f.rule for f in findings] == ["R1"]
        assert findings[0].line == 6
