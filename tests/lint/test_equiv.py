"""Dual-path equivalence rules R10-R13 (``repro.lint.equiv``).

Each rule gets a checked-in bad/good ``.pysnippet`` fixture pair
(positioned inside the package via ``package_rel`` so the anchors
resolve), a current-tree clean assertion, and — for R10 — a positive
audit of the real ``SimulationSession``: every constructor parameter
must map to a non-empty set of fast-path coverage witnesses.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths, lint_source
from repro.lint.equiv import session_fast_path_coverage
from repro.lint.ir import build_project, parse_module

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

SESSION = ("repro", "core", "session.py")
COSTMODEL = ("repro", "core", "costmodel.py")
PLAN = ("repro", "sim", "plan.py")


def _fixture(name: str) -> str:
    return (FIXTURES / f"{name}.pysnippet").read_text(encoding="utf-8")


def _lint_fixture(name: str, package_rel: tuple[str, ...],
                  rule: str) -> list:
    return lint_source(_fixture(name), path=f"{name}.py",
                       package_rel=package_rel,
                       select=frozenset({rule}))


# ----------------------------------------------------------------------
# R10 — path-coverage drift
# ----------------------------------------------------------------------
class TestR10:
    def test_bad_fixture_reports_all_three_drifts(self):
        findings = _lint_fixture("r10_bad", SESSION, "R10")
        assert [f.rule for f in findings] == ["R10"] * 3
        messages = " | ".join(f.message for f in findings)
        assert "session parameter 'readahead_pages'" in messages
        assert "MobileSystem parameter 'readahead_pages'" in messages
        assert "ignores spinup_fail_prob" in messages

    def test_good_fixture_is_clean(self):
        assert _lint_fixture("r10_good", SESSION, "R10") == []

    def test_current_tree_is_clean(self):
        assert lint_paths([REPO_ROOT / "src"],
                          select=frozenset({"R10"})) == []

    def test_real_session_every_parameter_is_covered(self):
        """Audit: each SimulationSession.__init__ parameter has at
        least one fast-path attribute witnessing read-or-refusal."""
        path = REPO_ROOT / "src" / "repro" / "core" / "session.py"
        module = parse_module(path.read_text(encoding="utf-8"),
                              path=str(path), package_rel=SESSION)
        assert module is not None
        coverage = session_fast_path_coverage(build_project([module]))
        assert coverage, "SimulationSession anchor not found"
        uncovered = {p for p, attrs in coverage.items() if not attrs}
        assert not uncovered
        # Spot checks pinning the two trickiest derivation chains:
        # sinks is only derived in run(), faults via an IfExp.
        assert "_sinks_hot" in coverage["sinks"]
        assert "faults" in coverage["faults"]


# ----------------------------------------------------------------------
# R11 — kernel-pair drift
# ----------------------------------------------------------------------
class TestR11:
    def test_bad_fixture_reports_every_drift_direction(self):
        findings = _lint_fixture("r11_bad", COSTMODEL, "R11")
        assert [f.rule for f in findings] == ["R11"] * 6
        messages = " | ".join(f.message for f in findings)
        assert "bucket 'disk.recalibrate'" in messages          # missing
        assert "bucket 'disk.turbo'" in messages                # invented
        assert "'recalibration_energy'" in messages             # missing
        assert "'recalibration_time'" in messages               # missing
        assert "transition standby->active" in messages         # missing
        assert "transition idle->active" in messages            # invented

    def test_invented_effects_are_anchored_at_their_use_site(self):
        findings = _lint_fixture("r11_bad", COSTMODEL, "R11")
        invented = [f for f in findings if "disk.turbo" in f.message]
        assert len(invented) == 1
        source = _fixture("r11_bad").splitlines()
        assert "disk.turbo" in source[invented[0].line - 1]

    def test_good_fixture_is_clean(self):
        assert _lint_fixture("r11_good", COSTMODEL, "R11") == []

    def test_current_tree_is_clean(self):
        assert lint_paths([REPO_ROOT / "src"],
                          select=frozenset({"R11"})) == []


# ----------------------------------------------------------------------
# R12 — float reassociation under REPRO_NO_NUMPY
# ----------------------------------------------------------------------
class TestR12:
    def test_bad_fixture_flags_both_reduction_forms(self):
        findings = _lint_fixture("r12_bad", PLAN, "R12")
        assert [f.rule for f in findings] == ["R12"] * 2
        messages = " | ".join(f.message for f in findings)
        assert "'_np.sum'" in messages
        assert "'.dot()'" in messages

    def test_good_fixture_elementwise_is_clean(self):
        assert _lint_fixture("r12_good", PLAN, "R12") == []

    def test_current_tree_is_clean(self):
        assert lint_paths([REPO_ROOT / "src"],
                          select=frozenset({"R12"})) == []


# ----------------------------------------------------------------------
# R13 — plan staleness
# ----------------------------------------------------------------------
class TestR13:
    def test_bad_fixture_flags_memo_key_and_mutation(self):
        findings = _lint_fixture("r13_bad", PLAN, "R13")
        assert [f.rule for f in findings] == ["R13"] * 2
        messages = " | ".join(f.message for f in findings)
        assert "input 'threshold' is not folded" in messages
        assert "write to 'plan.record_count'" in messages

    def test_good_fixture_is_clean(self):
        assert _lint_fixture("r13_good", PLAN, "R13") == []

    def test_current_tree_is_clean(self):
        assert lint_paths([REPO_ROOT / "src"],
                          select=frozenset({"R13"})) == []


# ----------------------------------------------------------------------
# hygiene: the analyzer analyzes itself, stays out of the repo
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_lint_package_is_clean_under_equiv_rules(self):
        assert lint_paths([REPO_ROOT / "src" / "repro" / "lint"],
                          select=frozenset({"R10", "R11", "R12",
                                            "R13"})) == []

    def test_whole_tree_is_clean_under_equiv_rules(self):
        assert lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests",
             REPO_ROOT / "benchmarks", REPO_ROOT / "examples"],
            select=frozenset({"R10", "R11", "R12", "R13"})) == []

    def test_pycache_is_gitignored(self):
        gitignore = (REPO_ROOT / ".gitignore").read_text(
            encoding="utf-8").splitlines()
        assert "__pycache__/" in gitignore


# ----------------------------------------------------------------------
# ordering: equiv findings merge into the global sort
# ----------------------------------------------------------------------
class TestOrdering:
    def test_findings_sorted_by_location(self):
        findings = _lint_fixture("r11_bad", COSTMODEL, "R11")
        keys = [(f.path, f.line, f.col, f.rule, f.message)
                for f in findings]
        assert keys == sorted(keys)
