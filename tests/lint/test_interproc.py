"""Interprocedural rules R6-R9 (the whole-program pass).

Fixtures are inline sources positioned inside the ``repro`` package via
``package_rel`` — ``lint_source`` runs them through a one-module
project, so local call edges are visible to the dataflow engine.  The
R8 regression uses the checked-in ``.pysnippet`` pre-fix sources
materialised into a temporary package tree (two modules, cross-module
analysis).
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

PARALLEL = ("repro", "experiments", "parallel.py")
CORE = ("repro", "core", "metrics.py")


# ----------------------------------------------------------------------
# R6 — determinism taint
# ----------------------------------------------------------------------
R6_TAINT = """\
import time


def _jitter():
    return time.time()


def _helper():
    return _jitter() + 1.0


def _execute_job(job):
    return _helper()
"""


class TestR6:
    def test_transitive_impurity_reported_with_call_chain(self):
        findings = lint_source(R6_TAINT, path="parallel.py",
                               package_rel=PARALLEL)
        r6 = [f for f in findings if f.rule == "R6"]
        assert len(r6) == 1
        assert r6[0].line == 5
        assert "reachable from sweep/cache-key root via" in r6[0].message
        assert ("repro.experiments.parallel._execute_job"
                " -> repro.experiments.parallel._helper"
                " -> repro.experiments.parallel._jitter") in r6[0].message

    def test_r6_subsumes_r1_at_the_same_site(self):
        findings = lint_source(R6_TAINT, path="parallel.py",
                               package_rel=PARALLEL)
        # the per-file determinism rule would flag line 5 too; the
        # runner drops it in favour of the richer R6 finding.
        assert {f.rule for f in findings} == {"R6"}

    def test_unreachable_impurity_stays_a_plain_r1(self):
        source = R6_TAINT.replace("return _helper()", "return 0")
        findings = lint_source(source, path="parallel.py",
                               package_rel=PARALLEL)
        assert {f.rule for f in findings} == {"R1"}

    def test_environment_read_and_set_iteration_are_sources(self):
        source = """\
import os


def _settings():
    return os.environ.get("FLEXFETCH_MODE")


def _order(items):
    return [x for x in {i for i in items}]


def _execute_job(job):
    return _settings(), _order(job)
"""
        findings = lint_source(source, path="parallel.py",
                               package_rel=PARALLEL,
                               select=frozenset({"R6"}))
        messages = sorted(f.message for f in findings)
        assert len(findings) == 2
        assert any("environment read os.environ.get()" in m
                   for m in messages)
        assert any("unordered set" in m for m in messages)


# ----------------------------------------------------------------------
# R7 — parallel safety
# ----------------------------------------------------------------------
class TestR7:
    def test_worker_reachable_module_state_write(self):
        source = """\
_RESULTS: dict = {}


def _execute_job(job):
    _RESULTS[job] = 1
    return _RESULTS
"""
        findings = lint_source(source, path="parallel.py",
                               package_rel=PARALLEL,
                               select=frozenset({"R7"}))
        assert len(findings) == 1
        assert "stores into module-level container '_RESULTS'" \
            in findings[0].message

    def test_parent_side_write_is_clean(self):
        source = """\
_CACHE: dict = {}


def record(key, value):
    _CACHE[key] = value


def _execute_job(job):
    return job
"""
        assert lint_source(source, path="parallel.py",
                           package_rel=PARALLEL,
                           select=frozenset({"R7"})) == []

    def test_lambda_into_sweepjob_boundary(self):
        source = """\
from dataclasses import dataclass


@dataclass
class SweepJob:
    index: int
    policy_factory: object


def build():
    return SweepJob(0, lambda: 3)
"""
        findings = lint_source(source, path="parallel.py",
                               package_rel=PARALLEL,
                               select=frozenset({"R7"}))
        assert len(findings) == 1
        assert "non-picklable value (a lambda)" in findings[0].message
        assert "SweepJob fork boundary" in findings[0].message

    def test_closure_and_open_handle_into_sweepjob(self):
        source = """\
from dataclasses import dataclass


@dataclass
class SweepJob:
    payload: object


def build(path):
    def factory():
        return 3
    return SweepJob(payload=factory), SweepJob(payload=open(path))
"""
        findings = lint_source(source, path="parallel.py",
                               package_rel=PARALLEL,
                               select=frozenset({"R7"}))
        kinds = sorted(f.message.split("(")[1].split(")")[0]
                       for f in findings)
        assert kinds == ["an open file handle",
                         "nested function 'factory' "]

    def test_only_policy_factories_crosses_run_sweep_boundary(self):
        source = """\
class ParallelSweepExecutor:
    def run_sweep(self, programs_factory, policy_factories,
                  wnic_specs, config):
        return None


def sweep(executor: ParallelSweepExecutor, specs, config):
    return executor.run_sweep(lambda: [], {"flexfetch": lambda: None},
                              specs, config)
"""
        findings = lint_source(source, path="parallel.py",
                               package_rel=PARALLEL,
                               select=frozenset({"R7"}))
        # programs_factory (positional 0) runs in the parent and may be
        # a lambda; the dict-valued policy_factories (positional 1) is
        # pickled into workers, so only its lambda is flagged.
        assert len(findings) == 1
        assert findings[0].line == 8
        assert "ParallelSweepExecutor.run_sweep fork boundary" \
            in findings[0].message

    def test_mutable_payloads_staged_into_worker_registry(self):
        source = (FIXTURES / "r7_stage_bad.pysnippet").read_text(
            encoding="utf-8")
        findings = lint_source(source, path="parallel.py",
                               package_rel=PARALLEL,
                               select=frozenset({"R7"}))
        kinds = sorted(f.message.split("(")[1].split(")")[0]
                       for f in findings)
        assert kinds == ["a dict literal", "a list comprehension",
                         "bytearray", "dict"]
        assert all("worker payload registry" in f.message
                   for f in findings)

    def test_immutable_staged_payloads_are_clean(self):
        source = (FIXTURES / "r7_stage_good.pysnippet").read_text(
            encoding="utf-8")
        assert lint_source(source, path="parallel.py",
                           package_rel=PARALLEL,
                           select=frozenset({"R7"})) == []

    def test_current_tree_stages_only_immutable_payloads(self):
        src = REPO_ROOT / "src" / "repro"
        flagged = [f for f in lint_paths([src],
                                         select=frozenset({"R7"}))
                   if "payload registry" in f.message]
        assert flagged == []


# ----------------------------------------------------------------------
# R8 — cache-key soundness (the stale-cache regression)
# ----------------------------------------------------------------------
def _materialise_r8_tree(tmp_path: Path) -> Path:
    pkg = tmp_path / "repro"
    (pkg / "experiments").mkdir(parents=True)
    (pkg / "core").mkdir()
    (pkg / "experiments" / "cache.py").write_text(
        (FIXTURES / "r8_stale_cache.pysnippet").read_text(
            encoding="utf-8"), encoding="utf-8")
    (pkg / "core" / "session.py").write_text(
        (FIXTURES / "r8_stale_session.pysnippet").read_text(
            encoding="utf-8"), encoding="utf-8")
    return pkg


class TestR8:
    def test_prefix_run_key_flags_faults_and_spindown(self, tmp_path):
        pkg = _materialise_r8_tree(tmp_path)
        findings = lint_paths([pkg], select=frozenset({"R8"}))
        assert len(findings) == 2
        assert all(f.rule == "R8" for f in findings)
        assert all(f.path.endswith("cache.py") for f in findings)
        messages = " | ".join(f.message for f in findings)
        assert "'faults'" in messages
        assert "'spindown_policy'" in messages
        assert "stale" in messages

    def test_result_neutral_parameters_are_not_required(self, tmp_path):
        pkg = _materialise_r8_tree(tmp_path)
        messages = " | ".join(
            f.message for f in lint_paths([pkg],
                                          select=frozenset({"R8"})))
        assert "'strict'" not in messages
        assert "'sinks'" not in messages

    def test_current_tree_is_r8_clean(self):
        src = REPO_ROOT / "src" / "repro"
        assert lint_paths([src], select=frozenset({"R8"})) == []


# ----------------------------------------------------------------------
# R9 — interprocedural unit flow
# ----------------------------------------------------------------------
R9_SOURCE = """\
from repro.units import Joules, Seconds


def total_energy(idle: Joules, active: Joules) -> Joules:
    return idle + active


def plain() -> float:
    return 1.0


def use(delay: Seconds, idle: Joules, active: Joules):
    t: Seconds = total_energy(idle, active)
    u: Seconds = plain()
    return delay + total_energy(idle, active)
"""


class TestR9:
    def _findings(self):
        return lint_source(R9_SOURCE, path="metrics.py",
                           package_rel=CORE,
                           select=frozenset({"R9"}))

    def test_mismatched_return_into_typed_slot(self):
        by_line = {f.line: f for f in self._findings()}
        assert "total_energy() returns energy" in by_line[13].message
        assert "time-typed slot (Seconds)" in by_line[13].message

    def test_unitless_return_into_typed_slot(self):
        by_line = {f.line: f for f in self._findings()}
        assert "unit-less return of" in by_line[14].message
        assert "repro.units.Seconds" in by_line[14].message

    def test_cross_call_dimension_mix(self):
        by_line = {f.line: f for f in self._findings()}
        assert ("incompatible dimensions across a call boundary"
                in by_line[15].message)
        assert "time vs energy" in by_line[15].message

    def test_lexically_local_mix_is_left_to_r2(self):
        source = """\
from repro.units import Joules, Seconds


def mix(delay: Seconds, energy: Joules):
    return delay + energy
"""
        findings = lint_source(source, path="metrics.py",
                               package_rel=CORE)
        assert {f.rule for f in findings} == {"R2"}

    def test_return_annotation_vs_callee_dimension(self):
        source = """\
from repro.units import Joules, Seconds


def energy() -> Joules:
    return 1.0


def wait_time() -> Seconds:
    return energy()
"""
        findings = lint_source(source, path="metrics.py",
                               package_rel=CORE,
                               select=frozenset({"R9"}))
        assert len(findings) == 1
        assert findings[0].line == 9
        assert "energy-valued result" in findings[0].message
        assert "-> Seconds" in findings[0].message


# ----------------------------------------------------------------------
# global ordering
# ----------------------------------------------------------------------
class TestOrdering:
    def test_findings_are_globally_ordered_and_stable(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "experiments").mkdir(parents=True)
        (pkg / "experiments" / "b.py").write_text(
            R6_TAINT, encoding="utf-8")
        (pkg / "experiments" / "a.py").write_text(
            "import time\n\n\ndef f(x=[]):\n"
            "    return time.time(), x\n", encoding="utf-8")
        first = lint_paths([pkg])
        second = lint_paths([pkg])
        assert first == second
        keys = [(f.path, f.line, f.col, f.rule, f.message)
                for f in first]
        assert keys == sorted(keys)
        assert len(first) >= 3  # a.py: R1+R4; b.py: R6
