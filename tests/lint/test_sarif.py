"""SARIF 2.1.0 output: schema validity, determinism, CLI integration.

Schema validation runs against a checked-in, hand-reduced subset of the
official ``sarif-schema-2.1.0.json`` (same required sets, types, and
enums for every property the tool emits); the full 330KB schema is not
vendored.
"""

from __future__ import annotations

import json
from pathlib import Path

import jsonschema
import pytest

from repro.lint.findings import RULES, Finding
from repro.lint.runner import main as lint_main
from repro.lint.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    to_sarif,
    write_sarif,
)

SCHEMA = json.loads(
    (Path(__file__).parent / "fixtures" /
     "sarif-2.1.0-subset.schema.json").read_text(encoding="utf-8"))


def _finding(rule: str = "R1", line: int = 3, col: int = 4,
             message: str = "wall clock") -> Finding:
    return Finding(path="src/repro/x.py", line=line, col=col,
                   rule=rule, message=message)


def _validate(document: dict) -> None:
    jsonschema.validate(instance=document, schema=SCHEMA)


class TestDocumentShape:
    def test_validates_against_the_2_1_0_schema(self):
        _validate(to_sarif([_finding(), _finding("R6", 9, 0, "tainted")]))

    def test_empty_findings_validate_too(self):
        _validate(to_sarif([]))

    def test_header_declares_2_1_0(self):
        document = to_sarif([])
        assert document["version"] == SARIF_VERSION == "2.1.0"
        assert document["$schema"] == SARIF_SCHEMA_URI
        assert "sarif-schema-2.1.0.json" in SARIF_SCHEMA_URI

    def test_rule_catalogue_is_exported_sorted(self):
        rules = to_sarif([])["runs"][0]["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert ids == sorted(ids)
        assert set(ids) == set(RULES)

    def test_rule_index_points_at_the_descriptor(self):
        document = to_sarif([_finding("R6")])
        run = document["runs"][0]
        result = run["results"][0]
        descriptor = run["tool"]["driver"]["rules"][result["ruleIndex"]]
        assert descriptor["id"] == result["ruleId"] == "R6"

    def test_columns_are_one_based(self):
        result = to_sarif([_finding(col=0)])["runs"][0]["results"][0]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startColumn"] == 1
        assert region["startLine"] == 3

    def test_baseline_state_only_when_a_baseline_was_applied(self):
        fresh = _finding("R1", 1, 0, "new one")
        old = _finding("R1", 2, 0, "old one")
        without = to_sarif([fresh, old])["runs"][0]["results"]
        assert all("baselineState" not in r for r in without)
        with_states = to_sarif([fresh, old],
                               new={fresh})["runs"][0]["results"]
        assert [r["baselineState"] for r in with_states] == \
            ["new", "unchanged"]
        _validate(to_sarif([fresh, old], new={fresh}))


class TestWriter:
    def test_byte_identical_across_runs(self, tmp_path):
        findings = [_finding(), _finding("R9", 7, 2, "unit-less")]
        a, b = tmp_path / "a.sarif", tmp_path / "b.sarif"
        write_sarif(str(a), findings)
        write_sarif(str(b), findings)
        assert a.read_bytes() == b.read_bytes()

    def test_cli_writes_a_valid_log(self, tmp_path,
                                    capsys: pytest.CaptureFixture[str]):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(a=[]):\n    return a\n", encoding="utf-8")
        out = tmp_path / "out.sarif"
        assert lint_main([str(bad), "--sarif", str(out)]) == 1
        capsys.readouterr()
        document = json.loads(out.read_text(encoding="utf-8"))
        _validate(document)
        results = document["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["R4"]
