"""The shipped tree must satisfy its own analyzer (acceptance gate)."""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths, package_relative

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_shipped_src_tree_is_clean() -> None:
    findings = lint_paths([REPO_ROOT / "src"])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_shipped_test_and_example_trees_are_clean() -> None:
    roots = [REPO_ROOT / d for d in ("tests", "benchmarks", "examples")
             if (REPO_ROOT / d).is_dir()]
    findings = lint_paths(roots)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_package_relative_recognises_both_layouts() -> None:
    assert package_relative(
        Path("src/repro/core/simulator.py")) == \
        ("repro", "core", "simulator.py")
    assert package_relative(
        Path("/site-packages/repro/sim/rng.py")) == \
        ("repro", "sim", "rng.py")
    assert package_relative(Path("tests/core/test_x.py")) is None
