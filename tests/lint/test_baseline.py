"""Baseline gating: the library layer and the CLI flags.

The key property under test: baselines key on (path, rule, message),
never on line numbers, so unrelated edits that shift code around do not
resurrect baselined findings.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.baseline import (
    BaselineError,
    load_baseline,
    save_baseline,
    split_findings,
)
from repro.lint.findings import Finding
from repro.lint.runner import main as lint_main

BAD = "def f(a=[]):\n    return a\n\n\ndef g(b={}):\n    return b\n"


def _finding(line: int, message: str = "mutable default") -> Finding:
    return Finding(path="pkg/mod.py", line=line, col=0, rule="R4",
                   message=message)


class TestLibrary:
    def test_round_trip_aggregates_counts(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [_finding(1), _finding(5), _finding(9, "x")])
        assert load_baseline(path) == {
            ("pkg/mod.py", "R4", "mutable default"): 2,
            ("pkg/mod.py", "R4", "x"): 1,
        }

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    @pytest.mark.parametrize("payload", [
        "not json {",
        "[]",
        '{"version": 99, "entries": []}',
        '{"version": 1, "entries": [{"path": "x"}]}',
    ])
    def test_malformed_baseline_raises(self, tmp_path, payload):
        path = tmp_path / "baseline.json"
        path.write_text(payload, encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_split_consumes_counts_in_order(self):
        findings = [_finding(1), _finding(5), _finding(9)]
        baseline = {("pkg/mod.py", "R4", "mutable default"): 2}
        new, baselined = split_findings(findings, baseline)
        assert baselined == [_finding(1), _finding(5)]
        assert new == [_finding(9)]

    def test_lines_do_not_participate_in_the_key(self):
        # the same finding at a totally different line is baselined.
        new, baselined = split_findings(
            [_finding(1234)],
            {("pkg/mod.py", "R4", "mutable default"): 1})
        assert new == [] and len(baselined) == 1

    def test_saved_file_is_sorted_and_versioned(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [_finding(9, "zz"), _finding(1, "aa")])
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert payload["tool"] == "repro.lint"
        messages = [e["message"] for e in payload["entries"]]
        assert messages == ["aa", "zz"]


class TestCli:
    def _write_bad(self, tmp_path: Path) -> Path:
        bad = tmp_path / "bad.py"
        bad.write_text(BAD, encoding="utf-8")
        return bad

    def test_update_then_gate_is_clean(self, tmp_path,
                                       capsys: pytest.CaptureFixture[str]):
        bad = self._write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(bad), "--baseline", str(baseline),
                          "--update-baseline"]) == 0
        assert "updated with 2" in capsys.readouterr().err
        assert lint_main([str(bad), "--baseline", str(baseline)]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "0 findings (2 baselined)" in captured.err

    def test_new_finding_fails_and_is_the_only_one_printed(
            self, tmp_path, capsys: pytest.CaptureFixture[str]):
        bad = self._write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(bad), "--baseline", str(baseline),
                          "--update-baseline"]) == 0
        capsys.readouterr()
        bad.write_text(BAD + "\n\ntry:\n    pass\nexcept:\n    pass\n",
                       encoding="utf-8")
        assert lint_main([str(bad), "--baseline", str(baseline)]) == 1
        captured = capsys.readouterr()
        assert "bare except" in captured.out
        assert captured.out.count("R4") == 1
        assert "1 finding (2 baselined)" in captured.err

    def test_baselined_findings_survive_line_shifts(
            self, tmp_path, capsys: pytest.CaptureFixture[str]):
        bad = self._write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(bad), "--baseline", str(baseline),
                          "--update-baseline"]) == 0
        bad.write_text("# moved\n# around\n\n" + BAD, encoding="utf-8")
        assert lint_main([str(bad), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_update_baseline_requires_baseline(
            self, tmp_path, capsys: pytest.CaptureFixture[str]):
        bad = self._write_bad(tmp_path)
        assert lint_main([str(bad), "--update-baseline"]) == 2
        assert "--update-baseline requires --baseline" \
            in capsys.readouterr().err

    def test_malformed_baseline_is_a_usage_error(
            self, tmp_path, capsys: pytest.CaptureFixture[str]):
        bad = self._write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{broken", encoding="utf-8")
        assert lint_main([str(bad), "--baseline", str(baseline)]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_sarif_marks_baseline_states(self, tmp_path,
                                         capsys: pytest.CaptureFixture[str]):
        bad = self._write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        out = tmp_path / "out.sarif"
        assert lint_main([str(bad), "--baseline", str(baseline),
                          "--update-baseline"]) == 0
        bad.write_text(BAD + "\n\ntry:\n    pass\nexcept:\n    pass\n",
                       encoding="utf-8")
        assert lint_main([str(bad), "--baseline", str(baseline),
                          "--sarif", str(out)]) == 1
        capsys.readouterr()
        results = json.loads(out.read_text(
            encoding="utf-8"))["runs"][0]["results"]
        states = sorted(r["baselineState"] for r in results)
        assert states == ["new", "unchanged", "unchanged"]
