"""Rule-level tests for :mod:`repro.lint`.

Every rule R1-R4 has a failing fixture (must trigger that rule and only
that rule) and a passing fixture (must be silent).  Fixtures use the
``.pysnippet`` extension so CLI runs over ``tests/`` never walk into
deliberately-broken code.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import Finding, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: position fixtures as if they lived inside the simulator package, so
#: the package-scoped rules (R1-R3) apply.
IN_PACKAGE = ("repro", "core", "fixture.py")


def lint_fixture(name: str,
                 package_rel: tuple[str, ...] | None = IN_PACKAGE
                 ) -> list[Finding]:
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(source, path=name, package_rel=package_rel)


@pytest.mark.parametrize("rule", ["R1", "R2", "R3", "R4", "R5"])
def test_bad_fixture_triggers_only_its_rule(rule: str) -> None:
    findings = lint_fixture(f"{rule.lower()}_bad.pysnippet")
    assert findings, f"{rule} fixture produced no findings"
    assert {f.rule for f in findings} == {rule}


@pytest.mark.parametrize("rule", ["R1", "R2", "R3", "R4", "R5"])
def test_good_fixture_is_clean(rule: str) -> None:
    assert lint_fixture(f"{rule.lower()}_good.pysnippet") == []


def test_r1_counts_every_nondeterministic_call() -> None:
    findings = lint_fixture("r1_bad.pysnippet")
    assert len(findings) == 5
    messages = " ".join(f.message for f in findings)
    assert "time.time" in messages
    assert "datetime.datetime.now" in messages
    assert "random.random" in messages
    assert "default_rng" in messages
    assert "numpy.random.rand" in messages


def test_r2_flags_mixed_dimensions() -> None:
    findings = lint_fixture("r2_bad.pysnippet")
    mixes = [f for f in findings if "incompatible dimensions" in f.message]
    assert len(mixes) == 1
    assert "time vs energy" in mixes[0].message


def test_r3_both_equality_directions() -> None:
    findings = lint_fixture("r3_bad.pysnippet")
    assert len(findings) == 2
    assert {"energy", "time"} == {
        "energy" if "energy" in f.message else "time" for f in findings}


def test_r4_reports_default_and_bare_except() -> None:
    findings = lint_fixture("r4_bad.pysnippet")
    assert len(findings) == 2
    messages = " ".join(f.message for f in findings)
    assert "mutable default" in messages
    assert "bare except" in messages


# ----------------------------------------------------------------------
# rule scoping
# ----------------------------------------------------------------------
def test_package_rules_do_not_apply_outside_the_package() -> None:
    # Outside repro/ only R4 applies: the R1 fixture is legal there.
    assert lint_fixture("r1_bad.pysnippet", package_rel=None) == []


def test_rng_module_is_exempt_from_r1() -> None:
    source = "import numpy as np\nrng = np.random.default_rng()\n"
    inside = lint_source(source, path="x.py",
                         package_rel=("repro", "core", "x.py"))
    assert [f.rule for f in inside] == ["R1"]
    sanctioned = lint_source(source, path="rng.py",
                             package_rel=("repro", "sim", "rng.py"))
    assert sanctioned == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_inline_pragma_suppresses_the_named_rule() -> None:
    assert lint_fixture("suppressed.pysnippet") == []


def test_pragma_for_a_different_rule_does_not_suppress() -> None:
    source = ("import time\n"
              "t = time.time()  # repro-lint: ignore[R3]\n")
    findings = lint_source(source, path="x.py", package_rel=IN_PACKAGE)
    assert [f.rule for f in findings] == ["R1"]


def test_bare_ignore_suppresses_everything_on_the_line() -> None:
    source = ("import time\n"
              "t = time.time()  # repro-lint: ignore\n")
    assert lint_source(source, path="x.py", package_rel=IN_PACKAGE) == []


def test_skip_file_pragma() -> None:
    source = ("# repro-lint: skip-file\n"
              "import time\n"
              "t = time.time()\n")
    assert lint_source(source, path="x.py", package_rel=IN_PACKAGE) == []


# ----------------------------------------------------------------------
# parse errors
# ----------------------------------------------------------------------
def test_syntax_error_is_a_finding_not_a_crash() -> None:
    findings = lint_source("def broken(:\n", path="x.py")
    assert [f.rule for f in findings] == ["E1"]
    assert "syntax error" in findings[0].message


# ----------------------------------------------------------------------
# inference details
# ----------------------------------------------------------------------
def test_alias_annotations_beat_lexical_inference() -> None:
    # 'budget' carries no lexical unit; the Seconds annotation binds it,
    # so comparing it to a joules-named value is a dimension mix.
    source = ("from repro.units import Seconds\n"
              "def f(budget: Seconds, total_energy: float) -> bool:\n"
              "    return budget < total_energy\n")
    findings = lint_source(source, path="x.py", package_rel=IN_PACKAGE)
    mixes = [f for f in findings if "incompatible dimensions" in f.message]
    assert len(mixes) == 1


def test_propagation_through_addition() -> None:
    source = ("def f(end_time: float, total_energy: float) -> bool:\n"
              "    return end_time + 1.0 < total_energy\n")
    findings = lint_source(source, path="x.py", package_rel=IN_PACKAGE)
    assert any("incompatible dimensions" in f.message for f in findings)


def test_same_dimension_arithmetic_is_silent() -> None:
    source = ("from repro.units import Seconds\n"
              "def f(start_time: Seconds, end_time: Seconds) -> Seconds:\n"
              "    return end_time - start_time\n")
    assert lint_source(source, path="x.py", package_rel=IN_PACKAGE) == []


def test_finding_render_is_editor_clickable() -> None:
    findings = lint_source("x = []\ndef f(a=[]):\n    return a\n",
                           path="mod.py")
    assert findings and findings[0].render().startswith("mod.py:2:")
    assert "R4(defensive-defaults)" in findings[0].render()


# ----------------------------------------------------------------------
# R5 layering specifics
# ----------------------------------------------------------------------
def test_r5_counts_every_upward_import() -> None:
    findings = lint_fixture("r5_bad.pysnippet")
    assert len(findings) == 3
    messages = " ".join(f.message for f in findings)
    assert "repro.cli" in messages
    assert "repro.experiments" in messages
    assert "repro.experiments.runner" in messages


def test_r5_devices_may_not_import_kernel_or_core() -> None:
    source = ("from repro.kernel.vfs import VirtualFileSystem\n"
              "from repro.core.session import SimulationSession\n")
    findings = lint_source(source, path="disk.py",
                           package_rel=("repro", "devices", "disk.py"))
    assert [f.rule for f in findings] == ["R5", "R5"]


def test_r5_resolves_relative_imports() -> None:
    source = "from ..core import session\n"
    findings = lint_source(source, path="disk.py",
                           package_rel=("repro", "devices", "disk.py"))
    assert [f.rule for f in findings] == ["R5"]
    assert "repro.core" in findings[0].message


def test_r5_same_rank_and_downward_are_allowed() -> None:
    # experiments(4) and cli(4) share a rank; cli importing core is
    # downward.  Neither direction is a finding.
    assert lint_source("from repro.cli import main\n", path="figures.py",
                       package_rel=("repro", "experiments",
                                    "figures.py")) == []
    assert lint_source("from repro.core.session import"
                       " SimulationSession\n", path="cli.py",
                       package_rel=("repro", "cli.py")) == []


def test_r5_unranked_packages_are_exempt() -> None:
    # traces sits outside the stack on purpose (it builds core
    # profiles); importing core from it is not upward.
    source = "from repro.core.profile import profile_from_trace\n"
    assert lint_source(source, path="scenarios.py",
                       package_rel=("repro", "traces", "synth",
                                    "scenarios.py")) == []


def test_r5_pragma_suppresses() -> None:
    source = ("from repro.experiments.runner import run_point"
              "  # repro-lint: ignore[R5]\n")
    assert lint_source(source, path="x.py", package_rel=IN_PACKAGE) == []


def test_r5_relative_imports_resolve_from_nested_subpackages() -> None:
    # traces.synth is two levels deep; each leading dot beyond the
    # first climbs one package.
    import ast

    from repro.lint.layering import LayeringRule
    from repro.lint.rules import FileContext

    rule = LayeringRule(FileContext(
        path="scenarios.py",
        package_rel=("repro", "traces", "synth", "scenarios.py")))
    resolve = rule._absolute_module

    def node_of(source: str) -> ast.ImportFrom:
        stmt = ast.parse(source).body[0]
        assert isinstance(stmt, ast.ImportFrom)
        return stmt

    assert resolve(node_of("from . import phases")) == \
        "repro.traces.synth"
    assert resolve(node_of("from ..trace import Trace")) == \
        "repro.traces.trace"
    assert resolve(node_of("from ...core import profile")) == \
        "repro.core"
    # exactly at the root the path leaves ``repro`` (never ranked);
    # climbing past it is unresolvable, not a crash.
    assert resolve(node_of("from ....x import y")) == "x"
    assert resolve(node_of("from .....x import y")) is None


def test_r5_relative_upward_import_from_ranked_subpackage() -> None:
    # a hypothetical devices/models/disk.py reaching up into core via
    # a relative import is still caught after resolution.
    source = "from ...core import session\n"
    findings = lint_source(source, path="disk.py",
                           package_rel=("repro", "devices", "models",
                                        "disk.py"))
    assert [f.rule for f in findings] == ["R5"]
    assert "repro.core" in findings[0].message


def test_r5_relative_imports_inside_traces_synth_are_clean() -> None:
    # the whole synth package is unranked, so even its upward-looking
    # relative imports (into core) resolve without a finding.
    source = ("from ..trace import Trace\n"
              "from ...core.profile import profile_from_trace\n")
    assert lint_source(source, path="scenarios.py",
                       package_rel=("repro", "traces", "synth",
                                    "scenarios.py")) == []
