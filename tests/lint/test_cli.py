"""CLI behaviour of ``python -m repro.lint`` and ``flexfetch lint``."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main as flexfetch_main
from repro.lint import RULES
from repro.lint.runner import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_clean_tree_exits_zero(capsys: pytest.CaptureFixture[str]) -> None:
    assert lint_main([str(REPO_ROOT / "src" / "repro" / "units.py")]) == 0
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "0 findings" in captured.err


def test_findings_exit_one(tmp_path: Path,
                           capsys: pytest.CaptureFixture[str]) -> None:
    bad = tmp_path / "bad.py"
    bad.write_text("def f(a=[]):\n    return a\n", encoding="utf-8")
    assert lint_main([str(bad)]) == 1
    captured = capsys.readouterr()
    assert "R4(defensive-defaults)" in captured.out
    assert "1 finding" in captured.err


def test_select_restricts_rules(tmp_path: Path,
                                capsys: pytest.CaptureFixture[str]) -> None:
    bad = tmp_path / "bad.py"
    bad.write_text("def f(a=[]):\n    return a\n", encoding="utf-8")
    assert lint_main([str(bad), "--select", "R1"]) == 0
    capsys.readouterr()


def test_unknown_rule_is_a_usage_error(
        capsys: pytest.CaptureFixture[str]) -> None:
    # R42 must stay unassigned; R9 was the guinea pig here until the
    # interprocedural rules claimed it.
    assert lint_main([str(REPO_ROOT / "src"), "--select", "R42"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(
        tmp_path: Path, capsys: pytest.CaptureFixture[str]) -> None:
    assert lint_main([str(tmp_path / "nope")]) == 2
    assert "no such paths" in capsys.readouterr().err


def test_list_rules_prints_the_catalogue(
        capsys: pytest.CaptureFixture[str]) -> None:
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R1", "R2", "R3", "R4", "R5"):
        assert rule_id in out
    assert RULES["R2"].name in out


def test_flexfetch_lint_subcommand(
        tmp_path: Path, capsys: pytest.CaptureFixture[str]) -> None:
    good = tmp_path / "good.py"
    good.write_text("X = 1\n", encoding="utf-8")
    assert flexfetch_main(["lint", str(good)]) == 0
    bad = tmp_path / "bad.py"
    bad.write_text("try:\n    pass\nexcept:\n    pass\n", encoding="utf-8")
    assert flexfetch_main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "R4" in out
