"""Shadow-execution sanitizer (``repro.core.shadow``).

Three layers of proof:

* **property**: across perturbed Table-3 scenarios (memory size, seed,
  think-time scale) the sanitizer finds zero divergences — the fast
  path really is bit-identical to the event loop, not just on the
  golden grid;
* **detection**: a deliberately broken fast-path kernel (the plan
  cursor lies about residency) raises ``ReplayDivergenceError`` that
  pinpoints the first diverging stage, record and field;
* **plumbing**: ``run_point(sanitize=True)`` returns bit-identical
  results, skips the twin for event-loop-only cells, and the bit
  comparison itself distinguishes what ``==`` cannot.
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.plan as plan_mod
from repro.core.profile import profile_from_trace
from repro.core.session import SimulationSession
from repro.core.shadow import (
    ReplayDivergenceError,
    _bit_equal,
    compare_runs,
    run_shadowed,
)
from repro.core.workload import ProgramSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import _standard_policies
from repro.experiments.runner import run_point
from repro.faults.schedule import FaultSchedule, FaultSpec
from repro.traces.synth import generate_thunderbird
from repro.traces.trace import Trace
from repro.sim.clock import MB


def _scaled(trace: Trace, scale: float) -> Trace:
    """Stretch/compress every think gap by ``scale`` (> 0 preserves
    record ordering, so the trace stays valid)."""
    records = [replace(r, timestamp=r.timestamp * scale,
                       duration=r.duration * scale)
               for r in trace.records]
    return Trace(f"{trace.name}-x{scale}", records, trace.files)


def _setup(seed: int, think_scale: float):
    config = ExperimentConfig()
    trace = _scaled(generate_thunderbird(seed), think_scale)
    policies = _standard_policies(profile_from_trace(trace), config)
    return config, trace, policies


def _session(trace, policy, config, memory_bytes, **kwargs):
    return SimulationSession([ProgramSpec(trace)], policy,
                             disk_spec=config.disk_spec,
                             wnic_spec=config.wnic_spec,
                             memory_bytes=memory_bytes,
                             seed=config.seed, **kwargs)


class TestShadowParity:
    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(memory_mb=st.sampled_from([16, 32, 64, 128]),
           seed=st.integers(min_value=0, max_value=7),
           think_scale=st.sampled_from([0.5, 1.0, 2.0]),
           policy_index=st.integers(min_value=0, max_value=3))
    def test_zero_divergences_on_perturbed_scenarios(
            self, memory_mb, seed, think_scale, policy_index):
        config, trace, policies = _setup(seed, think_scale)
        name = sorted(policies)[policy_index % len(policies)]
        factory = policies[name]
        memory = memory_mb * MB
        session = _session(trace, factory(), config, memory)
        result = run_shadowed(
            session,
            lambda: _session(trace, factory(), config, memory))
        assert session.used_fast_path, (
            "perturbed scenario unexpectedly fell off the fast path")
        assert math.isfinite(result.end_time)

    def test_all_standard_policies_shadow_clean(self):
        config, trace, policies = _setup(0, 1.0)
        for factory in policies.values():
            session = _session(trace, factory(), config,
                               config.memory_bytes)
            run_shadowed(
                session,
                lambda f=factory: _session(trace, f(), config,
                                           config.memory_bytes))
            assert session.used_fast_path


class TestDivergenceDetection:
    def test_broken_kernel_is_localised(self, monkeypatch):
        """A plan cursor that claims everything is resident flips
        FlexFetch's first routing decision; the sanitizer must name
        the stage (service), the record (0) and the field (source)."""
        config, trace, policies = _setup(0, 1.0)
        factory = policies["FlexFetch"]
        monkeypatch.setattr(
            plan_mod.PlanCursor, "resident_bytes",
            lambda self, inode, offset, size: size)
        session = _session(trace, factory(), config,
                           config.memory_bytes)
        with pytest.raises(ReplayDivergenceError) as excinfo:
            run_shadowed(
                session,
                lambda: _session(trace, factory(), config,
                                 config.memory_bytes))
        err = excinfo.value
        assert err.stage == "service"
        assert err.index == 0
        assert err.field == "source"
        assert err.fast != err.slow
        # both cost breakdowns travel with the error for post-mortem
        assert err.fast_breakdown and err.slow_breakdown
        assert any(k.startswith("disk.") for k in err.fast_breakdown)
        assert str(err.index) in str(err) or "[0]" in str(err)

    def test_unbroken_kernel_raises_nothing(self):
        config, trace, policies = _setup(0, 1.0)
        factory = policies["FlexFetch"]
        session = _session(trace, factory(), config,
                           config.memory_bytes)
        run_shadowed(
            session,
            lambda: _session(trace, factory(), config,
                             config.memory_bytes))
        assert session.used_fast_path


class TestPlumbing:
    def test_run_point_sanitized_is_bit_identical(self):
        config, trace, policies = _setup(0, 1.0)
        factory = policies["FlexFetch"]
        programs = lambda: [ProgramSpec(trace)]  # noqa: E731
        plain = run_point(programs, factory, config.wnic_spec, config,
                          sanitize=False)
        sanitized = run_point(programs, factory, config.wnic_spec,
                              config, sanitize=True)
        assert sanitized.result == plain.result

    def test_event_loop_cells_skip_the_twin(self):
        """A faulted cell refuses the fast path; the sanitizer must
        not build (or run) a shadow twin for it."""
        config, trace, policies = _setup(0, 1.0)
        factory = policies["FlexFetch"]
        spec = FaultSpec(outage_rate=0.001, spinup_fail_prob=0.2)
        session = _session(trace, factory(), config,
                           config.memory_bytes,
                           faults=FaultSchedule(spec, seed=7))

        def explode() -> SimulationSession:
            raise AssertionError("twin built for an event-loop cell")

        result = run_shadowed(session, explode)
        assert not session.used_fast_path
        assert math.isfinite(result.end_time)

    def test_bit_equal_is_stricter_than_eq(self):
        assert _bit_equal(float("nan"), float("nan"))
        assert not _bit_equal(0.0, -0.0)
        assert _bit_equal({"a": [1.0, 2.0]}, {"a": [1.0, 2.0]})
        assert not _bit_equal({"a": 1.0}, {"b": 1.0})

    def test_compare_runs_flags_result_fields(self):
        config, trace, policies = _setup(0, 1.0)
        factory = policies["FlexFetch"]
        a = _session(trace, factory(), config,
                     config.memory_bytes).run()
        b = _session(trace, factory(), config,
                     config.memory_bytes).run()
        compare_runs(a, b)  # identical: no raise
        skewed = replace(b, disk_energy=b.disk_energy + 1e-9)
        with pytest.raises(ReplayDivergenceError) as excinfo:
            compare_runs(a, skewed)
        assert excinfo.value.stage == "result"
        assert excinfo.value.field == "disk_energy"
        assert excinfo.value.index == -1
