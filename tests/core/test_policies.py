"""Unit tests for the policy interface and fixed baselines."""

import pytest

from repro.core.decision import DataSource
from repro.core.policies import (
    DiskOnlyPolicy,
    RequestContext,
    WnicOnlyPolicy,
)
from repro.traces.record import OpType


def ctx(**kw):
    base = dict(now=0.0, program="p", profiled=True, disk_pinned=False,
                inode=1, offset=0, nbytes=4096, op=OpType.READ)
    base.update(kw)
    return RequestContext(**base)


class TestBaselines:
    def test_disk_only(self):
        assert DiskOnlyPolicy().choose(ctx()) is DataSource.DISK

    def test_wnic_only(self):
        assert WnicOnlyPolicy().choose(ctx()) is DataSource.NETWORK

    def test_names(self):
        assert DiskOnlyPolicy().name == "Disk-only"
        assert WnicOnlyPolicy().name == "WNIC-only"


class TestRouteWrapper:
    def test_pinning_overrides_choice(self):
        policy = WnicOnlyPolicy()
        assert policy.route(ctx(disk_pinned=True)) is DataSource.DISK

    def test_tallies(self):
        policy = WnicOnlyPolicy()
        policy.route(ctx(nbytes=100))
        policy.route(ctx(nbytes=200, disk_pinned=True))
        assert policy.routed_requests[DataSource.NETWORK] == 1
        assert policy.routed_requests[DataSource.DISK] == 1
        assert policy.routed_bytes[DataSource.NETWORK] == 100
        assert policy.routed_bytes[DataSource.DISK] == 200

    def test_default_hooks_are_noops(self):
        policy = DiskOnlyPolicy()
        policy.on_tick(1.0)
        policy.on_serviced(ctx(), DataSource.DISK, None)
        policy.on_syscall(ctx(), 0.0, 0.1)
        policy.on_external_disk_request(1.0)
        policy.begin_run(0.0)
        policy.end_run(1.0)


class TestContext:
    def test_context_is_frozen(self):
        c = ctx()
        with pytest.raises(AttributeError):
            c.nbytes = 1
