"""Tests for concurrent profiled programs (§2.3.4 profile merging)."""

import pytest

from repro.core.flexfetch import FlexFetchPolicy
from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.profile import profile_from_trace
from repro.core.simulator import ProgramSpec, ReplaySimulator
from tests.conftest import make_trace


def media_trace(name="media", inode=1):
    """Periodic medium reads, network-friendly."""
    calls = [(inode, i * 262144, 262144, "read", i * 8.0)
             for i in range(12)]
    return make_trace(calls, name=name,
                      file_sizes={inode: 12 * 262144})


def scan_trace(name="scan", inode=2):
    """One dense sweep, disk-friendly."""
    calls = [(inode, i * 131072, 131072, "read", 50.0 + i * 0.001)
             for i in range(128)]
    return make_trace(calls, name=name,
                      file_sizes={inode: 128 * 131072})


class TestForPrograms:
    def test_requires_profiles(self):
        with pytest.raises(ValueError):
            FlexFetchPolicy.for_programs([])

    def test_single_profile_passthrough(self):
        profile = profile_from_trace(media_trace())
        policy = FlexFetchPolicy.for_programs([profile])
        assert policy.profile.total_bytes == profile.total_bytes

    def test_merged_profile_covers_both(self):
        pa = profile_from_trace(media_trace())
        pb = profile_from_trace(scan_trace())
        policy = FlexFetchPolicy.for_programs([pa, pb])
        assert policy.profile.total_bytes == \
            pa.total_bytes + pb.total_bytes

    def test_merged_bursts_time_ordered(self):
        pa = profile_from_trace(media_trace())
        pb = profile_from_trace(scan_trace())
        merged = FlexFetchPolicy.for_programs([pa, pb]).profile
        starts = [b.start for b in merged.bursts]
        assert starts == sorted(starts)


class TestConcurrentReplay:
    def test_two_profiled_programs_share_one_policy(self):
        a, b = media_trace(), scan_trace()
        policy = FlexFetchPolicy.for_programs(
            [profile_from_trace(a), profile_from_trace(b)])
        result = ReplaySimulator([ProgramSpec(a), ProgramSpec(b)],
                                 policy, seed=1).run()
        # Tracker aggregated both programs' demand bytes.
        assert policy.tracker.total_bytes == pytest.approx(
            sum(r.size for r in a.data_records())
            + sum(r.size for r in b.data_records()), rel=0.01)
        assert result.total_energy > 0

    def test_aggregate_beats_worse_fixed_policy(self):
        """The mixed workload has a disk-favoured phase and a
        network-favoured cadence; the merged-profile FlexFetch should
        not lose to both fixed baselines."""
        a, b = media_trace(), scan_trace()
        policy = FlexFetchPolicy.for_programs(
            [profile_from_trace(a), profile_from_trace(b)])
        ff = ReplaySimulator([ProgramSpec(a), ProgramSpec(b)], policy,
                             seed=1).run()
        disk = ReplaySimulator([ProgramSpec(a), ProgramSpec(b)],
                               DiskOnlyPolicy(), seed=1).run()
        wnic = ReplaySimulator([ProgramSpec(a), ProgramSpec(b)],
                               WnicOnlyPolicy(), seed=1).run()
        assert ff.total_energy <= max(disk.total_energy,
                                      wnic.total_energy)
