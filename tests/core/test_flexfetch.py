"""Unit tests for the FlexFetch policy (§2)."""

import pytest

from repro.core.decision import DataSource
from repro.core.flexfetch import FlexFetchConfig, FlexFetchPolicy
from repro.core.policies import RequestContext
from repro.core.profile import profile_from_trace
from repro.core.simulator import MobileSystem, ProgramSpec, ReplaySimulator
from repro.traces.record import OpType
from tests.conftest import make_trace


def dense_trace(nbytes=8 * 1024 * 1024):
    """One big sequential burst — unambiguously disk territory."""
    chunk = 128 * 1024
    calls = [(1, i * chunk, chunk, "read", i * 0.001)
             for i in range(nbytes // chunk)]
    return make_trace(calls, name="dense")


def sparse_small_trace(n=10, gap=15.0):
    """Small reads with WNIC-friendly gaps (doze-able, no disk timeout)."""
    calls = [(1, i * 65536, 65536, "read", i * gap) for i in range(n)]
    return make_trace(calls, name="sparse", file_sizes={1: n * 65536})


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = FlexFetchConfig()
        assert cfg.loss_rate == 0.25
        assert cfg.stage_length == 40.0
        assert cfg.burst_threshold == pytest.approx(0.020)
        assert cfg.adaptive

    def test_static_name(self):
        prof = profile_from_trace(dense_trace())
        assert FlexFetchPolicy(prof).name == "FlexFetch"
        assert FlexFetchPolicy(
            prof, FlexFetchConfig(adaptive=False)).name == "FlexFetch-static"

    def test_feature_gating(self):
        on = FlexFetchConfig(adaptive=True)
        off = FlexFetchConfig(adaptive=False)
        for f in ("splice_reevaluation", "stage_audit", "free_rider"):
            assert on.feature(f)
            assert not off.feature(f)
        # cache filter is estimation, not runtime adaptation
        assert on.feature("cache_filter")
        assert off.feature("cache_filter")
        assert not FlexFetchConfig(use_cache_filter=False).feature(
            "cache_filter")

    def test_validation(self):
        with pytest.raises(ValueError):
            FlexFetchConfig(loss_rate=-0.1)
        with pytest.raises(ValueError):
            FlexFetchConfig(stage_length=0)
        with pytest.raises(ValueError):
            FlexFetchConfig(switch_hysteresis=-0.1)
        with pytest.raises(ValueError):
            FlexFetchConfig(decision_horizon_stages=0)


class TestInitialDecision:
    def test_dense_profile_chooses_disk(self):
        trace = dense_trace()
        policy = FlexFetchPolicy(profile_from_trace(trace))
        ReplaySimulator([ProgramSpec(trace)], policy, seed=1).run()
        assert policy.decision_log[0][1] is DataSource.DISK
        assert policy.decision_log[0][2] == "initial"

    def test_sparse_profile_chooses_network(self):
        trace = sparse_small_trace()
        policy = FlexFetchPolicy(profile_from_trace(trace))
        ReplaySimulator([ProgramSpec(trace)], policy, seed=1).run()
        assert policy.decision_log[0][1] is DataSource.NETWORK


class TestEndToEndBehaviour:
    def test_dense_run_mostly_disk(self):
        trace = dense_trace()
        policy = FlexFetchPolicy(profile_from_trace(trace))
        result = ReplaySimulator([ProgramSpec(trace)], policy,
                                 seed=1).run()
        assert result.device_bytes["disk"] > result.device_bytes["network"]

    def test_sparse_run_mostly_network(self):
        trace = sparse_small_trace()
        policy = FlexFetchPolicy(profile_from_trace(trace))
        result = ReplaySimulator([ProgramSpec(trace)], policy,
                                 seed=1).run()
        assert result.device_bytes["network"] > result.device_bytes["disk"]

    def test_beats_or_matches_best_fixed_policy(self):
        """With an accurate profile FlexFetch should be within a small
        margin of the better fixed policy on both extremes."""
        from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
        for trace in (dense_trace(), sparse_small_trace()):
            prof = profile_from_trace(trace)
            ff = ReplaySimulator([ProgramSpec(trace)],
                                 FlexFetchPolicy(prof), seed=1).run()
            disk = ReplaySimulator([ProgramSpec(trace)],
                                   DiskOnlyPolicy(), seed=1).run()
            wnic = ReplaySimulator([ProgramSpec(trace)],
                                   WnicOnlyPolicy(), seed=1).run()
            best = min(disk.total_energy, wnic.total_energy)
            assert ff.total_energy <= best * 1.10, trace.name


class TestStageAudit:
    def test_stale_profile_corrected_after_one_stage(self):
        """The §3.3.5 mechanism in miniature: profile says sparse/small
        (network), actual run is dense/large (disk)."""
        stale = profile_from_trace(sparse_small_trace(n=6, gap=25.0))
        mb = 1024 * 1024
        # 2 MB/s stream: saturates the 1.375 MB/s WNIC (CAM pinned,
        # ~2.6 W) while the disk handles it in its sleep (~1.7 W).
        actual = make_trace(
            [(2, i * 2 * mb, 2 * mb, "read", i * 1.0) for i in range(90)],
            name="actual", file_sizes={2: 180 * mb})
        policy = FlexFetchPolicy(stale)
        ReplaySimulator([ProgramSpec(actual)], policy, seed=1).run()
        assert policy.decision_log[0][1] is DataSource.NETWORK
        # The audit must eventually force the disk.
        assert any(s is DataSource.DISK for _, s, r in policy.decision_log
                   if r == "audit-override")

    def test_static_never_audits(self):
        stale = profile_from_trace(sparse_small_trace(n=6, gap=25.0))
        actual = dense_trace()
        policy = FlexFetchPolicy(stale, FlexFetchConfig(adaptive=False))
        ReplaySimulator([ProgramSpec(actual)], policy, seed=1).run()
        assert policy.audit_log == []
        assert all(r != "audit-override"
                   for _, _, r in policy.decision_log)


class TestFreeRider:
    def test_external_activity_diverts_to_disk(self):
        trace = sparse_small_trace()
        policy = FlexFetchPolicy(profile_from_trace(trace))
        env = MobileSystem()
        env.register_trace(trace)
        policy.attach(env)
        policy.begin_run(0.0)
        policy.current_source = DataSource.NETWORK
        # Background program hits the disk every 5 s (< 20 s timeout).
        policy.on_external_disk_request(10.0)
        policy.on_external_disk_request(15.0)
        choice = policy.choose(RequestContext(
            now=16.0, program="p", profiled=True, disk_pinned=False,
            inode=1, offset=0, nbytes=65536, op=OpType.READ))
        assert choice is DataSource.DISK
        assert policy.free_rides == 1

    def test_stale_external_activity_ignored(self):
        trace = sparse_small_trace()
        policy = FlexFetchPolicy(profile_from_trace(trace))
        env = MobileSystem()
        env.register_trace(trace)
        policy.attach(env)
        policy.begin_run(0.0)
        policy.current_source = DataSource.NETWORK
        policy.on_external_disk_request(1.0)
        policy.on_external_disk_request(2.0)
        # 30 s later the disk has spun down again.
        choice = policy.choose(RequestContext(
            now=32.0, program="p", profiled=True, disk_pinned=False,
            inode=1, offset=0, nbytes=65536, op=OpType.READ))
        assert choice is DataSource.NETWORK

    def test_free_rider_disabled_by_config(self):
        trace = sparse_small_trace()
        policy = FlexFetchPolicy(
            profile_from_trace(trace),
            FlexFetchConfig(use_free_rider=False))
        env = MobileSystem()
        env.register_trace(trace)
        policy.attach(env)
        policy.begin_run(0.0)
        policy.current_source = DataSource.NETWORK
        policy.on_external_disk_request(10.0)
        policy.on_external_disk_request(15.0)
        choice = policy.choose(RequestContext(
            now=16.0, program="p", profiled=True, disk_pinned=False,
            inode=1, offset=0, nbytes=65536, op=OpType.READ))
        assert choice is DataSource.NETWORK


class TestSplice:
    def test_boundary_crossing_triggers_reevaluation(self):
        """A profile whose tail is a huge dense burst must flip the
        source as soon as the byte position crosses into it."""
        # Profile: sparse phase then dense phase.
        sparse_calls = [(1, i * 65536, 65536, "read", i * 15.0)
                        for i in range(5)]
        t0 = 5 * 15.0
        dense_calls = [(2, i * 131072, 131072, "read",
                        t0 + i * 0.001) for i in range(256)]
        trace = make_trace(sparse_calls + dense_calls, name="two-phase",
                           file_sizes={1: 5 * 65536, 2: 256 * 131072})
        policy = FlexFetchPolicy(profile_from_trace(trace))
        result = ReplaySimulator([ProgramSpec(trace)], policy,
                                 seed=1).run()
        sources = [s for _, s, _ in policy.decision_log]
        assert DataSource.NETWORK in sources     # sparse phase
        assert DataSource.DISK in sources        # dense phase
        # The dense phase predominantly went to disk.
        assert result.device_bytes["disk"] > result.device_bytes["network"]


class TestObservation:
    def test_tracker_counts_demand_bytes(self, tiny_trace):
        policy = FlexFetchPolicy(profile_from_trace(tiny_trace))
        ReplaySimulator([ProgramSpec(tiny_trace)], policy, seed=1).run()
        assert policy.tracker.total_bytes == 3 * 4096

    def test_unprofiled_requests_not_observed(self):
        trace = sparse_small_trace()
        policy = FlexFetchPolicy(profile_from_trace(trace))
        ReplaySimulator(
            [ProgramSpec(trace, profiled=False, disk_pinned=True)],
            policy, seed=1).run()
        assert policy.tracker.total_bytes == 0
