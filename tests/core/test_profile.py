"""Unit tests for execution profiles and evaluation stages (§2.2)."""

import pytest

from repro.core.burst import IOBurst, ProfiledRequest
from repro.core.profile import (
    STAGE_LENGTH_DEFAULT,
    ExecutionProfile,
    profile_from_trace,
)
from repro.traces.record import OpType


def burst(nbytes, start, dur):
    req = ProfiledRequest(inode=1, offset=0, size=nbytes, op=OpType.READ)
    return IOBurst(requests=(req,), start=start, end=start + dur)


def profile(spec):
    """Build from (nbytes, duration, think_after) tuples."""
    bursts = []
    thinks = []
    t = 0.0
    for nbytes, dur, think in spec:
        bursts.append(burst(nbytes, t, dur))
        thinks.append(think)
        t += dur + think
    return ExecutionProfile(bursts, thinks)


class TestConstruction:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ExecutionProfile([burst(1, 0, 1)], [])

    def test_totals(self):
        p = profile([(100, 1.0, 5.0), (200, 2.0, 0.0)])
        assert p.total_bytes == 300
        assert p.total_duration == pytest.approx(8.0)

    def test_empty_profile(self):
        p = ExecutionProfile([], [])
        assert p.total_bytes == 0
        assert len(p) == 0
        assert p.stages() == []


class TestByteIndexing:
    def test_bytes_through(self):
        p = profile([(100, 1, 1), (200, 1, 1), (300, 1, 0)])
        assert p.bytes_through(0) == 100
        assert p.bytes_through(2) == 600
        with pytest.raises(IndexError):
            p.bytes_through(3)

    def test_burst_index_for_bytes(self):
        p = profile([(100, 1, 1), (200, 1, 1), (300, 1, 0)])
        assert p.burst_index_for_bytes(0) == 0
        assert p.burst_index_for_bytes(99) == 0
        assert p.burst_index_for_bytes(100) == 1   # burst 0 consumed
        assert p.burst_index_for_bytes(299) == 1
        assert p.burst_index_for_bytes(300) == 2
        assert p.burst_index_for_bytes(600) == 3   # past the end
        assert p.burst_index_for_bytes(9999) == 3


class TestStages:
    def test_default_stage_length(self):
        assert STAGE_LENGTH_DEFAULT == 40.0

    def test_segmentation_just_exceeds_threshold(self):
        # Bursts of 1 s each followed by 15 s thinks: 16 s per entry,
        # so a stage closes after 3 entries (48 s > 40 s).
        p = profile([(100, 1.0, 15.0)] * 6)
        stages = p.stages(40.0)
        assert [s.burst_count for s in stages] == [3, 3]
        assert stages[0].duration == pytest.approx(48.0)
        assert stages[0].nbytes == 300

    def test_last_stage_takes_remainder(self):
        p = profile([(100, 1.0, 15.0)] * 4)
        stages = p.stages(40.0)
        assert [s.burst_count for s in stages] == [3, 1]

    def test_single_giant_burst_is_one_stage(self):
        p = profile([(10_000, 120.0, 0.0)])
        stages = p.stages(40.0)
        assert len(stages) == 1

    def test_stage_indices_cover_profile(self):
        p = profile([(10, 2.0, 3.0)] * 25)
        stages = p.stages(40.0)
        assert stages[0].first == 0
        assert stages[-1].last == 24
        for a, b in zip(stages, stages[1:], strict=False):
            assert b.first == a.last + 1

    def test_stage_slice(self):
        p = profile([(100, 1.0, 15.0)] * 6)
        stages = p.stages(40.0)
        bursts, thinks = p.stage_slice(stages[1])
        assert len(bursts) == 3
        assert sum(b.nbytes for b in bursts) == 300

    def test_invalid_stage_length_rejected(self):
        with pytest.raises(ValueError):
            profile([(1, 1, 1)]).stages(0.0)


class TestSplice:
    def test_observed_replaces_covered_prefix(self):
        old = profile([(100, 1, 1), (200, 1, 1), (300, 1, 0)])
        observed = [burst(150, 0, 0.5)]
        spliced = old.spliced(observed, [0.2])
        # 150 observed bytes cover old burst 0 (100 B): replaced by the
        # observed burst, old bursts 1.. retained.
        assert len(spliced) == 3
        assert spliced.bursts[0].nbytes == 150
        assert spliced.bursts[1].nbytes == 200

    def test_observed_covering_everything(self):
        old = profile([(100, 1, 1), (200, 1, 0)])
        observed = [burst(500, 0, 2.0)]
        spliced = old.spliced(observed, [0.0])
        assert len(spliced) == 1
        assert spliced.total_bytes == 500

    def test_empty_observation_is_identity(self):
        old = profile([(100, 1, 1), (200, 1, 0)])
        spliced = old.spliced([], [])
        assert spliced.total_bytes == old.total_bytes
        assert len(spliced) == len(old)

    def test_mismatched_lengths_rejected(self):
        old = profile([(100, 1, 0)])
        with pytest.raises(ValueError):
            old.spliced([burst(1, 0, 1)], [])


class TestMerge:
    def test_merged_interleaves_by_time(self):
        a = ExecutionProfile([burst(10, 0.0, 1.0), burst(10, 10.0, 1.0)],
                             [9.0, 0.0], name="a")
        b = ExecutionProfile([burst(20, 5.0, 1.0)], [0.0], name="b")
        m = a.merged_with(b)
        assert [bu.start for bu in m.bursts] == [0.0, 5.0, 10.0]
        assert m.thinks[0] == pytest.approx(4.0)   # 5.0 - end(1.0)
        assert m.thinks[1] == pytest.approx(4.0)   # 10.0 - end(6.0)


class TestFromTrace:
    def test_profile_from_trace(self, tiny_trace):
        p = profile_from_trace(tiny_trace)
        assert len(p) == 2                    # 5 s gap splits
        assert p.total_bytes == 3 * 4096
        assert p.name == tiny_trace.name
