"""Property-based fault-injection tests.

Random small workloads under random (but seeded, deterministic) fault
schedules: every policy must complete the trace, every run must satisfy
the strict-mode invariants, and injected faults can only ever cost a
device energy, never save it (failover aside — see TestFaultsOnlyCost).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.bluefs import BlueFSPolicy
from repro.core.flexfetch import FlexFetchPolicy
from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.profile import profile_from_trace
from repro.core.simulator import ProgramSpec, ReplaySimulator
from repro.faults.schedule import FaultSchedule, FaultSpec
from repro.traces.record import FileInfo, OpType, SyscallRecord
from repro.traces.trace import Trace


@st.composite
def workload(draw):
    """A small random but coherent workload (seconds to replay)."""
    n_files = draw(st.integers(1, 2))
    file_pages = [draw(st.integers(4, 256)) for _ in range(n_files)]
    files = {i + 1: FileInfo(inode=i + 1, path=f"f{i}",
                             size_bytes=p * 4096)
             for i, p in enumerate(file_pages)}
    n = draw(st.integers(1, 18))
    records = []
    ts = 0.0
    for _ in range(n):
        inode = draw(st.integers(1, n_files))
        limit = files[inode].size_bytes
        op = draw(st.sampled_from([OpType.READ, OpType.READ,
                                   OpType.WRITE]))
        offset = draw(st.integers(0, max(0, limit - 4096)))
        size = draw(st.integers(1, min(131072, limit - offset)))
        ts += draw(st.sampled_from([0.001, 0.5, 3.0, 25.0]))
        records.append(SyscallRecord(
            pid=1, fd=3, inode=inode, offset=offset, size=size, op=op,
            timestamp=ts, duration=0.0))
    return Trace("random", records, files)


@st.composite
def fault_spec(draw):
    """A random non-trivial (or deliberately trivial) fault spec."""
    return FaultSpec(
        outage_rate=draw(st.sampled_from([0.0, 0.005, 0.02])),
        outage_mean=draw(st.sampled_from([5.0, 20.0])),
        rate_flap_rate=draw(st.sampled_from([0.0, 0.01])),
        spinup_fail_prob=draw(st.sampled_from([0.0, 0.25])),
        network_timeout=draw(st.sampled_from([2.0, 5.0])),
        network_retries=draw(st.integers(0, 2)),
        spinup_retries=draw(st.integers(0, 2)),
    )


POLICIES = {
    "disk-only": lambda trace: DiskOnlyPolicy(),
    "wnic-only": lambda trace: WnicOnlyPolicy(),
    "bluefs": lambda trace: BlueFSPolicy(),
    "flexfetch": lambda trace: FlexFetchPolicy(profile_from_trace(trace)),
}

COMMON = dict(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


def _run(trace, make_policy, *, faults=None, strict=False):
    return ReplaySimulator([ProgramSpec(trace)], make_policy(trace),
                           seed=1, faults=faults, strict=strict).run()


class TestEveryPolicyCompletesUnderFaults:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    @settings(**COMMON)
    @given(trace=workload(), spec=fault_spec(),
           fault_seed=st.integers(0, 2**31 - 1))
    def test_completes_and_invariants_hold(self, name, trace, spec,
                                           fault_seed):
        """Strict mode (clock, energy, exactly-once, conservation) holds
        on every faulted run, and the whole trace is serviced."""
        make_policy = POLICIES[name]
        faults = FaultSchedule(spec, seed=fault_seed)
        result = _run(trace, make_policy, faults=faults, strict=True)
        assert result.requests == len(trace.data_records())


class TestFaultsOnlyCost:
    """Faults never make a run cheaper — per device.

    The guarantee is per-device, not global: a failover legitimately
    re-routes work onto the *other* device, which may be cheaper for
    that workload (e.g. spin-up failures push a disk-only run onto the
    WNIC and the disk then idles in standby).  So the monotonicity
    property is asserted whenever no failover re-routed any bytes, and
    unconditionally when failover is structurally impossible
    (a disk-pinned program has no remote replica to fail over to).
    """

    @pytest.mark.parametrize("name", ["disk-only", "wnic-only"])
    @settings(**COMMON)
    @given(trace=workload(), spec=fault_spec(),
           fault_seed=st.integers(0, 2**31 - 1))
    def test_energy_at_least_fault_free_without_failover(self, name, trace,
                                                         spec, fault_seed):
        make_policy = POLICIES[name]
        base = _run(trace, make_policy)
        faulted = _run(trace, make_policy,
                       faults=FaultSchedule(spec, seed=fault_seed))
        if sum(faulted.fault_failovers.values()) == 0:
            assert faulted.total_energy >= base.total_energy - 1e-6

    @settings(**COMMON)
    @given(trace=workload(), spec=fault_spec(),
           fault_seed=st.integers(0, 2**31 - 1))
    def test_pinned_disk_faults_strictly_additive(self, trace, spec,
                                                  fault_seed):
        """With no replica to fail over to, spin-up failures can only
        ever add retries and energy on the disk itself."""
        def run(faults=None):
            return ReplaySimulator(
                [ProgramSpec(trace, profiled=False, disk_pinned=True)],
                DiskOnlyPolicy(), seed=1, faults=faults).run()

        base = run()
        faulted = run(faults=FaultSchedule(spec, seed=fault_seed))
        assert faulted.total_energy >= base.total_energy - 1e-6


class TestScheduleDeterminismUnderReplay:
    @settings(**COMMON)
    @given(trace=workload(), spec=fault_spec(),
           fault_seed=st.integers(0, 2**31 - 1))
    def test_same_schedule_same_run(self, trace, spec, fault_seed):
        a = _run(trace, POLICIES["wnic-only"],
                 faults=FaultSchedule(spec, seed=fault_seed))
        b = _run(trace, POLICIES["wnic-only"],
                 faults=FaultSchedule(spec, seed=fault_seed))
        assert a.total_energy == b.total_energy
        assert a.end_time == b.end_time
        assert a.fault_retries == b.fault_retries
