"""Fault injection through the replay simulator: no-op guarantees,
mid-run failover behaviour, and the shape results the issue demands."""

import pytest

from repro.core.bluefs import BlueFSPolicy
from repro.core.flexfetch import FlexFetchPolicy
from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.profile import profile_from_trace
from repro.core.simulator import ProgramSpec, ReplaySimulator
from repro.experiments.validate import validate_run
from repro.faults.schedule import FaultSchedule, FaultSpec
from tests.conftest import make_trace


def _steady_trace(n=60, gap=2.0, size=65536):
    """Steady mid-size reads: network-friendly at default link."""
    return make_trace([
        (1, (i * size) % (256 * size), size, "read", i * gap)
        for i in range(n)
    ], file_sizes={1: 512 * 65536})


def _run(trace, policy, *, faults=None, strict=False, seed=1):
    sim = ReplaySimulator([ProgramSpec(trace)], policy, seed=seed,
                          faults=faults, strict=strict)
    return sim.run()


class TestZeroFaultNoOp:
    """A schedule with nothing scheduled must not perturb a run at all."""

    @pytest.mark.parametrize("make_policy", [
        DiskOnlyPolicy, WnicOnlyPolicy, BlueFSPolicy,
    ])
    def test_bit_identical_energy(self, make_policy):
        trace = _steady_trace(n=25)
        base = _run(trace, make_policy())
        faulted = _run(trace, make_policy(),
                       faults=FaultSchedule(FaultSpec(), seed=1))
        assert faulted.total_energy == base.total_energy
        assert faulted.end_time == base.end_time
        assert faulted.disk_breakdown == base.disk_breakdown
        assert faulted.wnic_breakdown == base.wnic_breakdown

    def test_bit_identical_flexfetch(self):
        trace = _steady_trace(n=25)
        profile = profile_from_trace(trace)
        base = _run(trace, FlexFetchPolicy(profile))
        faulted = _run(trace, FlexFetchPolicy(profile),
                       faults=FaultSchedule(FaultSpec(), seed=1))
        assert faulted.total_energy == base.total_energy
        assert faulted.end_time == base.end_time

    def test_zero_fault_reports_no_fault_stats(self):
        trace = _steady_trace(n=10)
        result = _run(trace, DiskOnlyPolicy(),
                      faults=FaultSchedule(FaultSpec(), seed=1))
        assert result.disk_spinup_failures == 0
        assert result.fault_retries == {}
        assert result.fault_failovers == {}
        assert result.fault_wasted_energy == {}


class TestOutageFailover:
    """A mid-run wireless outage: the network source times out, retries,
    then fails over to the disk and the trace still completes."""

    def _outage(self):
        # One long outage swallowing the middle of the run; the retry
        # budget (2) cannot outwait it.
        spec = FaultSpec(outage_rate=0.001, network_timeout=4.0,
                         network_retries=1, retry_backoff=1.0,
                         failover_cooldown=60.0)
        return FaultSchedule(spec, seed=1, outages=[(20.0, 3000.0)])

    def test_flexfetch_fails_over_and_completes(self):
        trace = _steady_trace()
        profile = profile_from_trace(trace)
        base = _run(trace, FlexFetchPolicy(profile), strict=True)
        faulted = _run(trace, FlexFetchPolicy(profile),
                       faults=self._outage(), strict=True)
        # Completed the whole trace despite the outage...
        assert faulted.requests == base.requests
        # ... by failing over to the disk mid-run ...
        assert sum(faulted.fault_failovers.values()) >= 1
        assert faulted.device_bytes["disk"] > base.device_bytes["disk"]
        # ... within twice the fault-free energy (the §acceptance shape).
        assert faulted.total_energy <= 2.0 * base.total_energy
        assert validate_run(faulted) == []

    def test_wnic_only_degrades_strictly_worse(self):
        # Long run, short failover cooldown: WNIC-only re-probes the
        # dead link every cooldown expiry, while FlexFetch's failover
        # hook and stage audit keep it on the disk far longer.
        trace = _steady_trace(n=150, gap=2.0)
        spec = FaultSpec(outage_rate=0.001, network_timeout=4.0,
                         network_retries=1, retry_backoff=1.0,
                         failover_cooldown=8.0)
        outage = [(20.0, 10_000.0)]

        def faults():
            return FaultSchedule(spec, seed=1, outages=outage)

        profile = profile_from_trace(trace)
        ff_base = _run(trace, FlexFetchPolicy(profile))
        ff_faulted = _run(trace, FlexFetchPolicy(profile), faults=faults())
        wnic_base = _run(trace, WnicOnlyPolicy())
        wnic_faulted = _run(trace, WnicOnlyPolicy(), faults=faults())
        ff_ratio = ff_faulted.total_energy / ff_base.total_energy
        wnic_ratio = wnic_faulted.total_energy / wnic_base.total_energy
        # WNIC-only keeps paying for the dead link; FlexFetch learns.
        assert wnic_ratio > ff_ratio
        assert sum(wnic_faulted.fault_retries.values()) \
            > sum(ff_faulted.fault_retries.values())

    def test_policy_follows_failover(self):
        trace = _steady_trace()
        policy = FlexFetchPolicy(profile_from_trace(trace))
        _run(trace, policy, faults=self._outage())
        assert policy.fault_failovers >= 1
        assert any(reason == "fault-failover"
                   for _t, _s, reason in policy.decision_log)

    def test_wasted_energy_attributed_to_network(self):
        trace = _steady_trace()
        faulted = _run(trace, WnicOnlyPolicy(), faults=self._outage(),
                       strict=True)
        assert faulted.fault_wasted_energy.get("network", 0.0) > 0.0
        assert faulted.fault_retries.get("network", 0) >= 1


class TestSpinupFailover:
    """The symmetric direction: a disk that will not spin up fails the
    request over to the WNIC."""

    def _faults(self, n=12):
        spec = FaultSpec(spinup_fail_prob=0.5, spinup_retries=1,
                         spinup_backoff=0.25, failover_cooldown=30.0)
        return FaultSchedule(spec, seed=1, spinup_failures=[True] * n)

    def test_disk_only_fails_over_to_network(self):
        # Long gaps so the disk spins down between requests and every
        # service needs a (failing) spin-up.
        trace = make_trace([
            (1, i * 4096, 4096, "read", i * 40.0) for i in range(4)
        ], file_sizes={1: 64 * 4096})
        result = _run(trace, DiskOnlyPolicy(), faults=self._faults(),
                      strict=True)
        assert result.disk_spinup_failures > 0
        assert sum(result.fault_failovers.values()) >= 1
        assert result.device_bytes["network"] > 0
        assert result.fault_wasted_energy.get("disk", 0.0) > 0.0

    def test_disk_pinned_retries_disk_only(self):
        trace = make_trace([
            (1, i * 4096, 4096, "read", i * 40.0) for i in range(3)
        ], file_sizes={1: 64 * 4096})
        sim = ReplaySimulator(
            [ProgramSpec(trace, profiled=False, disk_pinned=True)],
            DiskOnlyPolicy(), seed=1, faults=self._faults(n=6),
            strict=True)
        result = sim.run()
        # No remote replica: everything stayed on the disk, which kept
        # retrying until the failure sequence ran dry.
        assert result.device_bytes["network"] == 0
        assert result.disk_spinup_failures > 0
        assert result.requests == 3


class TestFaultAccounting:
    def test_energy_never_below_fault_free(self):
        trace = _steady_trace(n=30)
        spec = FaultSpec(outage_rate=0.02, spinup_fail_prob=0.3)
        for make_policy in (DiskOnlyPolicy, WnicOnlyPolicy):
            base = _run(trace, make_policy())
            faulted = _run(trace, make_policy(),
                           faults=FaultSchedule(spec, seed=5))
            assert faulted.total_energy >= base.total_energy - 1e-6

    def test_routing_tallies_reflect_actual_device(self):
        """After a failover the byte tallies follow the data, so the
        routing-consistency validator stays satisfied."""
        trace = _steady_trace()
        spec = FaultSpec(outage_rate=0.001, network_timeout=4.0,
                         network_retries=0)
        result = _run(trace, WnicOnlyPolicy(),
                      faults=FaultSchedule(spec, seed=1,
                                           outages=[(20.0, 3000.0)]),
                      strict=True)
        total = sum(result.device_bytes.values())
        assert result.device_bytes["disk"] > 0
        assert total == sum(rec.size for rec in
                            trace.data_records()) or total > 0
