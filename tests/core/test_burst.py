"""Unit and property tests for I/O-burst extraction (§2.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.burst import (
    BURST_THRESHOLD_DEFAULT,
    MERGE_LIMIT_BYTES,
    IOBurst,
    OnlineBurstTracker,
    ProfiledRequest,
    extract_bursts,
)
from repro.traces.record import OpType, SyscallRecord


def rec(inode, offset, size, ts, op=OpType.READ, dur=0.0):
    return SyscallRecord(pid=1, fd=3, inode=inode, offset=offset,
                         size=size, op=op, timestamp=ts, duration=dur)


class TestThreshold:
    def test_default_is_disk_access_time(self):
        assert BURST_THRESHOLD_DEFAULT == pytest.approx(0.020)

    def test_gap_below_threshold_joins_burst(self):
        bursts, thinks = extract_bursts(
            [rec(1, 0, 10, 0.0), rec(1, 10, 10, 0.019)])
        assert len(bursts) == 1
        assert thinks == [0.0]

    def test_gap_at_threshold_splits(self):
        bursts, thinks = extract_bursts(
            [rec(1, 0, 10, 0.0), rec(1, 10, 10, 0.020)])
        assert len(bursts) == 2
        assert thinks[0] == pytest.approx(0.020)

    def test_custom_threshold(self):
        records = [rec(1, 0, 10, 0.0), rec(1, 10, 10, 1.0)]
        bursts, _ = extract_bursts(records, threshold=2.0)
        assert len(bursts) == 1

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            extract_bursts([], threshold=0.0)

    def test_gap_measured_from_call_end(self):
        # A call lasting 0.1 s followed 0.01 s after it RETURNS.
        bursts, _ = extract_bursts(
            [rec(1, 0, 10, 0.0, dur=0.1), rec(1, 10, 10, 0.11)])
        assert len(bursts) == 1


class TestMerging:
    def test_sequential_same_file_merges(self):
        bursts, _ = extract_bursts(
            [rec(1, 0, 100, 0.0), rec(1, 100, 100, 0.001)])
        assert len(bursts[0].requests) == 1
        assert bursts[0].requests[0].size == 200

    def test_merge_capped_at_128kb(self):
        chunk = 48 * 1024
        records = [rec(1, i * chunk, chunk, i * 0.001) for i in range(5)]
        bursts, _ = extract_bursts(records)
        sizes = [r.size for r in bursts[0].requests]
        assert all(s <= MERGE_LIMIT_BYTES for s in sizes)
        assert sum(sizes) == 5 * chunk

    def test_interleaved_files_do_not_merge(self):
        records = [rec(1, 0, 10, 0.0), rec(2, 0, 10, 0.001),
                   rec(1, 10, 10, 0.002)]
        bursts, _ = extract_bursts(records)
        assert len(bursts[0].requests) == 3

    def test_reads_and_writes_do_not_merge(self):
        records = [rec(1, 0, 10, 0.0),
                   rec(1, 10, 10, 0.001, op=OpType.WRITE)]
        bursts, _ = extract_bursts(records)
        assert len(bursts[0].requests) == 2
        assert bursts[0].read_bytes == 10
        assert bursts[0].write_bytes == 10

    def test_non_contiguous_same_file_does_not_merge(self):
        records = [rec(1, 0, 10, 0.0), rec(1, 100, 10, 0.001)]
        bursts, _ = extract_bursts(records)
        assert len(bursts[0].requests) == 2


class TestEdgeCases:
    def test_empty_input(self):
        assert extract_bursts([]) == ([], [])

    def test_zero_size_calls_skipped(self):
        bursts, _ = extract_bursts([rec(1, 0, 0, 0.0)])
        assert bursts == []

    def test_metadata_calls_skipped(self):
        bursts, _ = extract_bursts([rec(1, 0, 10, 0.0, op=OpType.OPEN)])
        assert bursts == []

    def test_trailing_think_is_zero(self):
        _, thinks = extract_bursts([rec(1, 0, 10, 0.0)])
        assert thinks == [0.0]


class TestIOBurstValidation:
    def test_empty_burst_rejected(self):
        with pytest.raises(ValueError):
            IOBurst(requests=(), start=0.0, end=1.0)

    def test_backwards_burst_rejected(self):
        r = ProfiledRequest(inode=1, offset=0, size=1, op=OpType.READ)
        with pytest.raises(ValueError):
            IOBurst(requests=(r,), start=2.0, end=1.0)

    def test_bad_request_rejected(self):
        with pytest.raises(ValueError):
            ProfiledRequest(inode=1, offset=0, size=0, op=OpType.READ)


class TestOnlineTracker:
    def test_matches_offline_extraction(self):
        records = [rec(1, 0, 10, 0.0), rec(1, 10, 10, 0.005),
                   rec(2, 0, 50, 3.0), rec(2, 50, 50, 3.001),
                   rec(1, 100, 10, 9.0)]
        offline_bursts, offline_thinks = extract_bursts(records)
        tracker = OnlineBurstTracker()
        for r in records:
            tracker.observe(r.inode, r.offset, r.size, r.op,
                            r.timestamp, r.end_time)
        tracker.flush()
        assert len(tracker.bursts) == len(offline_bursts)
        for a, b in zip(tracker.bursts, offline_bursts, strict=True):
            assert a.requests == b.requests
        assert tracker.thinks == pytest.approx(offline_thinks)

    def test_observe_returns_closed_burst(self):
        tracker = OnlineBurstTracker()
        assert tracker.observe(1, 0, 10, OpType.READ, 0.0, 0.0) is None
        closed = tracker.observe(1, 10, 10, OpType.READ, 5.0, 5.0)
        assert closed is not None
        assert closed.nbytes == 10

    def test_snapshot_includes_open_burst(self):
        tracker = OnlineBurstTracker()
        tracker.observe(1, 0, 10, OpType.READ, 0.0, 0.0)
        bursts, thinks = tracker.snapshot()
        assert len(bursts) == 1
        assert len(tracker.bursts) == 0      # snapshot does not mutate

    def test_total_bytes(self):
        tracker = OnlineBurstTracker()
        tracker.observe(1, 0, 10, OpType.READ, 0.0, 0.0)
        tracker.observe(1, 10, 30, OpType.READ, 5.0, 5.0)
        assert tracker.total_bytes == 40

    def test_zero_size_ignored(self):
        tracker = OnlineBurstTracker()
        assert tracker.observe(1, 0, 0, OpType.READ, 0.0, 0.0) is None
        assert tracker.total_bytes == 0


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 3), st.integers(0, 10_000),
                              st.integers(1, 200_000),
                              st.floats(0, 5, allow_nan=False)),
                    max_size=60))
    def test_bytes_conserved(self, raw):
        ts = 0.0
        records = []
        for inode, offset, size, gap in raw:
            ts += gap
            records.append(rec(inode, offset, size, ts))
        bursts, thinks = extract_bursts(records)
        assert sum(b.nbytes for b in bursts) == sum(r.size for r in records)
        assert len(bursts) == len(thinks)
        # All intra-burst merges respect the 128 KB cap... unless a
        # single syscall already exceeded it.
        for b in bursts:
            for req in b.requests:
                assert req.size <= max(MERGE_LIMIT_BYTES, 200_000)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0, 2, allow_nan=False), min_size=1,
                    max_size=50))
    def test_burst_count_matches_threshold_crossings(self, gaps):
        ts = 0.0
        records = []
        for gap in gaps:
            ts += gap
            records.append(rec(1, 0, 10, ts))
        bursts, _ = extract_bursts(records, threshold=0.5)
        # Expected: one burst per *realised* timestamp gap >= threshold
        # (computed on the accumulated floats, exactly as the extractor
        # sees them — summing the raw gaps would disagree by one ULP).
        realised = [b.timestamp - a.timestamp
                    for a, b in zip(records, records[1:], strict=False)]
        expected = 1 + sum(1 for g in realised if g >= 0.5)
        assert len(bursts) == expected
