"""Unit tests for the BlueFS-style reactive policy."""

import pytest

from repro.core.bluefs import BlueFSConfig, BlueFSPolicy
from repro.core.decision import DataSource
from repro.core.policies import RequestContext
from repro.core.simulator import MobileSystem, ProgramSpec, ReplaySimulator
from repro.devices.disk import DiskState
from repro.sim.clock import MB
from repro.traces.record import OpType


def ctx(now=0.0, nbytes=4096, op=OpType.READ):
    return RequestContext(now=now, program="p", profiled=True,
                          disk_pinned=False, inode=1, offset=0,
                          nbytes=nbytes, op=op)


def attached_policy(config=None):
    policy = BlueFSPolicy(config)
    env = MobileSystem()
    env.vfs.register_file(1, 100 * MB)
    env.layout.add_file(1, 100 * MB)
    policy.attach(env)
    policy.begin_run(0.0)
    return policy, env


class TestConfig:
    def test_defaults(self):
        cfg = BlueFSConfig()
        assert cfg.cost_metric == "time"
        assert cfg.hints_keep_disk_alive

    def test_validation(self):
        with pytest.raises(ValueError):
            BlueFSConfig(hint_threshold_factor=0.0)
        with pytest.raises(ValueError):
            BlueFSConfig(cost_metric="vibes")


class TestMyopicChoice:
    def test_standby_disk_sends_small_requests_to_network(self):
        policy, env = attached_policy()
        assert env.disk.state == DiskState.STANDBY.value
        assert policy.choose(ctx()) is DataSource.NETWORK

    def test_spinning_disk_wins_large_requests(self):
        policy, env = attached_policy()
        env.disk.force_spinup(0.0)
        env.wnic.advance_to(2.0)
        # 128 KB: disk ~24 ms vs network ~94 ms transfer.
        assert policy.choose(ctx(now=2.0, nbytes=128 * 1024)) \
            is DataSource.DISK

    def test_spinning_disk_loses_tiny_requests_when_wnic_awake(self):
        policy, env = attached_policy()
        env.disk.force_spinup(0.0)
        env.wnic.service(2.0, 1024)          # wakes the card
        # 4 KB: network 1 ms latency + 3 ms beats a 20 ms seek.
        assert policy.choose(ctx(now=2.1, nbytes=4096)) \
            is DataSource.NETWORK

    def test_dozing_wnic_penalised_by_wakeup(self):
        policy, env = attached_policy()
        env.disk.force_spinup(0.0)
        # WNIC in PSM: 0.4 s wake-up dwarfs the disk seek.
        assert policy.choose(ctx(now=5.0, nbytes=4096)) is DataSource.DISK

    def test_energy_metric_variant(self):
        policy, env = attached_policy(BlueFSConfig(cost_metric="energy"))
        env.disk.force_spinup(0.0)
        env.wnic.service(2.0, 1024)
        # Energy-greedy: an awake WNIC moving 4 KB costs ~0.01 J vs the
        # seek's 0.04 J.
        assert policy.choose(ctx(now=2.1, nbytes=4096)) \
            is DataSource.NETWORK


class TestGhostHints:
    def test_hints_accumulate_and_spin_up(self):
        policy, env = attached_policy(
            BlueFSConfig(hint_threshold_factor=0.3))
        investment = (5.0 + 2.94) * 0.3

        class R:
            energy = 2.0
            arrival = 0.0
            completion = 0.1

        n = 0
        while env.disk.state == DiskState.STANDBY.value and n < 50:
            policy.on_serviced(ctx(nbytes=1 * MB), DataSource.NETWORK, R())
            n += 1
        assert env.disk.state == DiskState.IDLE.value
        assert policy.ghost_spinups == 1
        assert policy.ghost_hint_energy == 0.0
        # It took about investment / (2.0 - active-disk cost) requests.
        assert 1 <= n <= investment / 1.0 + 2

    def test_disk_service_discharges_hints(self):
        policy, env = attached_policy()
        policy.ghost_hint_energy = 1.0

        class R:
            energy = 0.6
        policy.on_serviced(ctx(), DataSource.DISK, R())
        assert policy.ghost_hint_energy == pytest.approx(0.4)

    def test_spindown_resets_hints(self):
        policy, env = attached_policy()
        policy.ghost_hint_energy = 1.5
        env.disk.force_spinup(0.0)
        env.disk.advance_to(60.0)            # times out and spins down
        policy.on_tick(60.0)
        assert policy.ghost_hint_energy == 0.0

    def test_keep_alive_refreshes_disk_timer(self):
        policy, env = attached_policy()
        env.disk.force_spinup(0.0)
        before = env.disk.last_activity

        class R:
            energy = 2.0
        policy.on_serviced(ctx(now=10.0, nbytes=1 * MB),
                           DataSource.NETWORK, R())
        assert env.disk.last_activity >= 10.0 > before


class TestEndToEnd:
    def test_bluefs_beats_worst_fixed_policy(self, sparse_trace):
        from repro.core.policies import DiskOnlyPolicy
        bluefs = ReplaySimulator([ProgramSpec(sparse_trace)],
                                 BlueFSPolicy(), seed=1).run()
        disk = ReplaySimulator([ProgramSpec(sparse_trace)],
                               DiskOnlyPolicy(), seed=1).run()
        # Sparse 30 s-gap workload: reactive selection must not be
        # dramatically worse than the pure-disk baseline.
        assert bluefs.total_energy < disk.total_energy * 1.3

    def test_decision_log_populated(self, tiny_trace):
        policy = BlueFSPolicy()
        ReplaySimulator([ProgramSpec(tiny_trace)], policy, seed=1).run()
        assert policy.decision_log
