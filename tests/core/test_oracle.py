"""Tests for the clairvoyant reference policy."""

import pytest

from repro.core.oracle import ClairvoyantStagePolicy
from repro.core.flexfetch import FlexFetchPolicy
from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.profile import profile_from_trace
from repro.core.simulator import ProgramSpec, ReplaySimulator
from tests.conftest import make_trace


def dense():
    calls = [(1, i * 131072, 131072, "read", i * 0.001) for i in range(64)]
    return make_trace(calls, name="dense")


def sparse():
    calls = [(1, i * 65536, 65536, "read", i * 15.0) for i in range(10)]
    return make_trace(calls, name="sparse", file_sizes={1: 10 * 65536})


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClairvoyantStagePolicy(dense(), loss_rate=-0.1)
        with pytest.raises(ValueError):
            ClairvoyantStagePolicy(dense(), stage_length=0)

    def test_name(self):
        assert ClairvoyantStagePolicy(dense()).name == "Clairvoyant"


class TestDecisions:
    def test_dense_goes_disk(self):
        trace = dense()
        policy = ClairvoyantStagePolicy(trace)
        result = ReplaySimulator([ProgramSpec(trace)], policy,
                                 seed=1).run()
        assert result.device_bytes["disk"] > result.device_bytes["network"]

    def test_sparse_goes_network(self):
        trace = sparse()
        policy = ClairvoyantStagePolicy(trace)
        result = ReplaySimulator([ProgramSpec(trace)], policy,
                                 seed=1).run()
        assert result.device_bytes["network"] > result.device_bytes["disk"]


class TestOptimality:
    @pytest.mark.parametrize("trace_factory", [dense, sparse])
    def test_at_or_below_best_fixed_policy(self, trace_factory):
        trace = trace_factory()
        oracle = ReplaySimulator([ProgramSpec(trace)],
                                 ClairvoyantStagePolicy(trace),
                                 seed=1).run()
        disk = ReplaySimulator([ProgramSpec(trace)], DiskOnlyPolicy(),
                               seed=1).run()
        wnic = ReplaySimulator([ProgramSpec(trace)], WnicOnlyPolicy(),
                               seed=1).run()
        best = min(disk.total_energy, wnic.total_energy)
        assert oracle.total_energy <= best * 1.02

    @pytest.mark.parametrize("trace_factory", [dense, sparse])
    def test_flexfetch_with_accurate_profile_near_oracle(
            self, trace_factory):
        """With a truthful profile FlexFetch should track the oracle
        closely — the residual gap is hysteresis + exploration."""
        trace = trace_factory()
        oracle = ReplaySimulator([ProgramSpec(trace)],
                                 ClairvoyantStagePolicy(trace),
                                 seed=1).run()
        ff = ReplaySimulator(
            [ProgramSpec(trace)],
            FlexFetchPolicy(profile_from_trace(trace)), seed=1).run()
        assert ff.total_energy <= oracle.total_energy * 1.15
