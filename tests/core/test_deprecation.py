"""The ReplaySimulator shim warns — and blames the caller's line.

``stacklevel=2`` in the shim's ``__init__`` makes the warning point at
the construction site, so a console full of deprecation warnings tells
the user *which of their files* still uses the old name.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.policies import DiskOnlyPolicy
from repro.core.simulator import ProgramSpec, ReplaySimulator
from tests.conftest import make_trace


def _build() -> ReplaySimulator:
    trace = make_trace([(1, 0, 65536, "read", 0.0)],
                       file_sizes={1: 65536})
    return ReplaySimulator([ProgramSpec(trace)], DiskOnlyPolicy())


def test_constructor_emits_a_deprecation_warning() -> None:
    with pytest.warns(DeprecationWarning,
                      match="ReplaySimulator is deprecated"):
        _build()


def test_warning_names_the_replacement() -> None:
    with pytest.warns(DeprecationWarning,
                      match="repro.core.session.SimulationSession"):
        _build()


def test_warning_reports_the_callers_file() -> None:
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _build()
    records = [w for w in caught
               if issubclass(w.category, DeprecationWarning)
               and "ReplaySimulator" in str(w.message)]
    assert records
    # stacklevel=2: the reported site is _build()'s call, in this file,
    # not repro/core/simulator.py.
    assert records[0].filename == __file__
    assert not records[0].filename.endswith("simulator.py")


def test_shim_still_runs_bit_identically() -> None:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        result = _build().run()
    assert result.end_time > 0.0


class TestAutoCompileWarnsOnce:
    """Record-level specs crossing the sweep/cache boundary warn once
    per process, then compile silently."""

    def _specs(self):
        trace = make_trace([(1, 0, 65536, "read", 0.0)],
                           file_sizes={1: 65536})
        return (ProgramSpec(trace),)

    def test_warns_once_then_stays_quiet(self, monkeypatch):
        import repro.core.workload as workload
        monkeypatch.setattr(workload, "_warned_auto_compile", False)
        with pytest.warns(DeprecationWarning,
                          match="auto-compiled on the fly"):
            workload.prepare_specs(self._specs())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            workload.prepare_specs(self._specs())
        assert not any(issubclass(w.category, DeprecationWarning)
                       and "auto-compiled" in str(w.message)
                       for w in caught)

    def test_prepared_specs_never_warn(self, monkeypatch):
        import repro.core.workload as workload
        monkeypatch.setattr(workload, "_warned_auto_compile", False)
        prepared = tuple(s.prepared() for s in self._specs())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out = workload.prepare_specs(prepared)
        assert out == prepared
        assert not any(issubclass(w.category, DeprecationWarning)
                       and "auto-compiled" in str(w.message)
                       for w in caught)
        assert workload._warned_auto_compile is False
