"""Integration tests for the trace-driven replay simulator."""

import pytest

from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.simulator import MobileSystem, ProgramSpec, ReplaySimulator
from repro.devices.specs import AIRONET_350
from repro.sim.clock import MB
from tests.conftest import make_trace


class TestClosedLoop:
    def test_think_times_preserved(self, sparse_trace):
        """Completion-to-issue gaps must match the recorded thinks."""
        result = ReplaySimulator([ProgramSpec(sparse_trace)],
                                 DiskOnlyPolicy(), seed=1).run()
        # 6 requests, 30 s gaps: run must span at least 5 * 30 s.
        assert result.end_time >= 150.0
        assert result.end_time < 170.0       # ...but not balloon

    def test_slow_device_stretches_run(self, bursty_trace):
        disk = ReplaySimulator([ProgramSpec(bursty_trace)],
                               DiskOnlyPolicy(), seed=1).run()
        slow_wnic = AIRONET_350.with_link(bandwidth_bps=1e6 / 8)
        wnic = ReplaySimulator([ProgramSpec(bursty_trace)],
                               WnicOnlyPolicy(), wnic_spec=slow_wnic,
                               seed=1).run()
        # 8 MB at 1 Mbps takes over a minute; the disk does it in ~2 s.
        assert wnic.end_time > disk.end_time + 50.0

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            ReplaySimulator([], DiskOnlyPolicy())


class TestEnergyAccounting:
    def test_disk_only_energy_decomposition(self, sparse_trace):
        result = ReplaySimulator([ProgramSpec(sparse_trace)],
                                 DiskOnlyPolicy(), seed=1).run()
        assert result.total_energy == pytest.approx(
            result.disk_energy + result.wnic_energy)
        # 30 s gaps > 20 s timeout: the disk spin-cycles on every
        # device-touching request (readahead absorbs some of the six).
        assert 3 <= result.disk_spinups <= 6
        assert result.disk_spindowns >= result.disk_spinups - 1
        # WNIC idles in PSM throughout.
        assert result.wnic_energy == pytest.approx(
            0.39 * result.end_time, rel=0.05)

    def test_wnic_only_leaves_disk_in_standby(self, sparse_trace):
        result = ReplaySimulator([ProgramSpec(sparse_trace)],
                                 WnicOnlyPolicy(), seed=1).run()
        assert result.disk_spinups == 0
        assert result.disk_energy == pytest.approx(
            0.15 * result.end_time, rel=0.05)
        # one wake per device-touching read (readahead absorbs some)
        assert 3 <= result.wnic_wakeups <= 6

    def test_breakdowns_sum_to_totals(self, bursty_trace):
        result = ReplaySimulator([ProgramSpec(bursty_trace)],
                                 DiskOnlyPolicy(), seed=1).run()
        assert sum(result.disk_breakdown.values()) == pytest.approx(
            result.disk_energy, rel=1e-6)
        assert sum(result.wnic_breakdown.values()) == pytest.approx(
            result.wnic_energy, rel=1e-6)

    def test_residencies_cover_run(self, bursty_trace):
        result = ReplaySimulator([ProgramSpec(bursty_trace)],
                                 DiskOnlyPolicy(), seed=1).run()
        assert sum(result.disk_residency.values()) == pytest.approx(
            result.end_time, rel=1e-6)


class TestCacheInteraction:
    def test_rereads_hit_cache(self):
        calls = [(1, 0, 1 * MB, "read", 0.0),
                 (1, 0, 1 * MB, "read", 5.0)]
        trace = make_trace(calls)
        result = ReplaySimulator([ProgramSpec(trace)], DiskOnlyPolicy(),
                                 seed=1, memory_bytes=8 * MB).run()
        assert result.cache_hit_ratio > 0.4
        # Device moved roughly one copy of the data, not two.
        assert result.device_bytes["disk"] < 1.5 * MB

    def test_fully_cached_syscall_completes_instantly(self):
        calls = [(1, 0, 4096, "read", 0.0), (1, 0, 4096, "read", 1.0)]
        trace = make_trace(calls)
        sim = ReplaySimulator([ProgramSpec(trace)], DiskOnlyPolicy(),
                              seed=1)
        result = sim.run()
        # Second read is a pure cache hit: completion == issue time.
        assert result.end_time == pytest.approx(
            1.0 + sim.programs[0].thinks[0] * 0, abs=2.5)


class TestWritePath:
    def test_writes_are_async(self):
        calls = [(1, i * 4096, 4096, "write", i * 0.001)
                 for i in range(100)]
        trace = make_trace(calls)
        result = ReplaySimulator([ProgramSpec(trace)], DiskOnlyPolicy(),
                                 seed=1).run()
        # Program never waits for the disk: the run ends with the last
        # write's issue (plus nothing), not after device flushing.
        assert result.foreground_time < 1.0

    def test_writeback_reaches_device_eventually(self):
        calls = [(1, 0, 64 * 1024, "write", 0.0),
                 (1, 0, 4096, "read", 40.0)]   # later activity
        trace = make_trace(calls, file_sizes={1: 64 * 1024})
        result = ReplaySimulator([ProgramSpec(trace)], DiskOnlyPolicy(),
                                 seed=1).run()
        assert result.device_bytes["disk"] >= 64 * 1024


class TestMultiProgram:
    def test_background_keeps_disk_up(self):
        fg = make_trace([(1, i * 65536, 65536, "read", i * 30.0)
                         for i in range(4)], name="fg",
                        file_sizes={1: 4 * 65536})
        bg = make_trace([(2, i * 65536, 65536, "read", i * 5.0)
                         for i in range(30)], name="bg",
                        file_sizes={2: 30 * 65536})
        result = ReplaySimulator(
            [ProgramSpec(fg),
             ProgramSpec(bg, profiled=False, disk_pinned=True)],
            DiskOnlyPolicy(), seed=1).run()
        # bg's 5 s cadence stops the 20 s timeout from ever firing
        # while it plays.
        assert result.disk_spinups == 1
        assert result.disk_spindowns <= 1

    def test_disk_pinned_program_never_uses_network(self):
        bg = make_trace([(2, i * 4096, 4096, "read", i * 1.0)
                         for i in range(10)], name="bg",
                        file_sizes={2: 10 * 4096})
        result = ReplaySimulator(
            [ProgramSpec(bg, profiled=False, disk_pinned=True)],
            WnicOnlyPolicy(), seed=1).run()
        assert result.device_bytes["network"] == 0
        assert result.device_bytes["disk"] > 0


class TestDeterminism:
    def test_same_seed_same_result(self, bursty_trace):
        def run():
            return ReplaySimulator([ProgramSpec(bursty_trace)],
                                   DiskOnlyPolicy(), seed=9).run()
        a, b = run(), run()
        assert a.total_energy == b.total_energy
        assert a.end_time == b.end_time
        assert a.disk_breakdown == b.disk_breakdown


class TestMobileSystem:
    def test_register_trace_populates_layout_and_vfs(self, tiny_trace):
        env = MobileSystem()
        env.register_trace(tiny_trace)
        assert 1 in env.layout
        assert env.vfs.file_size(1) >= 3 * 4096

    def test_disk_active_flag(self):
        env = MobileSystem()
        assert not env.disk_active
        env.disk.force_spinup(0.0)
        assert env.disk_active
