"""Bitwise parity of the vectorized burst-cost kernel.

Two independent equivalences keep the packed kernel honest:

* **packed vs object** — ``_replay_requests`` dispatching to the packed
  columns must reproduce ``_replay_object`` (a clone-driven replay of
  the same requests) *exactly*, field for field, bit for bit;
* **numpy vs scalar fallback** — with ``costmodel._np`` forced to None
  the pure-Python column math must land on the same IEEE doubles as the
  numpy path (one correctly-rounded int->float64 conversion and one
  division per element either way).

Hypothesis drives both over randomized stages; any drift — a reordered
float reduction, a fused multiply, an off-by-one block placement —
shows up as an exact-inequality counterexample.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import costmodel
from repro.core.burst import ProfiledRequest
from repro.core.costmodel import _replay_object, _replay_requests
from repro.core.decision import DataSource
from repro.devices.disk import HardDisk
from repro.devices.layout import DiskLayout
from repro.devices.specs import AIRONET_350, HITACHI_DK23DA
from repro.devices.wnic import WirelessNic
from repro.traces.record import OpType

INODES = (1, 2, 3)
#: an inode the layout does not know (exercises the average-seek path).
UNPLACED_INODE = 99

_request = st.builds(
    ProfiledRequest,
    inode=st.sampled_from(INODES + (UNPLACED_INODE,)),
    offset=st.integers(0, 1 << 13).map(lambda v: v * 512),
    size=st.integers(1, 1 << 20),
    op=st.sampled_from([OpType.READ, OpType.WRITE]))

_stage = st.lists(st.lists(_request, max_size=5), min_size=1, max_size=5)

_think = st.floats(0.0, 30.0, allow_nan=False, allow_infinity=False)
_now = st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False)


def _layout() -> DiskLayout:
    layout = DiskLayout(seed=0)
    for inode in INODES:
        layout.add_file(inode, 8 << 20)
    return layout


def _thinks_for(stage, data):
    return data.draw(st.lists(_think, min_size=len(stage),
                              max_size=len(stage)))


def _estimate(source, device_factory, stage, thinks, *, now, layout,
              other_factory=None, min_duration=None, use_packed=True):
    replay = _replay_requests if use_packed else _replay_object
    return replay(source, device_factory(), stage, thinks, now=now,
                  layout=layout,
                  other_device=other_factory() if other_factory else None,
                  min_duration=min_duration)


class TestPackedVsObject:
    """The packed kernel is a bit-exact clone of the object replay."""

    @settings(max_examples=200, deadline=None)
    @given(stage=_stage, now=_now, data=st.data())
    def test_disk_stage(self, stage, now, data):
        thinks = _thinks_for(stage, data)
        layout = _layout()
        packed = _estimate(DataSource.DISK, lambda: HardDisk(HITACHI_DK23DA),
                           stage, thinks, now=now, layout=layout)
        obj = _estimate(DataSource.DISK, lambda: HardDisk(HITACHI_DK23DA),
                        stage, thinks, now=now, layout=layout,
                        use_packed=False)
        assert packed == obj

    @settings(max_examples=200, deadline=None)
    @given(stage=_stage, now=_now, data=st.data())
    def test_wnic_stage(self, stage, now, data):
        thinks = _thinks_for(stage, data)
        packed = _estimate(DataSource.NETWORK,
                           lambda: WirelessNic(AIRONET_350),
                           stage, thinks, now=now, layout=None)
        obj = _estimate(DataSource.NETWORK,
                        lambda: WirelessNic(AIRONET_350),
                        stage, thinks, now=now, layout=None,
                        use_packed=False)
        assert packed == obj

    @settings(max_examples=100, deadline=None)
    @given(stage=_stage, now=_now,
           min_duration=st.one_of(st.none(), st.floats(0.0, 200.0)),
           data=st.data())
    def test_disk_with_other_device_and_floor(self, stage, now,
                                              min_duration, data):
        """The other-device baseline and the audit floor ride along."""
        thinks = _thinks_for(stage, data)
        layout = _layout()
        kwargs = dict(now=now, layout=layout,
                      other_factory=lambda: WirelessNic(AIRONET_350),
                      min_duration=min_duration)
        packed = _estimate(DataSource.DISK,
                           lambda: HardDisk(HITACHI_DK23DA),
                           stage, thinks, **kwargs)
        obj = _estimate(DataSource.DISK, lambda: HardDisk(HITACHI_DK23DA),
                        stage, thinks, use_packed=False, **kwargs)
        assert packed == obj


class TestNumpyVsScalarFallback:
    """Forcing the scalar fallback must not move a single bit."""

    @settings(max_examples=150, deadline=None)
    @given(stage=_stage, now=_now, data=st.data())
    def test_disk_and_wnic_stages(self, stage, now, data):
        thinks = _thinks_for(stage, data)
        layout = _layout()
        with_np = (
            _estimate(DataSource.DISK, lambda: HardDisk(HITACHI_DK23DA),
                      stage, thinks, now=now, layout=layout),
            _estimate(DataSource.NETWORK,
                      lambda: WirelessNic(AIRONET_350),
                      stage, thinks, now=now, layout=None))
        saved = costmodel._np
        costmodel._np = None
        try:
            without_np = (
                _estimate(DataSource.DISK,
                          lambda: HardDisk(HITACHI_DK23DA),
                          stage, thinks, now=now, layout=layout),
                _estimate(DataSource.NETWORK,
                          lambda: WirelessNic(AIRONET_350),
                          stage, thinks, now=now, layout=None))
        finally:
            costmodel._np = saved
        assert with_np == without_np
