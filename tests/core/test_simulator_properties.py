"""Property-based integration tests: random workloads, physical laws.

Hypothesis generates small random workloads; every replay, under every
policy, must satisfy the :mod:`repro.experiments.validate` invariants
(energy conservation, residency coverage, routing consistency) and a
few cross-policy laws.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.bluefs import BlueFSPolicy
from repro.core.flexfetch import FlexFetchPolicy
from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.profile import profile_from_trace
from repro.core.simulator import ProgramSpec, ReplaySimulator
from repro.experiments.validate import validate_run
from repro.traces.record import FileInfo, OpType, SyscallRecord
from repro.traces.trace import Trace


@st.composite
def workload(draw):
    """A small random but coherent workload (seconds to replay)."""
    n_files = draw(st.integers(1, 3))
    file_pages = [draw(st.integers(1, 512)) for _ in range(n_files)]
    files = {i + 1: FileInfo(inode=i + 1, path=f"f{i}",
                             size_bytes=p * 4096)
             for i, p in enumerate(file_pages)}
    n = draw(st.integers(1, 30))
    records = []
    ts = 0.0
    for _ in range(n):
        inode = draw(st.integers(1, n_files))
        limit = files[inode].size_bytes
        op = draw(st.sampled_from([OpType.READ, OpType.READ,
                                   OpType.WRITE]))
        offset = draw(st.integers(0, max(0, limit - 4096)))
        size = draw(st.integers(1, min(262144, limit - offset)))
        ts += draw(st.sampled_from([0.001, 0.5, 3.0, 25.0]))
        records.append(SyscallRecord(
            pid=1, fd=3, inode=inode, offset=offset, size=size, op=op,
            timestamp=ts, duration=0.0))
    return Trace("random", records, files)


COMMON = dict(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


class TestConservationLaws:
    @settings(**COMMON)
    @given(workload())
    def test_disk_only_validates(self, trace):
        result = ReplaySimulator([ProgramSpec(trace)], DiskOnlyPolicy(),
                                 seed=1).run()
        assert validate_run(result) == []

    @settings(**COMMON)
    @given(workload())
    def test_wnic_only_validates(self, trace):
        result = ReplaySimulator([ProgramSpec(trace)], WnicOnlyPolicy(),
                                 seed=1).run()
        assert validate_run(result) == []

    @settings(**COMMON)
    @given(workload())
    def test_bluefs_validates(self, trace):
        result = ReplaySimulator([ProgramSpec(trace)], BlueFSPolicy(),
                                 seed=1).run()
        assert validate_run(result) == []

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(workload())
    def test_flexfetch_validates(self, trace):
        policy = FlexFetchPolicy(profile_from_trace(trace))
        result = ReplaySimulator([ProgramSpec(trace)], policy,
                                 seed=1).run()
        assert validate_run(result) == []


class TestCrossPolicyLaws:
    @settings(**COMMON)
    @given(workload())
    def test_runs_are_deterministic(self, trace):
        a = ReplaySimulator([ProgramSpec(trace)], DiskOnlyPolicy(),
                            seed=5).run()
        b = ReplaySimulator([ProgramSpec(trace)], DiskOnlyPolicy(),
                            seed=5).run()
        assert a.total_energy == b.total_energy
        assert a.end_time == b.end_time

    @settings(**COMMON)
    @given(workload())
    def test_single_source_policies_route_exclusively(self, trace):
        disk = ReplaySimulator([ProgramSpec(trace)], DiskOnlyPolicy(),
                               seed=1).run()
        assert disk.device_bytes["network"] == 0
        wnic = ReplaySimulator([ProgramSpec(trace)], WnicOnlyPolicy(),
                               seed=1).run()
        assert wnic.device_bytes["disk"] == 0

    @settings(**COMMON)
    @given(workload())
    def test_baseline_floor(self, trace):
        """Energy is never below each device's idle floor for the run."""
        result = ReplaySimulator([ProgramSpec(trace)], DiskOnlyPolicy(),
                                 seed=1).run()
        floor = result.end_time * (0.15 + 0.39)   # standby + PSM
        assert result.total_energy >= floor * 0.95

    @settings(**COMMON)
    @given(workload())
    def test_end_time_covers_trace_thinks(self, trace):
        """Closed-loop replay can only stretch, never shrink, the span
        of think time between first and last request."""
        result = ReplaySimulator([ProgramSpec(trace)], DiskOnlyPolicy(),
                                 seed=1).run()
        data = trace.data_records()
        think_span = data[-1].timestamp - data[0].end_time
        assert result.end_time >= max(0.0, think_span) - 1e-6
