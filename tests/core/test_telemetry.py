"""Telemetry layer: sinks observe runs without perturbing them.

Sinks are read-only passengers on a replay.  These tests pin the two
contracts that make them safe to attach anywhere:

* a :class:`RecordingSink` sees every hook of a real replay, in
  simulation-time order, with the final :class:`RunResult`;
* a *raising* sink is disabled and reported via
  :attr:`SinkSet.errors` — and the run's numbers are **bit-identical**
  to a sink-free run (error isolation cannot leak into simulation
  state or float evaluation order).
"""

from __future__ import annotations

import pytest

from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.session import SimulationSession
from repro.core.telemetry import NullSink, RecordingSink, SinkSet
from repro.core.workload import ProgramSpec
from repro.sim.engine import SimulationError
from repro.traces.synth import generate_grep

SEED = 11


@pytest.fixture(scope="module")
def trace():
    return generate_grep(SEED)


def run(trace, *sinks, policy=None):
    session = SimulationSession([ProgramSpec(trace)],
                                policy or DiskOnlyPolicy(), seed=SEED)
    for sink in sinks:
        session.add_sink(sink)
    return session, session.run()


class TestRecordingSink:
    def test_sees_begin_and_end(self, trace):
        sink = RecordingSink()
        _, result = run(trace, sink)
        assert sink.begins == [("Disk-only", 0.0)]
        assert sink.results == [result]

    def test_records_every_service(self, trace):
        sink = RecordingSink()
        _, result = run(trace, sink)
        # One event per routed device service (cache hits are free and
        # emit nothing).
        assert len(sink.services) == sum(result.device_requests.values())
        for program, source, nbytes, energy, completion in sink.services:
            assert program == trace.name
            assert source == "disk"
            assert nbytes >= 0
            assert energy >= 0.0
            assert 0.0 <= completion <= result.end_time

    def test_records_profiled_syscalls_in_time_order(self, trace):
        sink = RecordingSink()
        _, result = run(trace, sink)
        sized = [r for r in trace.records if r.size > 0]
        assert len(sink.syscalls) == len(sized)
        times = [now for _, _, _, now in sink.syscalls]
        assert times == sorted(times)
        assert times[-1] <= result.end_time

    def test_sources_follow_the_policy(self, trace):
        sink = RecordingSink()
        run(trace, sink, policy=WnicOnlyPolicy())
        assert {source for _, source, _, _, _ in sink.services} \
            == {"network"}


class TestNullSink:
    def test_is_inert(self, trace):
        bare = run(trace)[1]
        with_null = run(trace, NullSink())[1]
        assert with_null == bare


class _Bomb:
    """A sink whose chosen hook raises; every other hook is silent."""

    def __init__(self, hook: str) -> None:
        self.hook = hook
        self.calls = 0

    def _maybe(self, name: str) -> None:
        self.calls += 1
        if name == self.hook:
            raise RuntimeError(f"boom in {name}")

    def on_run_begin(self, policy, now):
        self._maybe("on_run_begin")

    def on_service(self, program, source, nbytes, energy, completion):
        self._maybe("on_service")

    def on_syscall(self, program, op, nbytes, now):
        self._maybe("on_syscall")

    def on_run_end(self, result):
        self._maybe("on_run_end")


class TestErrorIsolation:
    @pytest.mark.parametrize("hook", ["on_run_begin", "on_service",
                                      "on_syscall", "on_run_end"])
    def test_raising_sink_cannot_change_the_result(self, trace, hook):
        bare = run(trace)[1]
        session, broken = run(trace, _Bomb(hook))
        # Bit-identical, not approx: isolation must not perturb float
        # evaluation order.
        assert broken == bare
        assert session.sink_errors == [
            ("_Bomb", hook, f"boom in {hook}")]

    def test_broken_sink_is_disabled_others_keep_recording(self, trace):
        bomb, sink = _Bomb("on_service"), RecordingSink()
        session, result = run(trace, bomb, sink)
        # The bomb died on the first service and saw nothing after it.
        assert bomb.calls == 2  # on_run_begin + the fatal on_service
        assert len(sink.services) == sum(result.device_requests.values())
        assert sink.results == [result]
        assert len(session.sink_errors) == 1


class TestSinkSet:
    def test_fan_out_and_len(self):
        a, b = RecordingSink(), RecordingSink()
        sinks = SinkSet((a,))
        sinks.add(b)
        assert len(sinks) == 2
        sinks.on_run_begin("p", 0.0)
        assert a.begins == b.begins == [("p", 0.0)]

    def test_error_recorded_and_sink_removed(self):
        sinks = SinkSet((_Bomb("on_run_begin"),))
        sinks.on_run_begin("p", 0.0)
        assert len(sinks) == 0
        assert sinks.errors == [
            ("_Bomb", "on_run_begin", "boom in on_run_begin")]
        # Subsequent dispatches are no-ops, not re-raises.
        sinks.on_run_end(None)
        assert len(sinks.errors) == 1


class TestBuilder:
    def test_add_sink_after_run_is_rejected(self, trace):
        session, _ = run(trace)
        with pytest.raises(SimulationError):
            session.add_sink(NullSink())


# ----------------------------------------------------------------------
# streaming aggregation primitives
# ----------------------------------------------------------------------
class TestP2Quantile:
    def test_small_samples_are_exact_nearest_rank(self):
        from repro.core.telemetry import P2Quantile
        est = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            est.observe(x)
        assert est.value() == 3.0

    def test_empty_is_nan(self):
        import math

        from repro.core.telemetry import P2Quantile
        assert math.isnan(P2Quantile(0.9).value())

    def test_invalid_quantile_rejected(self):
        from repro.core.telemetry import P2Quantile
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_tracks_known_distribution(self):
        import random

        from repro.core.telemetry import P2Quantile
        rng = random.Random(7)
        est = P2Quantile(0.5)
        values = [rng.uniform(0.0, 100.0) for _ in range(5000)]
        for x in values:
            est.observe(x)
        exact = sorted(values)[2500]
        assert abs(est.value() - exact) < 2.0
        assert est.count == 5000

    def test_deterministic_for_a_given_order(self):
        from repro.core.telemetry import P2Quantile
        xs = [((i * 29) % 97) / 7.0 for i in range(200)]
        a, b = P2Quantile(0.9), P2Quantile(0.9)
        for x in xs:
            a.observe(x)
            b.observe(x)
        assert a.value() == b.value()


class TestStreamingStat:
    def test_exact_moments(self):
        from repro.core.telemetry import StreamingStat
        stat = StreamingStat()
        for x in (2.0, 8.0, 4.0, 6.0):
            stat.observe(x)
        assert stat.count == 4
        assert stat.total == 20.0
        assert stat.minimum == 2.0
        assert stat.maximum == 8.0
        assert stat.mean == 5.0

    def test_as_dict_keys_and_percentiles(self):
        from repro.core.telemetry import StreamingStat
        stat = StreamingStat()
        for x in range(1, 101):
            stat.observe(float(x))
        summary = stat.as_dict()
        assert set(summary) == {"count", "sum", "min", "max", "mean",
                                "p50", "p90"}
        assert abs(summary["p50"] - 50.0) < 3.0
        assert abs(summary["p90"] - 90.0) < 4.0

    def test_empty_stat_has_nan_mean(self):
        import math

        from repro.core.telemetry import StreamingStat
        stat = StreamingStat()
        assert stat.count == 0
        assert math.isnan(stat.mean)
        assert math.isnan(stat.quantile(0.5))
