"""Exhaustive tests for the §2.2 decision rules."""

import pytest
from hypothesis import given, strategies as st

from repro.core.decision import (
    LOSS_RATE_DEFAULT,
    DataSource,
    DecisionInputs,
    decide,
)


def d(t_d, e_d, t_n, e_n, loss=LOSS_RATE_DEFAULT):
    return decide(DecisionInputs(t_disk=t_d, e_disk=e_d, t_network=t_n,
                                 e_network=e_n), loss_rate=loss)


class TestRule1And2:
    def test_disk_dominates(self):
        assert d(1, 10, 2, 20) is DataSource.DISK

    def test_network_dominates(self):
        assert d(2, 20, 1, 10) is DataSource.NETWORK


class TestRule3:
    """Network cheaper but slower."""

    def test_accepts_small_slowdown_with_big_saving(self):
        # 50% saving, 10% slowdown, loss rate 25%.
        assert d(10, 100, 11, 50) is DataSource.NETWORK

    def test_rejects_slowdown_over_loss_rate(self):
        # 50% saving but 30% slowdown > 25%.
        assert d(10, 100, 13, 50) is DataSource.DISK

    def test_rejects_saving_below_slowdown(self):
        # 5% saving, 10% slowdown: x < n.
        assert d(10, 100, 11, 95) is DataSource.DISK

    def test_boundary_slowdown_equal_loss_rate_rejected(self):
        # slowdown == loss rate is NOT < loss rate.
        assert d(10, 100, 12.5, 50) is DataSource.DISK

    def test_boundary_saving_equals_slowdown_accepted(self):
        # x == n passes the >= test (10% saving vs 10% slowdown).
        assert d(10, 100, 11, 90) is DataSource.NETWORK

    def test_zero_loss_rate_never_trades_time(self):
        assert d(10, 100, 10.01, 1, loss=0.0) is DataSource.DISK


class TestMirroredRule3:
    """Disk cheaper but slower — the symmetric completion."""

    def test_accepts_cheap_slow_disk(self):
        assert d(11, 50, 10, 100) is DataSource.DISK

    def test_rejects_disk_slowdown_over_loss_rate(self):
        assert d(13, 50, 10, 100) is DataSource.NETWORK

    def test_rejects_saving_below_slowdown(self):
        assert d(11, 95, 10, 100) is DataSource.NETWORK


class TestTies:
    def test_equal_everything_prefers_disk(self):
        assert d(10, 50, 10, 50) is DataSource.DISK

    def test_equal_energy_faster_network(self):
        assert d(10, 50, 9, 50) is DataSource.NETWORK

    def test_zero_costs(self):
        assert d(0, 0, 0, 0) is DataSource.DISK


class TestValidation:
    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            DecisionInputs(t_disk=-1, e_disk=0, t_network=0, e_network=0)

    def test_negative_loss_rate_rejected(self):
        with pytest.raises(ValueError):
            d(1, 1, 1, 1, loss=-0.1)


class TestOther:
    def test_other_source(self):
        assert DataSource.DISK.other is DataSource.NETWORK
        assert DataSource.NETWORK.other is DataSource.DISK


class TestTotality:
    @given(st.floats(0, 1e6), st.floats(0, 1e6),
           st.floats(0, 1e6), st.floats(0, 1e6),
           st.floats(0, 2))
    def test_always_returns_a_source(self, t_d, e_d, t_n, e_n, loss):
        assert d(t_d, e_d, t_n, e_n, loss) in (DataSource.DISK,
                                               DataSource.NETWORK)

    @given(st.floats(0.001, 1e6), st.floats(0.001, 1e6),
           st.floats(0.001, 1e6), st.floats(0.001, 1e6))
    def test_dominant_option_always_wins(self, t_d, e_d, t_n, e_n):
        choice = d(t_d, e_d, t_n, e_n)
        if t_d < t_n and e_d < e_n:
            assert choice is DataSource.DISK
        elif t_n < t_d and e_n < e_d:
            assert choice is DataSource.NETWORK

    @given(st.floats(0.001, 1e6), st.floats(0.001, 1e6),
           st.floats(0.001, 1e6), st.floats(0.001, 1e6))
    def test_never_picks_slower_and_costlier(self, t_d, e_d, t_n, e_n):
        choice = d(t_d, e_d, t_n, e_n)
        if choice is DataSource.NETWORK:
            assert not (t_n > t_d and e_n > e_d)
        else:
            assert not (t_d > t_n and e_d > e_n)
