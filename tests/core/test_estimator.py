"""Unit tests for per-stage what-if estimation (§2.2)."""

import pytest

from repro.core.burst import IOBurst, ProfiledRequest
from repro.core.decision import DataSource
from repro.core.estimator import estimate_both, estimate_stage, filter_cached
from repro.devices.disk import DiskState, HardDisk
from repro.devices.wnic import WirelessNic
from repro.sim.clock import MB
from repro.traces.record import OpType


def burst(nbytes, start=0.0, dur=0.1, inode=1, offset=0):
    req = ProfiledRequest(inode=inode, offset=offset, size=nbytes,
                          op=OpType.READ)
    return IOBurst(requests=(req,), start=start, end=start + dur)


class TestBasicEstimates:
    def test_disk_estimate_includes_spinup_and_idle(self):
        disk = HardDisk()   # standby
        est = estimate_stage(DataSource.DISK, disk,
                             [burst(1 * MB), burst(1 * MB)], [10.0, 0.0],
                             now=0.0)
        # spin-up + two transfers + 10 s idle between bursts.
        assert est.energy > 5.0 + 10.0 * 1.6
        assert est.time > 10.0 + 1.6
        assert est.nbytes == 2 * MB
        assert est.requests == 2

    def test_network_estimate_includes_doze_cycles(self):
        wnic = WirelessNic()   # psm
        est = estimate_stage(DataSource.NETWORK, wnic,
                             [burst(64 * 1024), burst(64 * 1024)],
                             [10.0, 0.0], now=0.0)
        # two wake-ups, two transfers, PSM idle between.
        assert est.energy > 2 * 0.51
        assert est.energy < 10.0      # far cheaper than the disk here

    def test_estimation_does_not_mutate_device(self):
        disk = HardDisk()
        estimate_stage(DataSource.DISK, disk, [burst(1 * MB)], [0.0],
                       now=0.0)
        assert disk.state == DiskState.STANDBY.value
        assert disk.energy(0.0) == pytest.approx(0.0, abs=1e-9)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            estimate_stage(DataSource.DISK, HardDisk(), [burst(1)], [],
                           now=0.0)

    def test_empty_stage(self):
        est = estimate_stage(DataSource.DISK, HardDisk(), [], [], now=0.0)
        assert est.energy == 0.0
        assert est.time == 0.0

    def test_starts_from_live_state(self):
        cold = HardDisk()
        warm = HardDisk(initially_standby=False)
        e_cold = estimate_stage(DataSource.DISK, cold, [burst(4096)],
                                [0.0], now=0.0).energy
        e_warm = estimate_stage(DataSource.DISK, warm, [burst(4096)],
                                [0.0], now=0.0).energy
        assert e_cold > e_warm + 4.9    # spin-up difference


class TestDpmInsideThinks:
    def test_long_think_spins_clone_down(self):
        disk = HardDisk(initially_standby=False)
        est = estimate_stage(DataSource.DISK, disk,
                             [burst(4096), burst(4096)], [60.0, 0.0],
                             now=0.0)
        # 20 s idle + spin-down + standby + spin-up again: cheaper than
        # idling the whole 60 s.
        assert est.energy < 60.0 * 1.6
        assert est.energy > 20.0 * 1.6


class TestCrossBaseline:
    def test_other_device_baseline_added(self):
        disk = HardDisk()
        wnic = WirelessNic()
        alone = estimate_stage(DataSource.DISK, disk, [burst(1 * MB)],
                               [30.0, ][:1], now=0.0)
        with_other = estimate_stage(DataSource.DISK, disk, [burst(1 * MB)],
                                    [0.0], now=0.0, other_device=wnic)
        assert with_other.energy > alone.energy

    def test_estimate_both_is_symmetric(self):
        disk, wnic = HardDisk(), WirelessNic()
        d, n = estimate_both(disk, wnic, [burst(1 * MB)], [0.0], now=0.0)
        assert d.source is DataSource.DISK
        assert n.source is DataSource.NETWORK
        assert d.energy > 0 and n.energy > 0


class TestMinDuration:
    def test_tail_idle_charged(self):
        wnic = WirelessNic()
        short = estimate_stage(DataSource.NETWORK, wnic, [burst(4096)],
                               [0.0], now=0.0)
        padded = estimate_stage(DataSource.NETWORK, wnic, [burst(4096)],
                                [0.0], now=0.0, min_duration=40.0)
        assert padded.time == pytest.approx(40.0)
        # tail: 0.8 s CAM idle, one doze, then PSM for the rest.
        assert padded.energy > short.energy
        tail_bound = 0.8 * 1.41 + 0.53 + 40.0 * 0.39 + 0.1
        assert padded.energy < short.energy + tail_bound


class TestCacheFilter:
    class FakeVfs:
        """Residency oracle: everything in inode 1 is cached."""

        def resident_bytes(self, inode, offset, size):
            return size if inode == 1 else 0

    def test_fully_cached_requests_dropped(self):
        filtered = filter_cached([burst(1 * MB, inode=1)], self.FakeVfs())
        assert filtered == [[]]

    def test_uncached_requests_kept(self):
        filtered = filter_cached([burst(1 * MB, inode=2)], self.FakeVfs())
        assert filtered[0][0].size == 1 * MB

    def test_partial_residency_shrinks(self):
        class HalfVfs:
            def resident_bytes(self, inode, offset, size):
                return size // 2
        filtered = filter_cached([burst(1 * MB)], HalfVfs())
        assert filtered[0][0].size == MB // 2

    def test_writes_never_filtered(self):
        req = ProfiledRequest(inode=1, offset=0, size=100, op=OpType.WRITE)
        b = IOBurst(requests=(req,), start=0.0, end=0.1)
        filtered = filter_cached([b], self.FakeVfs())
        assert filtered[0][0].size == 100

    def test_filter_feeds_estimate(self):
        disk = HardDisk()
        est = estimate_stage(DataSource.DISK, disk,
                             [burst(1 * MB, inode=1)], [0.0], now=0.0,
                             vfs=self.FakeVfs())
        assert est.nbytes == 0
        assert est.requests == 0
        assert est.energy == pytest.approx(0.0, abs=1e-9)
