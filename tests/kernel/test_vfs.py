"""Unit tests for the VFS read/write service path."""

import pytest

from repro.kernel.page import PAGE_SIZE
from repro.kernel.vfs import VirtualFileSystem
from repro.sim.clock import MB


def vfs_with_file(inode=1, size=10 * MB, memory=4 * MB):
    v = VirtualFileSystem(memory)
    v.register_file(inode, size)
    return v


class TestReadPath:
    def test_cold_read_produces_fetch(self):
        v = vfs_with_file()
        plan = v.read(1, 1, 0, 64 * 1024, now=0.0)
        assert not plan.fully_cached
        assert plan.miss_pages == 16
        assert plan.hit_pages == 0
        assert plan.fetch_bytes >= 64 * 1024

    def test_fetch_extents_capped_at_readahead_window(self):
        v = vfs_with_file()
        plan = v.read(1, 1, 0, 1 * MB, now=0.0)
        assert all(e.npages <= 32 for e in plan.fetch_extents)

    def test_completed_fetch_makes_reread_cached(self):
        v = vfs_with_file()
        plan = v.read(1, 1, 0, 64 * 1024, now=0.0)
        for e in plan.fetch_extents:
            v.complete_fetch(e, now=0.0)
        plan2 = v.read(1, 1, 0, 64 * 1024, now=1.0)
        assert plan2.fully_cached
        assert plan2.hit_pages == 16

    def test_readahead_prefetches_beyond_demand(self):
        v = vfs_with_file()
        plan = v.read(1, 1, 0, 16 * 1024, now=0.0)    # 4 demand pages
        for e in plan.fetch_extents:
            v.complete_fetch(e, now=0.0)
        # The next sequential pages are already resident.
        plan2 = v.read(1, 1, 16 * 1024, 16 * 1024, now=0.1)
        assert plan2.hit_pages > 0

    def test_zero_byte_read(self):
        v = vfs_with_file()
        plan = v.read(1, 1, 0, 0, now=0.0)
        assert plan.fully_cached
        assert plan.demand_extent is None

    def test_unregistered_inode_rejected(self):
        v = VirtualFileSystem()
        with pytest.raises(KeyError):
            v.read(1, 99, 0, 4096, now=0.0)

    def test_partial_hit_fetches_only_missing(self):
        v = vfs_with_file()
        plan = v.read(1, 1, 0, 8 * PAGE_SIZE, now=0.0)
        for e in plan.fetch_extents:
            v.complete_fetch(e, now=0.0)
        # Random read overlapping cached head and uncached tail.
        plan2 = v.read(1, 1, 4 * PAGE_SIZE, 500 * PAGE_SIZE, now=1.0)
        fetched = {p for e in plan2.fetch_extents for p in e.pages()}
        # Already-resident demand pages are not fetched again.
        cached_demand = plan2.hit_pages
        assert cached_demand > 0
        assert all(p.index >= 4 for p in fetched)


class TestWritePath:
    def test_write_dirties_without_device_io(self):
        v = vfs_with_file()
        forced = v.write(1, 1, 0, 64 * 1024, now=0.0)
        assert forced == []
        assert v.writeback.dirty_count == 16

    def test_write_extends_file(self):
        v = VirtualFileSystem()
        v.register_file(1, 0)
        v.write(1, 1, 0, 4096, now=0.0)
        assert v.file_size(1) == 4096

    def test_write_to_unknown_inode_registers_it(self):
        v = VirtualFileSystem()
        v.write(1, 55, 0, 8192, now=0.0)
        assert v.file_size(55) == 8192

    def test_writeback_plan_flushes_on_active_disk(self):
        v = vfs_with_file()
        v.write(1, 1, 0, 64 * 1024, now=0.0)
        extents = v.plan_writeback(1.0, disk_active=True)
        assert sum(e.npages for e in extents) == 16
        assert v.writeback.dirty_count == 0

    def test_writeback_defers_on_standby_disk(self):
        v = vfs_with_file()
        v.write(1, 1, 0, 64 * 1024, now=0.0)
        assert v.plan_writeback(1.0, disk_active=False) == []

    def test_overwrite_of_cached_page_dirties_it(self):
        v = vfs_with_file()
        plan = v.read(1, 1, 0, PAGE_SIZE, now=0.0)
        for e in plan.fetch_extents:
            v.complete_fetch(e, now=0.0)
        v.write(1, 1, 0, 100, now=1.0)
        from repro.kernel.page import PageId
        assert v.cache.is_dirty(PageId(1, 0))


class TestResidency:
    def test_resident_bytes(self):
        v = vfs_with_file()
        assert v.resident_bytes(1, 0, 64 * 1024) == 0
        plan = v.read(1, 1, 0, 64 * 1024, now=0.0)
        for e in plan.fetch_extents:
            v.complete_fetch(e, now=0.0)
        assert v.resident_bytes(1, 0, 64 * 1024) == 64 * 1024

    def test_resident_bytes_zero_size(self):
        v = vfs_with_file()
        assert v.resident_bytes(1, 0, 0) == 0


class TestNamespace:
    def test_register_grows_only(self):
        v = VirtualFileSystem()
        v.register_file(1, 100)
        v.register_file(1, 50)
        assert v.file_size(1) == 100

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            VirtualFileSystem().register_file(1, -1)

    def test_known_files(self):
        v = VirtualFileSystem()
        v.register_file(3, 10)
        v.register_file(1, 10)
        assert sorted(v.known_files()) == [1, 3]

    def test_bad_memory_size_rejected(self):
        with pytest.raises(ValueError):
            VirtualFileSystem(0)
