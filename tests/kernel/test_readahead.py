"""Unit tests for two-window readahead."""

import pytest

from repro.kernel.page import Extent
from repro.kernel.readahead import TwoWindowReadahead


class TestSequentialGrowth:
    def test_first_sequential_read_gets_min_window(self):
        ra = TwoWindowReadahead(min_pages=4, max_pages=32)
        plan = ra.plan(1, 10, Extent(10, 0, 2), file_pages=1000)
        # demand 2 pages + 4 ahead
        assert plan == Extent(10, 0, 6)

    def test_window_doubles_up_to_cap(self):
        ra = TwoWindowReadahead(min_pages=4, max_pages=32)
        start = 0
        sizes = []
        for _ in range(6):
            plan = ra.plan(1, 10, Extent(10, start, 4), file_pages=10_000)
            sizes.append(plan.npages - 4)     # ahead pages
            start += 4
        assert sizes == [4, 8, 16, 32, 32, 32]

    def test_cap_is_32_pages(self):
        ra = TwoWindowReadahead()
        assert ra.max_pages == 32

    def test_clamped_to_file_size(self):
        ra = TwoWindowReadahead(min_pages=4)
        plan = ra.plan(1, 10, Extent(10, 0, 2), file_pages=3)
        assert plan.end <= 3

    def test_sub_page_reads_count_as_sequential(self):
        ra = TwoWindowReadahead(min_pages=4)
        ra.plan(1, 10, Extent(10, 0, 1), file_pages=100)
        plan = ra.plan(1, 10, Extent(10, 0, 1), file_pages=100)
        # continuing within the same page is sequential
        st = ra.state(1, 10)
        assert st.sequential_count == 2


class TestRandomCollapse:
    def test_random_read_gets_no_readahead(self):
        ra = TwoWindowReadahead(min_pages=4)
        ra.plan(1, 10, Extent(10, 0, 4), file_pages=1000)
        plan = ra.plan(1, 10, Extent(10, 500, 2), file_pages=1000)
        assert plan == Extent(10, 500, 2)
        assert ra.state(1, 10).random_count == 1

    def test_reread_is_random(self):
        ra = TwoWindowReadahead(min_pages=4)
        ra.plan(1, 10, Extent(10, 0, 8), file_pages=1000)
        plan = ra.plan(1, 10, Extent(10, 0, 8), file_pages=1000)
        assert plan == Extent(10, 0, 8)       # no ahead window

    def test_window_regrows_after_collapse(self):
        ra = TwoWindowReadahead(min_pages=4)
        ra.plan(1, 10, Extent(10, 0, 4), file_pages=10_000)
        ra.plan(1, 10, Extent(10, 500, 2), file_pages=10_000)   # random
        plan = ra.plan(1, 10, Extent(10, 502, 2), file_pages=10_000)
        assert plan.npages - 2 == 4           # back to min window


class TestStreams:
    def test_streams_are_independent(self):
        ra = TwoWindowReadahead(min_pages=4)
        ra.plan(1, 10, Extent(10, 0, 4), file_pages=1000)
        ra.plan(1, 10, Extent(10, 4, 4), file_pages=1000)
        # Different pid, same file: fresh stream.
        plan = ra.plan(2, 10, Extent(10, 0, 4), file_pages=1000)
        assert plan.npages - 4 == 4

    def test_reset_forgets_stream(self):
        ra = TwoWindowReadahead(min_pages=4)
        ra.plan(1, 10, Extent(10, 0, 4), file_pages=1000)
        ra.plan(1, 10, Extent(10, 4, 4), file_pages=1000)
        ra.reset(1, 10)
        plan = ra.plan(1, 10, Extent(10, 8, 4), file_pages=1000)
        # post-reset, offset-8 start is a random probe
        assert plan == Extent(10, 8, 4)

    def test_non_zero_first_access_is_random_probe(self):
        ra = TwoWindowReadahead(min_pages=4)
        plan = ra.plan(1, 10, Extent(10, 50, 2), file_pages=1000)
        assert plan == Extent(10, 50, 2)


class TestValidation:
    def test_bad_window_sizes_rejected(self):
        with pytest.raises(ValueError):
            TwoWindowReadahead(min_pages=0)
        with pytest.raises(ValueError):
            TwoWindowReadahead(min_pages=8, max_pages=4)
