"""Kernel-path integration tests: cache + readahead + write-back acting
together through the VFS, on access patterns the workloads actually
produce."""


from repro.kernel.page import PAGE_SIZE
from repro.kernel.vfs import VirtualFileSystem
from repro.kernel.writeback import WritebackConfig
from repro.sim.clock import MB


def fetch_all(vfs, plan, now=0.0):
    total = 0
    for extent in plan.fetch_extents:
        vfs.complete_fetch(extent, now)
        total += extent.nbytes
    return total


class TestSequentialScan:
    def test_device_traffic_close_to_file_size(self):
        """Streaming a file reads each byte from the device once —
        readahead must not multiply traffic."""
        vfs = VirtualFileSystem(32 * MB)
        vfs.register_file(1, 8 * MB)
        device_bytes = 0
        offset = 0
        while offset < 8 * MB:
            plan = vfs.read(1, 1, offset, 64 * 1024, now=offset / 1e6)
            device_bytes += fetch_all(vfs, plan)
            offset += 64 * 1024
        assert 8 * MB <= device_bytes <= 8 * MB * 1.05

    def test_steady_state_reads_are_fully_prefetched(self):
        """Once the window is open, most demand reads hit the cache."""
        vfs = VirtualFileSystem(32 * MB)
        vfs.register_file(1, 8 * MB)
        hits = 0
        total = 0
        offset = 0
        while offset < 8 * MB:
            plan = vfs.read(1, 1, offset, 64 * 1024, now=0.0)
            fetch_all(vfs, plan)
            if plan.demand_extent is not None:
                hits += plan.hit_pages
                total += plan.demand_extent.npages
            offset += 64 * 1024
        assert hits / total > 0.4


class TestWorkingSetResidency:
    def test_hot_set_survives_one_scan(self):
        """make's header files must stay cached through a source scan
        (2Q's scan resistance through the full stack)."""
        vfs = VirtualFileSystem(16 * MB)
        hot = 1
        vfs.register_file(hot, 512 * 1024)
        # Touch the header set several times to promote it.
        for round_ in range(3):
            plan = vfs.read(100 + round_, hot, 0, 512 * 1024, now=0.0)
            fetch_all(vfs, plan)
        # A 64 MB scan through the 16 MB cache.
        scan = 2
        vfs.register_file(scan, 64 * MB)
        offset = 0
        while offset < 64 * MB:
            plan = vfs.read(200, scan, offset, 128 * 1024, now=1.0)
            fetch_all(vfs, plan, now=1.0)
            offset += 128 * 1024
        assert vfs.resident_bytes(hot, 0, 512 * 1024) > 256 * 1024

    def test_capacity_bounded_under_pressure(self):
        vfs = VirtualFileSystem(4 * MB)
        vfs.register_file(1, 64 * MB)
        offset = 0
        while offset < 64 * MB:
            plan = vfs.read(1, 1, offset, 128 * 1024, now=0.0)
            fetch_all(vfs, plan)
            offset += 128 * 1024
        assert len(vfs.cache) <= vfs.cache.capacity


class TestWritePathIntegration:
    def test_write_then_read_hits_cache(self):
        vfs = VirtualFileSystem(16 * MB)
        vfs.write(1, 5, 0, 256 * 1024, now=0.0)
        plan = vfs.read(1, 5, 0, 256 * 1024, now=1.0)
        assert plan.fully_cached

    def test_dirty_data_flushes_once(self):
        vfs = VirtualFileSystem(16 * MB)
        vfs.write(1, 5, 0, 256 * 1024, now=0.0)
        first = vfs.plan_writeback(1.0, disk_active=True)
        second = vfs.plan_writeback(2.0, disk_active=True)
        assert sum(e.npages for e in first) == 64
        assert second == []

    def test_rewrite_after_flush_redirties(self):
        vfs = VirtualFileSystem(16 * MB)
        vfs.write(1, 5, 0, 4096, now=0.0)
        vfs.plan_writeback(1.0, disk_active=True)
        vfs.write(1, 5, 0, 4096, now=2.0)
        assert vfs.writeback.dirty_count == 1
        flushed = vfs.plan_writeback(3.0, disk_active=True)
        assert sum(e.npages for e in flushed) == 1

    def test_eviction_under_write_pressure_flushes_dirty(self):
        """Writing far past the cache size forces dirty evictions, all
        of which must surface as immediate flush extents."""
        vfs = VirtualFileSystem(1 * MB,
                                writeback_config=WritebackConfig(
                                    max_age=1e9,
                                    dirty_limit_pages=10**6))
        forced_pages = 0
        for i in range(1024):          # 4 MB of writes into 1 MB cache
            forced = vfs.write(1, 5, i * PAGE_SIZE, PAGE_SIZE,
                               now=float(i))
            forced_pages += sum(e.npages for e in forced)
        resident_dirty = len(vfs.cache.dirty_pages())
        assert forced_pages + resident_dirty == 1024


class TestInterleavedStreams:
    def test_two_streams_keep_independent_windows(self):
        """grep's per-file streams: interleaving two sequential readers
        must not destroy either one's readahead."""
        vfs = VirtualFileSystem(32 * MB)
        vfs.register_file(1, 4 * MB)
        vfs.register_file(2, 4 * MB)
        hits = {1: 0, 2: 0}
        total = {1: 0, 2: 0}
        for step in range(32):
            for inode in (1, 2):
                offset = step * 128 * 1024
                plan = vfs.read(inode, inode, offset, 128 * 1024,
                                now=float(step))
                fetch_all(vfs, plan)
                hits[inode] += plan.hit_pages
                total[inode] += plan.demand_extent.npages
        for inode in (1, 2):
            assert hits[inode] / total[inode] > 0.3, inode
