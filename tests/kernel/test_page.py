"""Unit and property tests for page/extent algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.page import (
    MAX_READAHEAD_PAGES,
    PAGE_SIZE,
    Extent,
    PageId,
    coalesce,
    pages_of_range,
    runs_from_pages,
    split_max_pages,
)


class TestExtent:
    def test_basic_properties(self):
        e = Extent(1, 4, 3)
        assert e.end == 7
        assert e.nbytes == 3 * PAGE_SIZE
        assert list(e.pages()) == [PageId(1, 4), PageId(1, 5), PageId(1, 6)]

    def test_zero_pages_rejected(self):
        with pytest.raises(ValueError):
            Extent(1, 0, 0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Extent(1, -1, 1)

    def test_intersects(self):
        assert Extent(1, 0, 4).intersects(Extent(1, 3, 2))
        assert not Extent(1, 0, 4).intersects(Extent(1, 4, 2))
        assert not Extent(1, 0, 4).intersects(Extent(2, 0, 4))

    def test_merge_adjacent(self):
        merged = Extent(1, 0, 4).merge(Extent(1, 4, 2))
        assert merged == Extent(1, 0, 6)

    def test_merge_overlapping(self):
        merged = Extent(1, 0, 4).merge(Extent(1, 2, 5))
        assert merged == Extent(1, 0, 7)

    def test_merge_disjoint_rejected(self):
        with pytest.raises(ValueError):
            Extent(1, 0, 2).merge(Extent(1, 5, 2))
        with pytest.raises(ValueError):
            Extent(1, 0, 2).merge(Extent(2, 2, 2))

    def test_clamp(self):
        assert Extent(1, 0, 10).clamp(4) == Extent(1, 0, 4)
        assert Extent(1, 5, 5).clamp(5) is None
        assert Extent(1, 0, 3).clamp(10) == Extent(1, 0, 3)


class TestPagesOfRange:
    def test_page_aligned(self):
        assert pages_of_range(1, 0, PAGE_SIZE) == Extent(1, 0, 1)
        assert pages_of_range(1, PAGE_SIZE, 2 * PAGE_SIZE) == Extent(1, 1, 2)

    def test_straddles_boundary(self):
        assert pages_of_range(1, PAGE_SIZE - 1, 2) == Extent(1, 0, 2)

    def test_sub_page(self):
        assert pages_of_range(1, 100, 50) == Extent(1, 0, 1)

    def test_zero_size_is_none(self):
        assert pages_of_range(1, 0, 0) is None

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pages_of_range(1, -1, 5)


class TestCoalesce:
    def test_merges_adjacent_runs(self):
        out = coalesce([Extent(1, 4, 2), Extent(1, 0, 4)])
        assert out == [Extent(1, 0, 6)]

    def test_keeps_disjoint_runs(self):
        out = coalesce([Extent(1, 0, 2), Extent(1, 8, 2)])
        assert out == [Extent(1, 0, 2), Extent(1, 8, 2)]

    def test_different_files_never_merge(self):
        out = coalesce([Extent(1, 0, 2), Extent(2, 2, 2)])
        assert len(out) == 2

    @given(st.lists(st.tuples(st.integers(1, 3), st.integers(0, 50),
                              st.integers(1, 8)), max_size=30))
    def test_coalesce_preserves_page_set(self, raw):
        extents = [Extent(i, s, n) for i, s, n in raw]
        pages_before = {p for e in extents for p in e.pages()}
        out = coalesce(extents)
        pages_after = {p for e in out for p in e.pages()}
        assert pages_before == pages_after
        # Output has no mergeable neighbours.
        for a, b in zip(out, out[1:], strict=False):
            assert not a.adjacent_or_overlapping(b)


class TestRunsFromPages:
    def test_groups_contiguous(self):
        pages = [PageId(1, 0), PageId(1, 1), PageId(1, 3), PageId(2, 4)]
        assert runs_from_pages(pages) == [
            Extent(1, 0, 2), Extent(1, 3, 1), Extent(2, 4, 1)]

    def test_deduplicates(self):
        pages = [PageId(1, 0), PageId(1, 0), PageId(1, 1)]
        assert runs_from_pages(pages) == [Extent(1, 0, 2)]

    @given(st.sets(st.tuples(st.integers(1, 2), st.integers(0, 100)),
                   max_size=50))
    def test_round_trip(self, raw):
        pages = {PageId(i, n) for i, n in raw}
        runs = runs_from_pages(pages)
        assert {p for e in runs for p in e.pages()} == pages


class TestSplitMaxPages:
    def test_within_limit_unchanged(self):
        assert split_max_pages(Extent(1, 0, 10), 32) == [Extent(1, 0, 10)]

    def test_splits_at_limit(self):
        out = split_max_pages(Extent(1, 0, 70), 32)
        assert out == [Extent(1, 0, 32), Extent(1, 32, 32),
                       Extent(1, 64, 6)]

    def test_max_readahead_is_128kb(self):
        assert MAX_READAHEAD_PAGES * PAGE_SIZE == 128 * 1024

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            split_max_pages(Extent(1, 0, 5), 0)

    @given(st.integers(1, 200), st.integers(1, 64))
    def test_split_preserves_coverage(self, npages, limit):
        ext = Extent(1, 0, npages)
        parts = split_max_pages(ext, limit)
        assert all(p.npages <= limit for p in parts)
        assert sum(p.npages for p in parts) == npages
        assert parts[0].start == 0
        for a, b in zip(parts, parts[1:], strict=False):
            assert a.end == b.start
