"""Unit tests for laptop-mode write-back."""

import pytest

from repro.kernel.cache import TwoQCache
from repro.kernel.page import PageId
from repro.kernel.writeback import LaptopModeWriteback, WritebackConfig


def setup(capacity=64, **cfg):
    cache = TwoQCache(capacity)
    wb = LaptopModeWriteback(cache, WritebackConfig(**cfg) if cfg else None)
    return cache, wb


def dirty(cache, wb, inode, index, now):
    p = PageId(inode, index)
    cache.insert(p, dirty=True, now=now)
    wb.note_dirty(p, now)
    return p


class TestConfig:
    def test_defaults(self):
        cfg = WritebackConfig()
        assert cfg.max_age == 30.0
        assert cfg.eager_on_active

    def test_validation(self):
        with pytest.raises(ValueError):
            WritebackConfig(max_age=0)
        with pytest.raises(ValueError):
            WritebackConfig(dirty_limit_pages=0)


class TestFlushPolicy:
    def test_nothing_dirty_nothing_flushed(self):
        _, wb = setup()
        assert wb.plan_flush(10.0, disk_active=True) == []

    def test_eager_flush_on_active_disk(self):
        cache, wb = setup()
        dirty(cache, wb, 1, 0, now=1.0)
        extents = wb.plan_flush(1.5, disk_active=True)
        assert len(extents) == 1
        assert wb.dirty_count == 0
        assert not cache.is_dirty(PageId(1, 0))

    def test_standby_disk_defers_young_pages(self):
        cache, wb = setup()
        dirty(cache, wb, 1, 0, now=1.0)
        assert wb.plan_flush(5.0, disk_active=False) == []
        assert wb.dirty_count == 1

    def test_age_forces_flush_even_on_standby(self):
        cache, wb = setup(max_age=30.0)
        dirty(cache, wb, 1, 0, now=0.0)
        assert wb.plan_flush(29.0, disk_active=False) == []
        extents = wb.plan_flush(31.0, disk_active=False)
        assert len(extents) == 1

    def test_flush_takes_everything_once_due(self):
        """Laptop mode flushes ALL dirty data to maximise quiet time."""
        cache, wb = setup(max_age=30.0)
        dirty(cache, wb, 1, 0, now=0.0)     # old page
        dirty(cache, wb, 1, 1, now=29.0)    # young page
        extents = wb.plan_flush(31.0, disk_active=False)
        assert sum(e.npages for e in extents) == 2

    def test_dirty_limit_trips(self):
        cache, wb = setup(capacity=256, dirty_limit_pages=4)
        for i in range(4):
            dirty(cache, wb, 1, i, now=1.0)
        extents = wb.plan_flush(1.1, disk_active=False)
        assert sum(e.npages for e in extents) == 4

    def test_contiguous_pages_flush_as_one_extent(self):
        cache, wb = setup()
        for i in range(5):
            dirty(cache, wb, 1, i, now=1.0)
        extents = wb.plan_flush(2.0, disk_active=True)
        assert len(extents) == 1
        assert extents[0].npages == 5


class TestBookkeeping:
    def test_next_forced_flush(self):
        cache, wb = setup(max_age=30.0)
        assert wb.next_forced_flush() is None
        dirty(cache, wb, 1, 0, now=5.0)
        assert wb.next_forced_flush() == pytest.approx(35.0)

    def test_oldest_dirty_age(self):
        cache, wb = setup()
        dirty(cache, wb, 1, 0, now=2.0)
        dirty(cache, wb, 1, 1, now=6.0)
        assert wb.oldest_dirty_age(10.0) == pytest.approx(8.0)

    def test_evicted_dirty_pages_dropped_from_table(self):
        """Pages flushed by cache eviction must not be re-flushed."""
        cache, wb = setup(capacity=4)
        for i in range(10):                  # forces dirty evictions
            p = PageId(1, i)
            evicted = cache.insert(p, dirty=True, now=float(i))
            wb.note_dirty(p, float(i))
            for q in evicted:
                wb.note_clean(q)
        extents = wb.plan_flush(100.0, disk_active=True)
        flushed = {p for e in extents for p in e.pages()}
        assert all(p in cache for p in flushed)

    def test_flush_counters(self):
        cache, wb = setup()
        dirty(cache, wb, 1, 0, now=0.0)
        wb.plan_flush(1.0, disk_active=True)
        assert wb.flush_count == 1
        assert wb.flushed_pages == 1
