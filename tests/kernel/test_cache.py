"""Unit and property tests for the 2Q-like page cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel.cache import TwoQCache
from repro.kernel.page import PageId


def page(i, n):
    return PageId(i, n)


class TestBasics:
    def test_miss_then_insert_then_hit(self):
        c = TwoQCache(16)
        assert not c.access(page(1, 0))
        c.insert(page(1, 0))
        assert c.access(page(1, 0))
        assert c.stats.hits == 1
        assert c.stats.misses == 1

    def test_miss_does_not_insert(self):
        c = TwoQCache(16)
        c.access(page(1, 0))
        assert page(1, 0) not in c
        assert len(c) == 0

    def test_capacity_respected(self):
        c = TwoQCache(8)
        for i in range(20):
            c.insert(page(1, i))
        assert len(c) <= 8

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            TwoQCache(0)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            TwoQCache(8, kin_fraction=0.0)
        with pytest.raises(ValueError):
            TwoQCache(8, kout_fraction=0.0)


class TestTwoQBehaviour:
    def test_first_touch_goes_to_a1in(self):
        c = TwoQCache(16)
        c.insert(page(1, 0))
        a1in, a1out, am = c.queue_sizes()
        assert (a1in, am) == (1, 0)

    def test_ghost_promotion_to_am(self):
        c = TwoQCache(8, kin_fraction=0.25)   # kin = 2
        c.insert(page(1, 0))
        # Push enough new pages to evict page(1,0) from A1in to A1out.
        for i in range(1, 12):
            c.insert(page(1, i))
        assert page(1, 0) not in c            # evicted (ghost only)
        c.insert(page(1, 0))                  # re-fetch: ghost hit
        _, _, am = c.queue_sizes()
        assert am >= 1
        assert c.stats.ghost_promotions >= 1

    def test_scan_resistance(self):
        """A long one-touch scan must not evict the re-referenced set."""
        c = TwoQCache(64, kin_fraction=0.25)
        hot = [page(1, i) for i in range(8)]
        # Establish hot set in Am via ghost promotion: fill to capacity
        # so exactly the hot pages fall off A1in into the ghost list.
        for p in hot:
            c.insert(p)
        for i in range(100, 164):             # push them through A1in
            c.insert(page(2, i))
        assert all(p not in c for p in hot)   # evicted, ghosts remain
        for p in hot:
            c.insert(p)                       # ghost hits -> Am
        # Now a large sequential scan (single touch each).
        for i in range(1000, 1400):
            c.access(page(3, i))
            c.insert(page(3, i))
        # Hot set survives the scan.
        assert all(p in c for p in hot)

    def test_am_is_lru(self):
        c = TwoQCache(8, kin_fraction=0.25, kout_fraction=2.0)
        a, b = page(1, 0), page(1, 1)
        for p in (a, b):
            c.insert(p)
        for i in range(10, 20):               # evict both to ghosts
            c.insert(page(2, i))
        for p in (a, b):
            c.insert(p)                       # promote both to Am
        c.access(a)                           # a more recent than b
        # Fill to force Am eviction.
        for i in range(30, 60):
            c.insert(page(3, i))
        if b in c:
            # If anything of the pair was evicted, it must be b first.
            assert a in c


class TestDirtyTracking:
    def test_mark_dirty_and_clean(self):
        c = TwoQCache(8)
        c.insert(page(1, 0))
        assert c.mark_dirty(page(1, 0), now=1.0)
        assert c.is_dirty(page(1, 0))
        c.clean(page(1, 0))
        assert not c.is_dirty(page(1, 0))

    def test_mark_dirty_missing_page(self):
        c = TwoQCache(8)
        assert not c.mark_dirty(page(1, 0), now=1.0)

    def test_dirty_eviction_surfaces_pages(self):
        c = TwoQCache(4, kin_fraction=0.5)
        flushed = []
        for i in range(10):
            flushed += c.insert(page(1, i), dirty=True, now=float(i))
        assert flushed                         # something was evicted dirty
        assert c.stats.dirty_evictions == len(flushed)

    def test_dirty_pages_ordered_by_age(self):
        c = TwoQCache(16)
        c.insert(page(1, 1), dirty=True, now=5.0)
        c.insert(page(1, 0), dirty=True, now=1.0)
        assert c.dirty_pages() == [page(1, 0), page(1, 1)]

    def test_insert_existing_page_can_dirty_it(self):
        c = TwoQCache(16)
        c.insert(page(1, 0))
        c.insert(page(1, 0), dirty=True, now=2.0)
        assert c.is_dirty(page(1, 0))


class TestDropAndResidency:
    def test_drop(self):
        c = TwoQCache(8)
        c.insert(page(1, 0))
        c.drop(page(1, 0))
        assert page(1, 0) not in c

    def test_resident_fraction(self):
        from repro.kernel.page import Extent
        c = TwoQCache(8)
        c.insert(page(1, 0))
        c.insert(page(1, 1))
        assert c.resident_fraction(Extent(1, 0, 4)) == pytest.approx(0.5)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(1, 5),
                              st.integers(0, 60)), max_size=200),
           st.integers(4, 32))
    def test_never_exceeds_capacity_and_stats_consistent(self, ops, cap):
        c = TwoQCache(cap)
        for kind, inode, index in ops:
            p = page(inode, index)
            if kind == 0:
                c.access(p)
            else:
                c.insert(p)
            assert len(c) <= cap
        assert c.stats.accesses == c.stats.hits + c.stats.misses
        assert 0.0 <= c.stats.hit_ratio <= 1.0
