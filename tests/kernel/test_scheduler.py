"""Unit tests for the C-SCAN elevator."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.page import Extent
from repro.kernel.scheduler import CScanScheduler, DiskExtent


def req(block, npages=1, inode=1, start=0):
    return DiskExtent(extent=Extent(inode, start, npages),
                      start_block=block)


class TestOrdering:
    def test_ascending_from_head(self):
        s = CScanScheduler(head_block=50)
        s.add_all([req(10), req(60), req(55), req(90)])
        order = [r.start_block for r in s.drain()]
        assert order == [55, 60, 90, 10]      # sweep up, then wrap

    def test_pure_ascending_when_all_ahead(self):
        s = CScanScheduler(head_block=0)
        s.add_all([req(30), req(10), req(20)])
        assert [r.start_block for r in s.drain()] == [10, 20, 30]

    def test_wrap_to_lowest(self):
        s = CScanScheduler(head_block=100)
        s.add_all([req(10), req(5), req(40)])
        assert [r.start_block for r in s.drain()] == [5, 10, 40]

    def test_head_tracks_request_start(self):
        s = CScanScheduler(head_block=0)
        s.add(req(10, npages=5))
        list(s.drain())
        assert s.head_block == 10

    def test_equal_blocks_dispatch_back_to_back(self):
        s = CScanScheduler(head_block=1)
        s.add_all([req(0), req(0), req(1), req(1)])
        assert [r.start_block for r in s.drain()] == [1, 1, 0, 0]

    def test_order_convenience(self):
        s = CScanScheduler()
        batch = [req(30), req(10)]
        ordered = s.order(batch)
        assert [r.start_block for r in ordered] == [10, 30]
        assert len(s) == 0


class TestValidation:
    def test_negative_head_rejected(self):
        with pytest.raises(ValueError):
            CScanScheduler(head_block=-1)

    def test_negative_block_rejected(self):
        with pytest.raises(ValueError):
            req(-5)

    def test_len(self):
        s = CScanScheduler()
        s.add(req(1))
        s.add(req(2))
        assert len(s) == 2


class TestProperties:
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=60),
           st.integers(0, 10_000))
    def test_drain_yields_everything_once(self, blocks, head):
        s = CScanScheduler(head_block=head)
        s.add_all(req(b) for b in blocks)
        out = [r.start_block for r in s.drain()]
        assert sorted(out) == sorted(blocks)

    @given(st.lists(st.integers(0, 10_000), min_size=2, max_size=60),
           st.integers(0, 10_000))
    def test_single_direction_change_at_most(self, blocks, head):
        """A C-SCAN sweep goes up, wraps at most once, goes up again."""
        s = CScanScheduler(head_block=head)
        s.add_all(req(b) for b in blocks)
        out = [r.start_block for r in s.drain()]
        wraps = sum(1 for a, b in zip(out, out[1:], strict=False) if b < a)
        assert wraps <= 1
