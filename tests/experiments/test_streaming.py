"""Streaming sweep aggregation: constant-space folds match materialised
results bit-for-bit, serial and parallel."""

import math

import pytest

from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.simulator import ProgramSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import ParallelSweepExecutor, _PointStore
from repro.experiments.runner import (
    ProgramSet,
    SweepAggregate,
    SweepPoint,
    run_sweep,
)
from repro.experiments.supervisor import RetryPolicy
from tests.conftest import make_trace


def small_trace():
    calls = [(1, i * 65536, 65536, "read", i * 1.5) for i in range(8)]
    return make_trace(calls, name="stream", file_sizes={1: 8 * 65536})


class BoomFactory:
    """Module-level (hence picklable) policy factory that always fails."""

    def __call__(self):
        raise RuntimeError("boom in worker")


@pytest.fixture
def config():
    return ExperimentConfig(seed=3,
                            latency_sweep=(0.0, 0.010, 0.025),
                            bandwidth_sweep_bps=(11e6 / 8,))


@pytest.fixture
def programs():
    return ProgramSet((ProgramSpec(small_trace()).prepared(),))


FACTS = {"Disk-only": DiskOnlyPolicy, "WNIC-only": WnicOnlyPolicy}


class TestSweepAggregate:
    def test_streamed_serial_matches_materialised_fold(self, config,
                                                       programs):
        specs = config.latency_points()
        curves = run_sweep(programs, FACTS, specs, config)
        streamed = run_sweep(programs, FACTS, specs, config, stream=True)
        assert isinstance(streamed, SweepAggregate)
        assert streamed.cells == len(FACTS) * len(specs)
        assert streamed.failed == 0
        assert streamed.as_dict() == \
            SweepAggregate.from_curves(curves).as_dict()

    def test_streamed_parallel_matches_streamed_serial(self, config,
                                                       programs):
        specs = config.latency_points()
        serial = run_sweep(programs, FACTS, specs, config, stream=True)
        parallel = run_sweep(programs, FACTS, specs, config, stream=True,
                             workers=2)
        assert parallel.as_dict() == serial.as_dict()

    def test_placeholders_counted_failed_not_folded(self, config,
                                                    programs):
        executor = ParallelSweepExecutor(
            1, retry=RetryPolicy(max_retries=0), partial=True)
        aggregate = SweepAggregate(("Disk-only", "Boom"))
        facts = {"Disk-only": DiskOnlyPolicy, "Boom": BoomFactory()}
        specs = config.latency_points()
        executor.run_sweep(programs, facts, specs, config,
                           consumer=aggregate.observe)
        boom = aggregate.curves["Boom"]
        assert boom.cells == len(specs)
        assert boom.failed == len(specs)
        assert boom.energy.count == 0
        good = aggregate.curves["Disk-only"]
        assert good.failed == 0
        assert good.energy.count == len(specs)
        assert not math.isnan(good.energy.mean)

    def test_executor_returns_empty_curves_when_streaming(self, config,
                                                          programs):
        executor = ParallelSweepExecutor(1)
        aggregate = SweepAggregate(FACTS)
        curves = executor.run_sweep(programs, FACTS,
                                    config.latency_points(), config,
                                    consumer=aggregate.observe)
        assert all(points == [] for points in curves.values())
        assert aggregate.cells == len(FACTS) * len(config.latency_points())


class TestPointStore:
    def _point(self, name):
        nan = float("nan")
        from repro.experiments.parallel import placeholder_result
        return SweepPoint(policy=name, latency=nan, bandwidth_bps=nan,
                          result=placeholder_result(name))

    def test_out_of_order_adds_flush_in_sweep_order(self):
        delivered = []
        store = _PointStore(lambda i, curve, p: delivered.append(i))
        store.add(2, "c", self._point("c"))
        store.add(0, "a", self._point("a"))
        assert delivered == [0]          # 1 still missing, 2 buffered
        store.add(1, "b", self._point("b"))
        assert delivered == [0, 1, 2]
        assert store.held == 0           # nothing retained after flush
        assert store.added == 3

    def test_materialised_mode_retains_points(self):
        store = _PointStore(None)
        point = self._point("a")
        store.add(0, "a", point)
        assert store.get(0) is point
        assert store.held == 1

    def test_streamed_sweep_retains_no_points(self, config, programs):
        executor = ParallelSweepExecutor(2)
        seen = []
        real_add = _PointStore.add

        stores = []
        orig_init = _PointStore.__init__

        def spy_init(self, consumer=None):
            orig_init(self, consumer)
            stores.append(self)

        _PointStore.__init__ = spy_init
        try:
            executor.run_sweep(programs, FACTS, config.latency_points(),
                               config,
                               consumer=lambda i, c, p: seen.append(i))
        finally:
            _PointStore.__init__ = orig_init
        assert seen == sorted(seen)
        assert len(seen) == len(FACTS) * len(config.latency_points())
        assert all(store.held == 0 for store in stores)
        assert real_add is _PointStore.add
