"""Determinism and failure-path tests for the parallel sweep executor."""

from dataclasses import replace

import pytest

from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.profile import profile_from_trace
from repro.core.simulator import ProgramSpec
from repro.experiments.cache import RunCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FlexFetchFactory
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    ProgramRef,
    SweepCellError,
    SweepJob,
    _execute_job,
    stage_payload,
)
from repro.experiments.runner import ProgramSet, run_sweep
from tests.conftest import make_trace


def small_trace():
    calls = [(1, i * 65536, 65536, "read", i * 1.5) for i in range(8)]
    return make_trace(calls, name="par", file_sizes={1: 8 * 65536})


class BoomFactory:
    """Module-level (hence picklable) policy factory that always fails."""

    def __call__(self):
        raise RuntimeError("boom in worker")


@pytest.fixture
def config():
    return ExperimentConfig(seed=3,
                            latency_sweep=(0.0, 0.010),
                            bandwidth_sweep_bps=(11e6 / 8,))


@pytest.fixture
def programs():
    return ProgramSet((ProgramSpec(small_trace()),))


def policies(trace):
    profile = profile_from_trace(trace)
    return {
        "Disk-only": DiskOnlyPolicy,
        "WNIC-only": WnicOnlyPolicy,
        "FlexFetch": FlexFetchFactory(profile=profile, loss_rate=0.25,
                                      stage_length=40.0),
    }


class TestBitIdenticalToSerial:
    def test_workers4_matches_workers1(self, config, programs):
        facts = policies(programs.specs[0].trace)
        specs = config.latency_points()
        serial = ParallelSweepExecutor(1).run_sweep(
            programs, facts, specs, config)
        parallel = ParallelSweepExecutor(4).run_sweep(
            programs, facts, specs, config)
        assert list(serial) == list(parallel)   # curve order
        for name in serial:
            assert len(serial[name]) == len(specs)
            for a, b in zip(serial[name], parallel[name]):
                assert a.latency == b.latency   # sweep order preserved
                assert a.result == b.result     # exact, field by field
                assert a.energy == b.energy
                assert a.time == b.time

    def test_run_sweep_workers_kwarg_delegates(self, config, programs):
        facts = {"Disk-only": DiskOnlyPolicy}
        specs = config.latency_points()
        assert run_sweep(programs, facts, specs, config, workers=2) == \
            run_sweep(programs, facts, specs, config)


class TestProgressMarshalling:
    def test_one_line_per_cell_in_parent(self, config, programs):
        facts = policies(programs.specs[0].trace)
        specs = config.latency_points()
        lines: list[str] = []
        ParallelSweepExecutor(2).run_sweep(
            programs, facts, specs, config, progress=lines.append)
        assert len(lines) == len(facts) * len(specs)
        for name in facts:
            assert sum(name in line for line in lines) == len(specs)


class TestWorkerFailure:
    def test_failed_cell_raises_after_others_complete(self, config,
                                                      programs):
        facts = {"Disk-only": DiskOnlyPolicy,
                 "Boom": BoomFactory(),
                 "WNIC-only": WnicOnlyPolicy}
        executor = ParallelSweepExecutor(2)
        with pytest.raises(SweepCellError) as info:
            executor.run_sweep(programs, facts, config.latency_points(),
                               config)
        assert info.value.curve == "Boom"
        assert isinstance(info.value.__cause__, RuntimeError)
        assert "boom in worker" in str(info.value.__cause__)
        # The healthy cells were not abandoned: 2 policies x 2 points.
        assert executor.live_runs == 4

    def test_serial_path_same_semantics(self, config, programs):
        executor = ParallelSweepExecutor(1)
        with pytest.raises(SweepCellError) as info:
            executor.run_sweep(
                programs, {"Boom": BoomFactory(),
                           "Disk-only": DiskOnlyPolicy},
                [config.wnic_spec], config)
        assert info.value.curve == "Boom"
        assert executor.live_runs == 1

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ParallelSweepExecutor(0)


class TestJobExecution:
    def test_execute_job_matches_direct_run(self, config, programs):
        spec = programs.specs[0].prepared()
        ref = ProgramRef.of(spec)
        stage_payload(ref.digest, spec.trace)
        job = SweepJob(index=0, curve="Disk-only",
                       programs=(ref,),
                       policy_factory=DiskOnlyPolicy,
                       wnic_spec=config.wnic_spec, config=config)
        direct = ParallelSweepExecutor(1).run_sweep(
            programs, {"Disk-only": DiskOnlyPolicy},
            [config.wnic_spec], config)
        assert _execute_job(job).result == direct["Disk-only"][0].result


class TestParallelWithCache:
    def test_parallel_cold_then_warm(self, tmp_path, config, programs):
        facts = policies(programs.specs[0].trace)
        specs = config.latency_points()
        cold = ParallelSweepExecutor(2, cache=RunCache(tmp_path))
        first = cold.run_sweep(programs, facts, specs, config)
        assert cold.live_runs == len(facts) * len(specs)
        assert cold.cache_hits == 0
        warm = ParallelSweepExecutor(2, cache=RunCache(tmp_path))
        second = warm.run_sweep(programs, facts, specs, config)
        assert warm.live_runs == 0
        assert warm.cache_hits == len(facts) * len(specs)
        assert second == first

    def test_mixed_hit_miss_grid(self, tmp_path, config, programs):
        """A grid partially covered by the cache fills in the holes."""
        specs = config.latency_points()
        half = ParallelSweepExecutor(1, cache=RunCache(tmp_path))
        half.run_sweep(programs, {"Disk-only": DiskOnlyPolicy},
                       [specs[0]], config)
        mixed = ParallelSweepExecutor(2, cache=RunCache(tmp_path))
        curves = mixed.run_sweep(programs,
                                 {"Disk-only": DiskOnlyPolicy}, specs,
                                 config)
        assert mixed.cache_hits == 1
        assert mixed.live_runs == len(specs) - 1
        assert [p.latency for p in curves["Disk-only"]] == \
            [s.latency for s in specs]


class TestJobPayloadSize:
    """SweepJob pickles must not scale with trace length."""

    BYTE_BUDGET = 4096

    def _job_bytes(self, trace, config):
        import pickle

        from repro.core.profile import profile_from_trace
        from repro.experiments.figures import FlexFetchFactory
        from repro.experiments.parallel import _prepare_factory
        spec = ProgramSpec(trace).prepared()
        ref = ProgramRef.of(spec)
        stage_payload(ref.digest, spec.trace)
        factory = _prepare_factory(FlexFetchFactory(
            profile=profile_from_trace(trace), loss_rate=0.25,
            stage_length=40.0))
        job = SweepJob(index=0, curve="FlexFetch", programs=(ref,),
                       policy_factory=factory,
                       wnic_spec=config.wnic_spec, config=config)
        return len(pickle.dumps(job))

    def test_fig3_cell_job_stays_under_byte_budget(self, config):
        from repro.traces.synth import generate_thunderbird
        size = self._job_bytes(generate_thunderbird(config.seed), config)
        assert size < self.BYTE_BUDGET, \
            f"fig3 SweepJob pickles to {size} B (> {self.BYTE_BUDGET})"

    def test_job_size_independent_of_trace_length(self, config):
        from repro.traces.synth import generate_thunderbird
        tiny = self._job_bytes(small_trace(), config)
        big = self._job_bytes(generate_thunderbird(config.seed), config)
        # 2908 records vs 8 — the pickles differ only in digest noise.
        assert abs(big - tiny) < 128, (tiny, big)


class TestWorkerClamp:
    """workers > pending cells must not spawn idle processes."""

    def test_pool_clamped_to_pending_cells(self, config, programs):
        lines = []
        executor = ParallelSweepExecutor(8)
        specs = config.latency_points()          # 2 points x 1 policy
        executor.run_sweep(programs, {"Disk-only": DiskOnlyPolicy},
                           specs, config, progress=lines.append)
        assert any("clamped 8 -> 2" in line for line in lines)

    def test_single_pending_cell_falls_back_to_serial(self, config,
                                                      programs):
        lines = []
        executor = ParallelSweepExecutor(4)
        executor.run_sweep(programs, {"Disk-only": DiskOnlyPolicy},
                           [config.wnic_spec], config,
                           progress=lines.append)
        assert any("running serially" in line for line in lines)
        assert executor.live_runs == 1

    def test_clamped_run_is_bit_identical_to_serial(self, config,
                                                    programs):
        facts = policies(programs.specs[0].trace)
        serial = ParallelSweepExecutor(1).run_sweep(
            programs, facts, [config.wnic_spec], config)
        clamped = ParallelSweepExecutor(16).run_sweep(
            programs, facts, [config.wnic_spec], config)
        assert clamped == serial
