"""Unit tests for table builders and report rendering."""

import pytest

from repro.experiments.report import render_figure, render_table, sweep_to_csv
from repro.experiments.runner import SweepPoint
from repro.experiments.tables import table1, table2, table3


class TestTable1:
    def test_values_match_paper(self):
        t = table1()
        values = {row[0]: row[2] for row in t.rows}
        assert values["P_active"] == "2.0W"
        assert values["P_idle"] == "1.6W"
        assert values["P_standby"] == "0.15W"
        assert values["E_spinup"] == "5.0J"
        assert values["E_spindown"] == "2.94J"
        assert values["T_spinup"] == "1.6sec"
        assert values["T_spindown"] == "2.3sec"


class TestTable2:
    def test_values_match_paper(self):
        t = table2()
        values = dict(t.rows)
        assert values["PSM (idle/recv/send)"] == "0.39W / 1.42W / 2.48W"
        assert values["CAM (idle/recv/send)"] == "1.41W / 2.61W / 3.69W"
        assert values["CAM to PSM (Delay/Energy)"] == "0.41sec / 0.53J"
        assert values["PSM to CAM (Delay/Energy)"] == "0.40sec / 0.51J"


class TestTable3:
    def test_rows_match_reference(self):
        t = table3(seed=7)
        for row in t.rows:
            name, _desc, files, mb, ref_files, ref_mb = row
            assert files == ref_files, name
            assert float(mb) == pytest.approx(float(ref_mb), abs=0.05)

    def test_all_six_apps_present(self):
        names = {row[0] for row in table3(seed=7).rows}
        assert names == {"thunderbird", "make", "grep", "xmms",
                         "mplayer", "acroread"}


class TestRendering:
    def test_render_table(self):
        text = render_table(table1())
        assert "Hitachi" in text
        assert "2.0W" in text
        # header + separator + 7 rows
        assert len(text.splitlines()) == 10

    def test_render_figure_and_csv(self):
        from repro.core.simulator import RunResult
        from repro.experiments.figures import FigureResult

        def result(energy):
            return RunResult(
                policy="P", end_time=10.0, foreground_time=10.0,
                disk_energy=energy / 2, wnic_energy=energy / 2,
                requests=1, device_requests={}, device_bytes={},
                cache_hit_ratio=0.0, disk_spinups=0, disk_spindowns=0,
                wnic_wakeups=0)

        points = [SweepPoint(policy="P", latency=l, bandwidth_bps=1e6,
                             result=result(100.0 + i))
                  for i, l in enumerate((0.0, 0.01))]
        fig = FigureResult(figure_id="figX", title="demo",
                           workload="w", by_latency={"P": points})
        text = render_figure(fig)
        assert "figX" in text
        assert "latency(ms)" in text
        assert "100.0" in text and "101.0" in text

        csv = sweep_to_csv({"P": points})
        lines = csv.strip().splitlines()
        assert lines[0] == "policy,latency_ms,bandwidth_mbps,energy_j,time_s"
        assert len(lines) == 3
