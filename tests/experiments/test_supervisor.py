"""Tests for the supervised worker pool and its retry policy."""

import time

import pytest

from repro.experiments.supervisor import (
    NO_RETRY,
    CellTimeoutError,
    RetryPolicy,
    SupervisedPool,
    WorkerCrashError,
)
from repro.faults.chaos import ChaosInjector, ChaosSpec

#: Small backoff for tests that exercise retries without real waiting.
FAST_RETRY = RetryPolicy(max_retries=2, backoff_base=0.01,
                         jitter_frac=0.0)


def _double(job):
    return job * 2


def _boom(job):
    raise ValueError(f"boom on {job}")


def _sleepy(job):
    time.sleep(job)
    return job


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.delay(7, 3, 1) == policy.delay(7, 3, 1)

    def test_delay_doubles_per_attempt(self):
        policy = RetryPolicy(backoff_base=1.0, jitter_frac=0.0)
        assert policy.delay(0, 0, 1) == 1.0
        assert policy.delay(0, 0, 2) == 2.0
        assert policy.delay(0, 0, 3) == 4.0

    def test_delay_is_capped(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=3.0,
                             jitter_frac=0.0)
        assert policy.delay(0, 0, 10) == 3.0

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(backoff_base=1.0, jitter_frac=0.25)
        for index in range(20):
            delay = policy.delay(7, index, 1)
            assert 1.0 <= delay <= 1.25

    def test_jitter_decorrelated_across_cells(self):
        policy = RetryPolicy(backoff_base=1.0, jitter_frac=0.5)
        delays = {policy.delay(7, index, 1) for index in range(10)}
        assert len(delays) > 1

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"backoff_base": -0.1},
        {"backoff_cap": -1.0},
        {"jitter_frac": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_no_retry_fails_first_attempt(self):
        assert NO_RETRY.max_retries == 0


class TestSupervisedPool:
    def test_empty_jobs(self):
        assert SupervisedPool(2, _double).run({}) == ({}, [])

    def test_all_results_by_index(self):
        pool = SupervisedPool(3, _double)
        results, failures = pool.run({i: i for i in range(8)})
        assert failures == []
        assert results == {i: i * 2 for i in range(8)}
        assert pool.respawns == 0

    def test_exception_fails_cell_without_retry(self):
        pool = SupervisedPool(2, _boom)
        results, failures = pool.run({0: "a", 1: "b"})
        assert results == {}
        assert [f.index for f in failures] == [0, 1]
        for failure in failures:
            assert len(failure.attempts) == 1
            assert failure.attempts[0].reason == "exception"
            assert isinstance(failure.cause, ValueError)
            assert "boom on" in failure.remote_traceback
            assert "ValueError" in failure.remote_traceback

    def test_exception_retries_then_fails(self):
        pool = SupervisedPool(1, _boom, retry=FAST_RETRY)
        _, failures = pool.run({0: "x"})
        assert len(failures) == 1
        assert len(failures[0].attempts) == 3   # initial + 2 retries
        assert pool.retries["exception"] == 2
        assert [a.attempt for a in failures[0].attempts] == [1, 2, 3]
        # Only retried attempts carry a backoff delay.
        assert all(a.delay > 0 for a in failures[0].attempts[:-1])
        assert failures[0].attempts[-1].delay == 0.0

    def test_killed_worker_is_respawned_and_cell_retried(self):
        chaos = ChaosInjector(ChaosSpec(kill_prob=1.0), seed=7)
        pool = SupervisedPool(2, _double, retry=FAST_RETRY, seed=7,
                              chaos=chaos)
        results, failures = pool.run({i: i for i in range(4)})
        assert failures == []
        assert results == {i: i * 2 for i in range(4)}
        assert pool.retries["worker-died"] == 4
        assert pool.respawns >= 4

    def test_worker_death_without_retry_is_a_failure(self):
        chaos = ChaosInjector(ChaosSpec(kill_prob=1.0), seed=7)
        pool = SupervisedPool(1, _double, seed=7, chaos=chaos)
        results, failures = pool.run({0: 1})
        assert results == {}
        assert len(failures) == 1
        assert failures[0].attempts[0].reason == "worker-died"
        assert isinstance(failures[0].cause, WorkerCrashError)

    def test_hung_cell_times_out_and_fails(self):
        pool = SupervisedPool(1, _sleepy, timeout=0.3)
        results, failures = pool.run({0: 30.0})
        assert results == {}
        assert len(failures) == 1
        assert failures[0].attempts[0].reason == "timeout"
        assert isinstance(failures[0].cause, CellTimeoutError)
        assert pool.respawns == 1

    def test_hang_then_clean_retry_succeeds(self):
        # Chaos hangs only attempt 1 (max_hit_attempts=1); the retried
        # attempt runs clean and completes within the timeout.
        chaos = ChaosInjector(ChaosSpec(hang_prob=1.0, hang_seconds=30.0),
                              seed=7)
        pool = SupervisedPool(2, _double, retry=FAST_RETRY, timeout=0.5,
                              seed=7, chaos=chaos)
        results, failures = pool.run({i: i for i in range(3)})
        assert failures == []
        assert results == {i: i * 2 for i in range(3)}
        assert pool.retries["timeout"] == 3
        assert pool.respawns >= 3

    def test_mixed_healthy_and_failing_cells(self):
        def flaky(job):
            if job < 0:
                raise ValueError(f"boom on {job}")
            return job * 2

        pool = SupervisedPool(2, flaky)
        results, failures = pool.run({0: 5, 1: -1, 2: 7})
        assert results == {0: 10, 2: 14}
        assert [f.index for f in failures] == [1]

    def test_on_hooks_fire(self):
        starts, retries, done = [], [], []
        chaos = ChaosInjector(ChaosSpec(kill_prob=1.0), seed=7)
        pool = SupervisedPool(1, _double, retry=FAST_RETRY, seed=7,
                              chaos=chaos,
                              on_start=lambda i, a: starts.append((i, a)),
                              on_retry=lambda i, r: retries.append(r),
                              on_result=lambda i, r: done.append((i, r)))
        pool.run({0: 3})
        assert starts == [(0, 1), (0, 2)]
        assert [r.reason for r in retries] == ["worker-died"]
        assert done == [(0, 6)]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            SupervisedPool(0, _double)
        with pytest.raises(ValueError):
            SupervisedPool(1, _double, timeout=0.0)
