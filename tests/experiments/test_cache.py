"""Unit tests for the content-addressed run cache."""

import os
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.simulator import ProgramSpec
from repro.experiments.cache import (
    RunCache,
    RunCacheCorruptionWarning,
    UncacheableFactoryError,
    policy_token,
    run_key,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import ParallelSweepExecutor
from repro.experiments.runner import ProgramSet, run_point
from repro.faults.schedule import FaultSchedule, FaultSpec
from tests.conftest import make_trace


def small_trace(name="cached"):
    calls = [(1, i * 65536, 65536, "read", i * 2.0) for i in range(6)]
    return make_trace(calls, name=name, file_sizes={1: 6 * 65536})


@pytest.fixture
def config():
    return ExperimentConfig(seed=3,
                            latency_sweep=(0.0, 0.010),
                            bandwidth_sweep_bps=(11e6 / 8,))


@pytest.fixture
def programs():
    return (ProgramSpec(small_trace()).prepared(),)


class TestRunKey:
    def test_stable_across_equal_inputs(self, config, programs):
        # A different Trace object with equal content compiles to the
        # same digest, hence the same key.
        rebuilt = (ProgramSpec(small_trace()).prepared(),)
        assert run_key(programs, DiskOnlyPolicy, config.wnic_spec,
                       config) == \
            run_key(rebuilt, DiskOnlyPolicy, config.wnic_spec, config)

    @pytest.mark.parametrize("perturb", [
        lambda c: replace(c, seed=8),
        lambda c: replace(c, memory_bytes=c.memory_bytes // 2),
        lambda c: replace(c, disk_spec=replace(
            c.disk_spec, idle_power=c.disk_spec.idle_power + 1e-12)),
    ])
    def test_config_perturbations_change_key(self, config, programs,
                                             perturb):
        base = run_key(programs, DiskOnlyPolicy, config.wnic_spec, config)
        assert run_key(programs, DiskOnlyPolicy, config.wnic_spec,
                       perturb(config)) != base

    def test_wnic_spec_changes_key(self, config, programs):
        base = run_key(programs, DiskOnlyPolicy, config.wnic_spec, config)
        slower = replace(config.wnic_spec,
                         latency=config.wnic_spec.latency + 0.019)
        assert run_key(programs, DiskOnlyPolicy, slower, config) != base

    def test_policy_changes_key(self, config, programs):
        assert run_key(programs, DiskOnlyPolicy, config.wnic_spec,
                       config) != \
            run_key(programs, WnicOnlyPolicy, config.wnic_spec, config)

    def test_trace_contents_change_key(self, config, programs):
        other = (ProgramSpec(make_trace(
            [(1, 0, 65536, "read", 0.0)], name="cached",
            file_sizes={1: 65536})).prepared(),)
        assert run_key(programs, DiskOnlyPolicy, config.wnic_spec,
                       config) != \
            run_key(other, DiskOnlyPolicy, config.wnic_spec, config)

    def test_salt_changes_key(self, config, programs):
        assert run_key(programs, DiskOnlyPolicy, config.wnic_spec,
                       config, salt="v1") != \
            run_key(programs, DiskOnlyPolicy, config.wnic_spec,
                    config, salt="v2")

    def test_fault_spec_changes_key(self, config, programs):
        """Regression: a --faults run must never hit a no-fault row."""
        base = run_key(programs, DiskOnlyPolicy, config.wnic_spec, config)
        spec = FaultSpec(outage_rate=0.01)
        faulted = run_key(programs, DiskOnlyPolicy, config.wnic_spec,
                          config, faults=spec)
        assert faulted != base
        other = run_key(programs, DiskOnlyPolicy, config.wnic_spec,
                        config, faults=FaultSpec(outage_rate=0.02))
        assert other not in (base, faulted)

    def test_fault_schedule_keys_on_spec_and_seed(self, config, programs):
        spec = FaultSpec(outage_rate=0.01)
        as_schedule = run_key(
            programs, DiskOnlyPolicy, config.wnic_spec, config,
            faults=FaultSchedule(spec, seed=config.seed))
        rebuilt = run_key(
            programs, DiskOnlyPolicy, config.wnic_spec, config,
            faults=FaultSchedule(spec, seed=config.seed))
        assert as_schedule == rebuilt
        reseeded = run_key(
            programs, DiskOnlyPolicy, config.wnic_spec, config,
            faults=FaultSchedule(spec, seed=config.seed + 1))
        assert reseeded != as_schedule

    def test_spindown_changes_key(self, config, programs):
        base = run_key(programs, DiskOnlyPolicy, config.wnic_spec, config)
        assert run_key(programs, DiskOnlyPolicy, config.wnic_spec,
                       config, spindown={"timeout": 2.0}) != base

    def test_unpicklable_closure_factory_rejected(self, config, programs):
        with pytest.raises(UncacheableFactoryError):
            run_key(programs, lambda: DiskOnlyPolicy(),
                    config.wnic_spec, config)

    def test_policy_token_of_class(self):
        assert policy_token(DiskOnlyPolicy) == {
            "__policy_class__": "DiskOnlyPolicy"}


class TestRunCache:
    def _point(self, config, programs):
        return run_point(ProgramSet(programs), DiskOnlyPolicy,
                         config.wnic_spec, config)

    def test_miss_then_hit_round_trip(self, tmp_path, config, programs):
        cache = RunCache(tmp_path)
        key = cache.key_for(programs, DiskOnlyPolicy, config.wnic_spec,
                            config)
        assert cache.get(key) is None
        point = self._point(config, programs)
        cache.put(key, point.result)
        cached = cache.get(key)
        assert cached == point.result
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_salt_invalidates_previous_entries(self, tmp_path, config,
                                               programs):
        old = RunCache(tmp_path, salt="code-v1")
        point = self._point(config, programs)
        old.put(old.key_for(programs, DiskOnlyPolicy, config.wnic_spec,
                            config), point.result)
        new = RunCache(tmp_path, salt="code-v2")
        assert new.get(new.key_for(programs, DiskOnlyPolicy,
                                   config.wnic_spec, config)) is None

    @pytest.mark.parametrize("payload", [
        "not json {",
        "{}",
        '{"result": {"policy": "Disk-only"}}',
        '{"result": null}',
    ])
    def test_corrupted_entry_is_a_miss(self, tmp_path, config, programs,
                                       payload):
        cache = RunCache(tmp_path)
        key = cache.key_for(programs, DiskOnlyPolicy, config.wnic_spec,
                            config)
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_text(payload, encoding="utf-8")
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_corrupted_entry_falls_back_to_live_run(self, tmp_path,
                                                    config, programs):
        """A trashed cache file must not poison a sweep."""
        cache = RunCache(tmp_path)
        executor = ParallelSweepExecutor(1, cache=cache)
        curves = executor.run_sweep(
            ProgramSet(programs), {"Disk-only": DiskOnlyPolicy},
            [config.wnic_spec], config)
        key = cache.key_for(programs, DiskOnlyPolicy, config.wnic_spec,
                            config)
        cache.path_for(key).write_text("garbage", encoding="utf-8")
        again = ParallelSweepExecutor(1, cache=RunCache(tmp_path))
        repaired = again.run_sweep(
            ProgramSet(programs), {"Disk-only": DiskOnlyPolicy},
            [config.wnic_spec], config)
        assert again.live_runs == 1 and again.cache_hits == 0
        assert repaired == curves
        # The live run re-wrote the entry; a third pass hits it.
        third = ParallelSweepExecutor(1, cache=RunCache(tmp_path))
        assert third.run_sweep(
            ProgramSet(programs), {"Disk-only": DiskOnlyPolicy},
            [config.wnic_spec], config) == curves
        assert third.live_runs == 0 and third.cache_hits == 1

    def test_faulted_sweep_never_hits_unfaulted_rows(self, tmp_path,
                                                     config, programs):
        """The stale-cache bug, end to end: warm a fault-free cache,
        then run the same cell with faults — it must simulate live."""
        warm = ParallelSweepExecutor(1, cache=RunCache(tmp_path))
        warm.run_sweep(ProgramSet(programs),
                       {"Disk-only": DiskOnlyPolicy},
                       [config.wnic_spec], config)
        faulted = ParallelSweepExecutor(1, cache=RunCache(tmp_path))
        faulted.run_sweep(ProgramSet(programs),
                          {"Disk-only": DiskOnlyPolicy},
                          [config.wnic_spec], config,
                          faults=FaultSpec(outage_rate=0.05,
                                           outage_mean=5.0))
        assert (faulted.cache_hits, faulted.live_runs) == (0, 1)

    def test_put_tmp_names_are_unique_per_call(self, tmp_path, config,
                                               programs, monkeypatch):
        """Regression: ``put`` once used a fixed ``<key>.tmp`` name, so
        two sweeps sharing a cache dir could interleave bytes into the
        same tmp file before the atomic replace."""
        seen: list[str] = []
        real_replace = Path.replace

        def spy(self, target):
            seen.append(self.name)
            return real_replace(self, target)

        monkeypatch.setattr(Path, "replace", spy)
        cache = RunCache(tmp_path)
        key = cache.key_for(programs, DiskOnlyPolicy, config.wnic_spec,
                            config)
        result = self._point(config, programs).result
        cache.put(key, result)
        cache.put(key, result)
        assert len(set(seen)) == 2          # never the same tmp path
        assert all(f".{os.getpid()}." in name for name in seen)

    def test_put_leaves_no_tmp_files(self, tmp_path, config, programs):
        cache = RunCache(tmp_path)
        key = cache.key_for(programs, DiskOnlyPolicy, config.wnic_spec,
                            config)
        cache.put(key, self._point(config, programs).result)
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.get(key) is not None

    def test_corrupt_rows_counted_and_warned_once(self, tmp_path, config,
                                                  programs):
        cache = RunCache(tmp_path)
        key = cache.key_for(programs, DiskOnlyPolicy, config.wnic_spec,
                            config)
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_text("garbage", encoding="utf-8")
        with pytest.warns(RunCacheCorruptionWarning):
            assert cache.get(key) is None
        assert cache.corrupt_rows == 1
        # Subsequent corrupt reads count but do not warn again.
        import warnings as warnings_mod
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            assert cache.get(key) is None
        assert cache.corrupt_rows == 2
        assert not any(issubclass(w.category, RunCacheCorruptionWarning)
                       for w in caught)

    def test_missing_entry_is_not_a_corrupt_row(self, tmp_path, config,
                                                programs):
        cache = RunCache(tmp_path)
        key = cache.key_for(programs, DiskOnlyPolicy, config.wnic_spec,
                            config)
        assert cache.get(key) is None
        assert cache.corrupt_rows == 0

    def test_cached_result_is_bit_identical(self, tmp_path, config,
                                            programs):
        cache = RunCache(tmp_path)
        executor = ParallelSweepExecutor(1, cache=cache)
        live = executor.run_sweep(
            ProgramSet(programs), {"Disk-only": DiskOnlyPolicy},
            [config.wnic_spec], config)
        warm = ParallelSweepExecutor(1, cache=RunCache(tmp_path))
        cached = warm.run_sweep(
            ProgramSet(programs), {"Disk-only": DiskOnlyPolicy},
            [config.wnic_spec], config)
        (a,), (b,) = live["Disk-only"], cached["Disk-only"]
        assert a.result == b.result
        assert a.energy == b.energy          # exact, not approx
        assert a.result.end_time == b.result.end_time


class TestUncompiledTraces:
    """Since salt v3 the cache keys on compiled digests only."""

    def test_record_level_trace_raises_typed_error(self, config):
        from repro.experiments.cache import UncompiledTraceError
        raw = (ProgramSpec(small_trace()),)
        with pytest.raises(UncompiledTraceError,
                           match="compile it first"):
            run_key(raw, DiskOnlyPolicy, config.wnic_spec, config)

    def test_key_for_raises_the_same_error(self, tmp_path, config):
        from repro.experiments.cache import UncompiledTraceError
        cache = RunCache(tmp_path)
        with pytest.raises(UncompiledTraceError):
            cache.key_for((ProgramSpec(small_trace()),), DiskOnlyPolicy,
                          config.wnic_spec, config)

    def test_error_is_a_type_error(self):
        from repro.experiments.cache import UncompiledTraceError
        assert issubclass(UncompiledTraceError, TypeError)

    def test_prepared_and_freshly_compiled_key_identically(self, config):
        from repro.traces.compile import compile_trace
        via_spec = (ProgramSpec(small_trace()).prepared(),)
        via_compile = (ProgramSpec(compile_trace(small_trace())),)
        assert run_key(via_spec, DiskOnlyPolicy, config.wnic_spec,
                       config) == \
            run_key(via_compile, DiskOnlyPolicy, config.wnic_spec,
                    config)


class TestPayloadDigest:
    def test_stable_for_equal_profiles(self):
        from repro.core.profile import profile_from_trace
        from repro.experiments.cache import payload_digest
        a = payload_digest(profile_from_trace(small_trace()))
        b = payload_digest(profile_from_trace(small_trace()))
        assert a == b
        assert len(a) == 64

    def test_differs_for_different_profiles(self):
        from repro.core.profile import profile_from_trace
        from repro.experiments.cache import payload_digest
        other = make_trace([(1, 0, 65536, "read", 0.0)],
                           name="cached", file_sizes={1: 65536})
        assert payload_digest(profile_from_trace(small_trace())) != \
            payload_digest(profile_from_trace(other))

    def test_prepared_factory_keys_like_unprepared(self, config):
        """Shipping a factory by digest must not change cache keys."""
        from repro.core.profile import profile_from_trace
        from repro.experiments.cache import policy_token
        from repro.experiments.figures import FlexFetchFactory
        from repro.experiments.parallel import _prepare_factory
        factory = FlexFetchFactory(
            profile=profile_from_trace(small_trace()),
            loss_rate=0.25, stage_length=40.0)
        assert policy_token(_prepare_factory(factory)) == \
            policy_token(factory)
