"""Chaos suite for the sweep orchestration layer.

Injects real failures — SIGKILLed workers, stalled cells, damaged cache
rows, a parent process killed mid-sweep — and proves the supervised
executor still produces grids bit-identical to a fault-free serial run.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.simulator import ProgramSpec
from repro.experiments.cache import RunCache, RunCacheCorruptionWarning
from repro.experiments.config import ExperimentConfig
from repro.experiments.journal import SweepJournal, load_journal
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    failure_manifest,
    is_placeholder,
    placeholder_result,
)
from repro.experiments.runner import ProgramSet
from repro.experiments.supervisor import RetryPolicy
from repro.faults.chaos import CacheChaos, ChaosInjector, ChaosSpec
from repro.faults.schedule import FaultSpecError
from tests.conftest import make_trace

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Cheap backoff so chaos retries don't slow the suite down.
FAST_RETRY = RetryPolicy(max_retries=2, backoff_base=0.01,
                         jitter_frac=0.0)


def small_trace():
    calls = [(1, i * 65536, 65536, "read", i * 1.5) for i in range(8)]
    return make_trace(calls, name="chaos", file_sizes={1: 8 * 65536})


def make_grid():
    """The 4-cell sweep every chaos scenario runs (2 policies x 2 specs)."""
    config = ExperimentConfig(seed=3,
                              latency_sweep=(0.0, 0.010),
                              bandwidth_sweep_bps=(11e6 / 8,))
    programs = ProgramSet((ProgramSpec(small_trace()),))
    factories = {"Disk-only": DiskOnlyPolicy, "WNIC-only": WnicOnlyPolicy}
    return programs, factories, config.latency_points(), config


@pytest.fixture(scope="module")
def golden():
    programs, factories, specs, config = make_grid()
    return ParallelSweepExecutor(1).run_sweep(programs, factories, specs,
                                              config)


def artifacts_dir(tmp_path):
    """Where chaos runs drop their manifests (CI uploads these)."""
    root = os.environ.get("CHAOS_ARTIFACTS_DIR")
    if root:
        path = Path(root)
        path.mkdir(parents=True, exist_ok=True)
        return path
    return tmp_path


class TestChaosSpec:
    def test_parse(self):
        spec = ChaosSpec.parse("kill-prob=0.5,hang-prob=0.25,"
                               "hang-seconds=2,max-hit-attempts=3")
        assert spec.kill_prob == 0.5
        assert spec.hang_prob == 0.25
        assert spec.hang_seconds == 2.0
        assert spec.max_hit_attempts == 3

    def test_parse_empty_is_inert(self):
        assert not ChaosSpec.parse("").enabled

    @pytest.mark.parametrize("text", [
        "bogus=1", "kill-prob", "kill-prob=fast",
    ])
    def test_parse_rejects_bad_input(self, text):
        with pytest.raises(FaultSpecError):
            ChaosSpec.parse(text)

    @pytest.mark.parametrize("kwargs", [
        {"kill_prob": 1.5},
        {"kill_prob": 0.6, "hang_prob": 0.6},
        {"corrupt_prob": 0.6, "truncate_prob": 0.6},
        {"hang_seconds": 0.0},
        {"max_hit_attempts": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(FaultSpecError):
            ChaosSpec(**kwargs)


class TestInjectorDecisions:
    def test_decisions_are_deterministic(self):
        spec = ChaosSpec(kill_prob=0.5, hang_prob=0.3)
        a = ChaosInjector(spec, seed=7)
        b = ChaosInjector(spec, seed=7)
        plans = [(a.action_for(i, 1), b.action_for(i, 1))
                 for i in range(50)]
        assert all(x == y for x, y in plans)
        assert {x for x, _ in plans} == {"kill", "hang", None}

    def test_attempts_above_cap_run_clean(self):
        injector = ChaosInjector(ChaosSpec(kill_prob=1.0), seed=7)
        assert injector.action_for(0, 1) == "kill"
        assert injector.action_for(0, 2) is None

    def test_cache_damage_actions(self, tmp_path):
        chaos = CacheChaos(ChaosSpec(corrupt_prob=1.0), seed=7)
        row = tmp_path / "row.json"
        row.write_text("{\"ok\": true}")
        assert chaos.damage(row, 0) == "corrupt"
        assert row.read_bytes().startswith(b"\x00chaos")
        assert chaos.injected["corrupt"] == 1

        trunc = CacheChaos(ChaosSpec(truncate_prob=1.0), seed=7)
        row.write_text("x" * 100)
        assert trunc.damage(row, 0) == "truncate"
        assert len(row.read_bytes()) == 50


class TestPlaceholders:
    def test_placeholder_is_detectable_and_inert(self):
        row = placeholder_result("Disk-only")
        assert is_placeholder(row)
        assert row.total_energy != row.total_energy   # NaN propagates

    def test_real_results_are_not_placeholders(self, golden):
        for curve in golden.values():
            assert not any(is_placeholder(p.result) for p in curve)


class TestKillChaos:
    def test_sigkilled_workers_leave_grid_golden(self, golden):
        programs, factories, specs, config = make_grid()
        executor = ParallelSweepExecutor(
            2, retry=FAST_RETRY, chaos=ChaosSpec(kill_prob=1.0))
        got = executor.run_sweep(programs, factories, specs, config)
        assert got == golden
        assert executor.retries["worker-died"] == 4
        assert executor.respawns >= 4

    def test_partial_kill_probability_still_golden(self, golden):
        programs, factories, specs, config = make_grid()
        executor = ParallelSweepExecutor(
            2, retry=FAST_RETRY, chaos=ChaosSpec(kill_prob=0.5))
        got = executor.run_sweep(programs, factories, specs, config)
        assert got == golden
        assert executor.retries["worker-died"] == \
            sum(1 for i in range(4)
                if ChaosInjector(ChaosSpec(kill_prob=0.5),
                                 config.seed).action_for(i, 1) == "kill")


class TestHangChaos:
    def test_hung_cells_time_out_and_grid_stays_golden(self, golden):
        programs, factories, specs, config = make_grid()
        executor = ParallelSweepExecutor(
            2, retry=FAST_RETRY, timeout=2.0,
            chaos=ChaosSpec(hang_prob=1.0, hang_seconds=30.0))
        got = executor.run_sweep(programs, factories, specs, config)
        assert got == golden
        assert executor.retries["timeout"] == 4
        assert executor.respawns >= 4


class TestCacheChaosSweep:
    def test_damaged_rows_are_detected_and_resimulated(self, tmp_path,
                                                       golden):
        programs, factories, specs, config = make_grid()
        # Every stored row is damaged (corrupt or truncated) after the
        # cold sweep persists it.
        cold = ParallelSweepExecutor(
            1, cache=RunCache(tmp_path),
            chaos=ChaosSpec(corrupt_prob=0.5, truncate_prob=0.5))
        assert cold.run_sweep(programs, factories, specs, config) == golden
        assert cold.cache_chaos is not None
        assert sum(cold.cache_chaos.injected.values()) == 4

        warm_cache = RunCache(tmp_path)
        warm = ParallelSweepExecutor(1, cache=warm_cache)
        with pytest.warns(RunCacheCorruptionWarning):
            got = warm.run_sweep(programs, factories, specs, config)
        assert got == golden
        assert warm_cache.corrupt_rows == 4
        assert warm.live_runs == 4 and warm.cache_hits == 0

        # The warm sweep re-wrote intact rows; a third pass hits them.
        third = ParallelSweepExecutor(1, cache=RunCache(tmp_path))
        assert third.run_sweep(programs, factories, specs,
                               config) == golden
        assert third.cache_hits == 4 and third.live_runs == 0

    def test_corruption_warning_fires_once_per_cache(self, tmp_path,
                                                     golden):
        import warnings as warnings_mod
        programs, factories, specs, config = make_grid()
        cold = ParallelSweepExecutor(
            1, cache=RunCache(tmp_path), chaos=ChaosSpec(corrupt_prob=1.0))
        cold.run_sweep(programs, factories, specs, config)
        warm = ParallelSweepExecutor(1, cache=RunCache(tmp_path))
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            warm.run_sweep(programs, factories, specs, config)
        hits = [w for w in caught
                if issubclass(w.category, RunCacheCorruptionWarning)]
        assert len(hits) == 1   # once per cache instance, not per row


class TestPartialMode:
    def test_exhausted_cells_become_placeholders(self, tmp_path, golden):
        programs, factories, specs, config = make_grid()
        executor = ParallelSweepExecutor(
            2, partial=True,
            chaos=ChaosSpec(kill_prob=1.0, max_hit_attempts=9))
        got = executor.run_sweep(programs, factories, specs, config)
        assert len(executor.failures) == 4
        for curve in got.values():
            assert all(is_placeholder(p.result) for p in curve)
        # Grid shape survives: same curves, same sweep order.
        assert {name: [p.latency for p in points]
                for name, points in got.items()} == \
            {name: [p.latency for p in points]
             for name, points in golden.items()}

        manifest = failure_manifest(executor.failures)
        out = artifacts_dir(tmp_path) / "kill-all-manifest.json"
        out.write_text(json.dumps(manifest, indent=1, sort_keys=True))
        assert manifest["version"] == 1
        assert manifest["failed_cells"] == 4
        for entry in manifest["failures"]:
            assert entry["attempts"][0]["reason"] == "worker-died"

    def test_partial_mode_keeps_healthy_cells(self):
        class Boom:
            def __call__(self):
                raise RuntimeError("boom in worker")

        programs, _, specs, config = make_grid()
        factories = {"Disk-only": DiskOnlyPolicy, "Boom": Boom()}
        executor = ParallelSweepExecutor(1, partial=True)
        got = executor.run_sweep(programs, factories, specs, config)
        assert [is_placeholder(p.result) for p in got["Boom"]] == \
            [True, True]
        assert not any(is_placeholder(p.result)
                       for p in got["Disk-only"])
        assert len(executor.failures) == 2
        assert "boom in worker" in \
            executor.failures[0].attempts[-1].traceback


_CHILD_SCRIPT = textwrap.dedent("""\
    import os, signal, sys

    from repro.experiments.journal import SweepJournal
    from repro.experiments.parallel import ParallelSweepExecutor
    from tests.experiments.test_chaos import make_grid

    programs, factories, specs, config = make_grid()
    completions = 0

    def progress(line):
        global completions
        completions += 1
        if completions == 2:
            # Die the hard way, mid-sweep, with the journal file open.
            os.kill(os.getpid(), signal.SIGKILL)

    executor = ParallelSweepExecutor(
        1, journal=SweepJournal(sys.argv[1]))
    executor.run_sweep(programs, factories, specs, config,
                       progress=progress)
""")


class TestParentKillAndResume:
    def test_resume_after_parent_sigkill_reproduces_golden(self, tmp_path,
                                                           golden):
        journal_path = tmp_path / "interrupted.jsonl"
        script = tmp_path / "killed_sweep.py"
        script.write_text(_CHILD_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT)])
        proc = subprocess.run(
            [sys.executable, str(script), str(journal_path)],
            cwd=REPO_ROOT, env=env, capture_output=True, timeout=120)
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

        replay = load_journal(journal_path)
        completed = len(replay.completed)
        assert completed >= 2   # both acknowledged cells survived fsync

        programs, factories, specs, config = make_grid()
        resumed = ParallelSweepExecutor(
            1, journal=SweepJournal(journal_path))
        got = resumed.run_sweep(programs, factories, specs, config)
        resumed.journal.close()
        assert got == golden
        assert resumed.journal_hits == completed
        assert resumed.live_runs == 4 - completed
