"""Paper-shape integration tests (§3.3).

These replay the five evaluation scenarios at representative link
settings and assert the *qualitative* results the paper reports:
orderings, crossovers, and adaptation wins.  They are the contract the
benchmark figures are expected to satisfy in full.

Each scenario's results are computed once per session (they take a few
seconds each) and shared across assertions.
"""

import pytest

from repro.core.bluefs import BlueFSPolicy
from repro.core.flexfetch import FlexFetchConfig, FlexFetchPolicy
from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.profile import profile_from_trace
from repro.core.simulator import ProgramSpec, ReplaySimulator
from repro.devices.specs import AIRONET_350
from repro.sim.clock import Mbps
from repro.traces.synth import (
    generate_acroread_profile_run,
    generate_acroread_search_run,
    generate_grep_make,
    generate_grep_make_xmms,
    generate_mplayer,
    generate_thunderbird,
)

SEED = 7


def run(trace_or_programs, policy, *, latency=1e-3, bandwidth_mbps=11.0):
    wnic = AIRONET_350.with_link(latency=latency,
                                 bandwidth_bps=Mbps(bandwidth_mbps))
    programs = (trace_or_programs
                if isinstance(trace_or_programs, list)
                else [ProgramSpec(trace_or_programs)])
    return ReplaySimulator(programs, policy, wnic_spec=wnic,
                           seed=SEED).run()


# ----------------------------------------------------------------------
# Figure 1 — grep+make
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig1():
    trace = generate_grep_make(SEED)
    profile = profile_from_trace(trace)
    out = {}
    for latency in (0.0, 0.040):
        out[latency] = {
            "disk": run(trace, DiskOnlyPolicy(), latency=latency),
            "wnic": run(trace, WnicOnlyPolicy(), latency=latency),
            "bluefs": run(trace, BlueFSPolicy(), latency=latency),
            "ff": run(trace, FlexFetchPolicy(profile), latency=latency),
        }
    return out


class TestFigure1:
    def test_zero_latency_ordering(self, fig1):
        """Paper: FlexFetch < WNIC-only < Disk-only < BlueFS at 0 ms."""
        r = fig1[0.0]
        assert r["ff"].total_energy < r["wnic"].total_energy
        assert r["wnic"].total_energy < r["disk"].total_energy
        assert r["bluefs"].total_energy >= r["disk"].total_energy * 0.97

    def test_wnic_crosses_disk_with_latency(self, fig1):
        """Paper: WNIC-only increases with latency and exceeds
        Disk-only (in our traces the crossover sits near 35 ms; see
        EXPERIMENTS.md)."""
        assert fig1[0.040]["wnic"].total_energy > \
            fig1[0.040]["disk"].total_energy

    def test_flexfetch_approaches_disk_at_high_latency(self, fig1):
        """Paper: FlexFetch's curve gets 'increasingly close' to
        Disk-only as latency rises."""
        gap_low = fig1[0.0]["disk"].total_energy \
            - fig1[0.0]["ff"].total_energy
        gap_high = fig1[0.040]["disk"].total_energy \
            - fig1[0.040]["ff"].total_energy
        assert gap_high < gap_low
        assert fig1[0.040]["ff"].total_energy <= \
            fig1[0.040]["disk"].total_energy * 1.02

    def test_flexfetch_always_at_or_near_best(self, fig1):
        for latency, r in fig1.items():
            best = min(r["disk"].total_energy, r["wnic"].total_energy)
            assert r["ff"].total_energy <= best * 1.05, latency


# ----------------------------------------------------------------------
# Figure 2 — mplayer
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig2():
    trace = generate_mplayer(SEED)
    profile = profile_from_trace(trace)
    out = {"lat": {}, "bw": {}}
    out["lat"][1e-3] = {
        "disk": run(trace, DiskOnlyPolicy()),
        "wnic": run(trace, WnicOnlyPolicy()),
        "bluefs": run(trace, BlueFSPolicy()),
        "ff": run(trace, FlexFetchPolicy(profile)),
    }
    for bw in (1.0, 11.0):
        out["bw"][bw] = {
            "disk": run(trace, DiskOnlyPolicy(), bandwidth_mbps=bw),
            "wnic": run(trace, WnicOnlyPolicy(), bandwidth_mbps=bw),
            "ff": run(trace, FlexFetchPolicy(profile),
                      bandwidth_mbps=bw),
        }
    return out


class TestFigure2:
    def test_flexfetch_tracks_wnic_only(self, fig2):
        """Paper: 'the energy consumption for FlexFetch is almost the
        same as that for WNIC-only'."""
        r = fig2["lat"][1e-3]
        assert r["ff"].total_energy == pytest.approx(
            r["wnic"].total_energy, rel=0.05)

    def test_wnic_halves_disk_energy(self, fig2):
        r = fig2["lat"][1e-3]
        assert r["wnic"].total_energy < r["disk"].total_energy * 0.7

    def test_bluefs_above_disk_only(self, fig2):
        """Paper: 'its energy consumption is even higher than
        Disk-only'."""
        r = fig2["lat"][1e-3]
        assert r["bluefs"].total_energy > r["disk"].total_energy

    def test_low_bandwidth_switches_to_disk(self, fig2):
        """Paper: below 2 Mbps FlexFetch switches to the disk and saves
        'up to 45%' against WNIC-only."""
        r = fig2["bw"][1.0]
        assert r["ff"].total_energy == pytest.approx(
            r["disk"].total_energy, rel=0.05)
        assert r["ff"].total_energy < r["wnic"].total_energy * 0.65

    def test_high_bandwidth_stays_on_network(self, fig2):
        r = fig2["bw"][11.0]
        assert r["ff"].total_energy == pytest.approx(
            r["wnic"].total_energy, rel=0.05)


# ----------------------------------------------------------------------
# Figure 3 — thunderbird
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig3():
    trace = generate_thunderbird(SEED)
    profile = profile_from_trace(trace)
    out = {}
    for latency in (1e-3, 0.020):
        out[latency] = {
            "disk": run(trace, DiskOnlyPolicy(), latency=latency),
            "wnic": run(trace, WnicOnlyPolicy(), latency=latency),
            "bluefs": run(trace, BlueFSPolicy(), latency=latency),
            "ff": run(trace, FlexFetchPolicy(profile), latency=latency),
        }
    return out


class TestFigure3:
    def test_flexfetch_beats_bluefs(self, fig3):
        """Paper: 'FlexFetch consumes 17% less energy than BlueFS for
        most of WNIC latencies we examined'."""
        for latency, r in fig3.items():
            assert r["ff"].total_energy < r["bluefs"].total_energy * 0.95

    def test_wnic_crosses_disk_at_high_latency(self, fig3):
        """Paper: 'for WNIC with latency over 15 msec, WNIC-only
        consumes even more energy than Disk-only'."""
        low = fig3[1e-3]
        high = fig3[0.020]
        assert low["wnic"].total_energy < low["disk"].total_energy
        assert high["wnic"].total_energy > high["disk"].total_energy

    def test_flexfetch_latency_insensitive(self, fig3):
        """Paper: FlexFetch and BlueFS barely move with latency (small
        WNIC share)."""
        a = fig3[1e-3]["ff"].total_energy
        b = fig3[0.020]["ff"].total_energy
        assert abs(a - b) / a < 0.15


# ----------------------------------------------------------------------
# Figure 4 — forced spin-up
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig4():
    fg, bg = generate_grep_make_xmms(SEED)
    profile = profile_from_trace(fg)

    def programs():
        return [ProgramSpec(fg),
                ProgramSpec(bg, profiled=False, disk_pinned=True)]

    return {
        "disk": run(programs(), DiskOnlyPolicy()),
        "static": run(programs(), FlexFetchPolicy(
            profile, FlexFetchConfig(adaptive=False))),
        "ff": run(programs(), FlexFetchPolicy(profile)),
    }


class TestFigure4:
    def test_adaptive_beats_static(self, fig4):
        """Paper: 'FlexFetch substantially avoids the high energy cost
        with FlexFetch-static'."""
        assert fig4["ff"].total_energy < \
            fig4["static"].total_energy * 0.90

    def test_adaptive_rides_the_spun_up_disk(self, fig4):
        """With xmms pinning the disk up, FlexFetch converges on
        Disk-only behaviour (the disk is 'almost free')."""
        assert fig4["ff"].total_energy == pytest.approx(
            fig4["disk"].total_energy, rel=0.05)

    def test_static_wastes_the_wnic(self, fig4):
        assert fig4["static"].wnic_energy > fig4["ff"].wnic_energy * 1.5


# ----------------------------------------------------------------------
# Figure 5 — invalid profile
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig5():
    search = generate_acroread_search_run(SEED)
    stale = profile_from_trace(generate_acroread_profile_run(SEED))
    return {
        "disk": run(search, DiskOnlyPolicy()),
        "bluefs": run(search, BlueFSPolicy()),
        "static": run(search, FlexFetchPolicy(
            stale, FlexFetchConfig(adaptive=False))),
        "ff": run(search, FlexFetchPolicy(stale)),
    }


class TestFigure5:
    def test_adaptive_recovers_from_stale_profile(self, fig5):
        """Paper: FlexFetch consumes ~36% less than FlexFetch-static."""
        assert fig5["ff"].total_energy < fig5["static"].total_energy * 0.7

    def test_one_stage_penalty_vs_bluefs(self, fig5):
        """Paper: FlexFetch pays ~15% over BlueFS for the stage it
        spends discovering the profile is wrong."""
        ratio = fig5["ff"].total_energy / fig5["bluefs"].total_energy
        assert 1.0 < ratio < 1.35

    def test_static_follows_the_bad_profile(self, fig5):
        """The static variant stays on the WNIC the whole run."""
        assert fig5["static"].total_energy > \
            fig5["disk"].total_energy * 1.5
