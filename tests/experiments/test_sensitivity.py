"""Unit tests for the seed-sensitivity analysis."""

import pytest

from repro.experiments.sensitivity import (
    PolicyStats,
    analyze_scenario,
)
from tests.conftest import make_trace


def trace_factory(seed):
    """A deterministic-by-seed dense workload (disk-friendly).

    Big enough (~10 MB) that the disk's spin-up amortises; a small
    one-shot burst is legitimately cheaper over the network.
    """
    n = 80 + (seed % 3)
    calls = [(1, i * 131072, 131072, "read", i * 0.002)
             for i in range(n)]
    return make_trace(calls, name=f"t{seed}",
                      file_sizes={1: 96 * 131072})


class TestPolicyStats:
    def test_moments(self):
        s = PolicyStats(policy="p", energies=(10.0, 20.0, 30.0))
        assert s.mean == pytest.approx(20.0)
        assert s.std == pytest.approx(8.1649658, rel=1e-6)
        assert s.cv == pytest.approx(s.std / 20.0)

    def test_zero_mean_cv(self):
        assert PolicyStats(policy="p", energies=(0.0,)).cv == 0.0


class TestAnalyzeScenario:
    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            analyze_scenario("x", trace_factory, [])

    def test_report_structure(self):
        report = analyze_scenario(
            "tiny", trace_factory, [1, 2],
            orderings=[("Disk-only", "WNIC-only")])
        assert report.scenario == "tiny"
        assert report.seeds == (1, 2)
        names = {s.policy for s in report.stats}
        assert names == {"Disk-only", "WNIC-only", "BlueFS", "FlexFetch"}
        for s in report.stats:
            assert len(s.energies) == 2
        assert set(report.ordering_rates) == {"Disk-only < WNIC-only"}
        assert 0.0 <= report.ordering_rates["Disk-only < WNIC-only"] <= 1.0

    def test_dense_workload_ordering(self):
        """On a pure dense burst the disk beats the network in every
        draw — the rate must be 1.0."""
        report = analyze_scenario(
            "dense", trace_factory, [1, 2, 3],
            orderings=[("Disk-only", "WNIC-only")])
        assert report.ordering_rates["Disk-only < WNIC-only"] == 1.0

    def test_stat_lookup(self):
        report = analyze_scenario("tiny", trace_factory, [1])
        assert report.stat("FlexFetch").policy == "FlexFetch"
        with pytest.raises(KeyError):
            report.stat("nope")

    def test_render(self):
        report = analyze_scenario(
            "tiny", trace_factory, [1],
            orderings=[("FlexFetch", "Disk-only")])
        text = report.render()
        assert "scenario: tiny" in text
        assert "FlexFetch" in text
        assert "%" in text
