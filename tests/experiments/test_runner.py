"""Unit tests for the sweep runner and the figure builders."""

from dataclasses import replace

import pytest

from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.simulator import ProgramSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FIGURES, figure2
from repro.experiments.runner import (
    ProgramSet,
    SweepPoint,
    progress_line,
    run_point,
    run_sweep,
)
from tests.conftest import make_trace


def small_trace():
    calls = [(1, i * 65536, 65536, "read", i * 2.0) for i in range(8)]
    return make_trace(calls, name="small", file_sizes={1: 8 * 65536})


@pytest.fixture
def config():
    return ExperimentConfig(seed=3,
                            latency_sweep=(0.0, 0.010),
                            bandwidth_sweep_bps=(1e6 / 8, 11e6 / 8))


class TestRunPoint:
    def test_returns_sweep_point(self, config):
        trace = small_trace()
        point = run_point(lambda: [ProgramSpec(trace)], DiskOnlyPolicy,
                          config.wnic_spec, config)
        assert isinstance(point, SweepPoint)
        assert point.policy == "Disk-only"
        assert point.energy > 0
        assert point.time > 0
        assert point.latency == config.wnic_spec.latency

    def test_policy_factory_called_fresh(self, config):
        """Two points must not share policy state."""
        trace = small_trace()
        instances = []

        def factory():
            p = DiskOnlyPolicy()
            instances.append(p)
            return p

        run_point(lambda: [ProgramSpec(trace)], factory,
                  config.wnic_spec, config)
        run_point(lambda: [ProgramSpec(trace)], factory,
                  config.wnic_spec, config)
        assert len(instances) == 2
        assert instances[0] is not instances[1]


class TestRunSweep:
    def test_curves_cover_all_points(self, config):
        trace = small_trace()
        curves = run_sweep(lambda: [ProgramSpec(trace)],
                           {"Disk-only": DiskOnlyPolicy,
                            "WNIC-only": WnicOnlyPolicy},
                           config.latency_points(), config)
        assert set(curves) == {"Disk-only", "WNIC-only"}
        for points in curves.values():
            assert len(points) == 2
            assert points[0].latency == 0.0
            assert points[1].latency == pytest.approx(0.010)

    def test_progress_callback(self, config):
        trace = small_trace()
        lines = []
        run_sweep(lambda: [ProgramSpec(trace)],
                  {"Disk-only": DiskOnlyPolicy},
                  config.latency_points(), config,
                  progress=lines.append)
        assert len(lines) == 2
        assert "Disk-only" in lines[0]

    def test_progress_reports_both_bandwidth_units(self, config):
        """``bandwidth_bps`` is bytes/s; the line must say so.

        11 Mbps of 802.11b is 11e6/8 = 1.375e6 bytes/s.  The old format
        printed only ``bw=11.0Mbps`` derived from the byte rate, which
        misread as the field being bits/s — both renderings are now
        emitted, correctly converted.
        """
        trace = small_trace()
        lines = []
        run_sweep(lambda: [ProgramSpec(trace)],
                  {"WNIC-only": WnicOnlyPolicy},
                  [replace(config.wnic_spec, bandwidth_bps=11e6 / 8)],
                  config, progress=lines.append)
        (line,) = lines
        assert "bw=1.4MB/s (11.0Mbps)" in line
        assert "lat=" in line and line.endswith("J")


class TestProgressLine:
    def test_units(self, config):
        trace = small_trace()
        point = run_point(lambda: [ProgramSpec(trace)], DiskOnlyPolicy,
                          replace(config.wnic_spec,
                                  bandwidth_bps=1e6 / 8),
                          config)
        line = progress_line(point)
        assert "bw=0.1MB/s (1.0Mbps)" in line
        assert f"{point.energy:.1f} J" in line


class TestProgramSet:
    def test_calls_hand_out_fresh_lists(self):
        trace = small_trace()
        programs = ProgramSet((ProgramSpec(trace),))
        first, second = programs(), programs()
        assert first == second
        assert first is not second
        assert first[0].trace is trace

    def test_latency_moves_wnic_energy_only(self, config):
        trace = small_trace()
        curves = run_sweep(lambda: [ProgramSpec(trace)],
                           {"Disk-only": DiskOnlyPolicy,
                            "WNIC-only": WnicOnlyPolicy},
                           config.latency_points(), config)
        disk = [p.energy for p in curves["Disk-only"]]
        wnic = [p.energy for p in curves["WNIC-only"]]
        assert disk[0] == pytest.approx(disk[1], rel=1e-6)
        assert wnic[1] > wnic[0]


class TestFigureBuilders:
    def test_registry_is_complete(self):
        assert set(FIGURES) == {"fig1", "fig2", "fig3", "fig4", "fig5"}

    def test_figure2_single_panel(self, config):
        result = figure2(config, panels="b")
        assert result.figure_id == "fig2"
        assert result.by_latency == {}
        assert set(result.by_bandwidth) == {
            "Disk-only", "WNIC-only", "BlueFS", "FlexFetch"}
        series = result.curve_energy("WNIC-only", panel="bandwidth")
        assert len(series) == 2
        assert series[0] > series[1]   # 1 Mbps costs more than 11 Mbps
