"""Unit tests for experiment configuration and sweeps."""

import pytest

from repro.experiments.config import (
    BANDWIDTH_SWEEP_BPS,
    FIXED_BANDWIDTH_BPS,
    FIXED_LATENCY,
    LATENCY_SWEEP,
    ExperimentConfig,
)


class TestSweeps:
    def test_latency_sweep_covers_paper_range(self):
        assert LATENCY_SWEEP[0] == 0.0
        assert 0.015 in [pytest.approx(v) for v in LATENCY_SWEEP] or \
            any(abs(v - 0.015) < 1e-9 for v in LATENCY_SWEEP)
        assert LATENCY_SWEEP[-1] >= 0.020
        assert list(LATENCY_SWEEP) == sorted(LATENCY_SWEEP)

    def test_bandwidth_sweep_is_802_11b(self):
        assert [b * 8 / 1e6 for b in BANDWIDTH_SWEEP_BPS] == \
            pytest.approx([1.0, 2.0, 5.5, 11.0])

    def test_fixed_counterparts(self):
        assert FIXED_BANDWIDTH_BPS == BANDWIDTH_SWEEP_BPS[-1]
        assert FIXED_LATENCY == pytest.approx(1e-3)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = ExperimentConfig()
        assert cfg.loss_rate == 0.25
        assert cfg.stage_length == 40.0
        assert cfg.disk_spec.name.startswith("Hitachi")
        assert cfg.wnic_spec.name.startswith("Cisco")

    def test_latency_points(self):
        cfg = ExperimentConfig()
        points = cfg.latency_points()
        assert len(points) == len(LATENCY_SWEEP)
        assert all(p.bandwidth_bps == FIXED_BANDWIDTH_BPS for p in points)
        assert [p.latency for p in points] == list(LATENCY_SWEEP)

    def test_bandwidth_points(self):
        cfg = ExperimentConfig()
        points = cfg.bandwidth_points()
        assert len(points) == len(BANDWIDTH_SWEEP_BPS)
        assert all(p.latency == FIXED_LATENCY for p in points)

    def test_wnic_at(self):
        cfg = ExperimentConfig()
        spec = cfg.wnic_at(latency=0.005)
        assert spec.latency == pytest.approx(0.005)
        assert spec.bandwidth_bps == cfg.wnic_spec.bandwidth_bps
