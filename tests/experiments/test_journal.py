"""Tests for the crash-consistent sweep journal.

Unit tests cover the record round-trip and the torn-tail/garbage
classification; the property-based test proves the headline guarantee —
a sweep resumed from *any byte prefix* of its journal reproduces the
serial grid bit-identically.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.simulator import ProgramSpec
from repro.core.telemetry import RunResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.journal import (
    JOURNAL_VERSION,
    JournalError,
    SweepJournal,
    load_journal,
    sweep_id,
)
from repro.experiments.parallel import ParallelSweepExecutor
from repro.experiments.runner import ProgramSet
from tests.conftest import make_trace


def small_trace():
    calls = [(1, i * 65536, 65536, "read", i * 1.5) for i in range(8)]
    return make_trace(calls, name="jnl", file_sizes={1: 8 * 65536})


def sample_result(policy="Disk-only", end_time=12.5):
    return RunResult(policy=policy, end_time=end_time,
                     foreground_time=0.1 + 0.2,   # not repr-trivial
                     disk_energy=3.25, wnic_energy=1.75, requests=8,
                     device_requests={"disk": 8}, device_bytes={"disk": 64},
                     cache_hit_ratio=0.5, disk_spinups=1,
                     disk_spindowns=1, wnic_wakeups=2)


@pytest.fixture
def config():
    return ExperimentConfig(seed=3,
                            latency_sweep=(0.0, 0.010),
                            bandwidth_sweep_bps=(11e6 / 8,))


@pytest.fixture
def programs():
    return ProgramSet((ProgramSpec(small_trace()),))


def factories():
    return {"Disk-only": DiskOnlyPolicy, "WNIC-only": WnicOnlyPolicy}


class TestRecordRoundTrip:
    def test_finish_round_trips_bit_identically(self, tmp_path):
        path = tmp_path / "j.jsonl"
        result = sample_result()
        with SweepJournal(path) as journal:
            journal.begin_sweep(["k1"], salt="s")
            journal.record_start(0, "k1", 1)
            journal.record_finish(0, "k1", result)
            journal.end_sweep(completed=1, failed=0)
        replay = load_journal(path)
        assert replay.completed == {"k1": result}
        assert replay.completed["k1"].foreground_time == 0.1 + 0.2
        assert replay.started == 1
        assert not replay.torn_tail
        assert len(replay.sweeps) == 1
        assert replay.sweeps[0]["version"] == JOURNAL_VERSION

    def test_fail_record_round_trips(self, tmp_path):
        path = tmp_path / "j.jsonl"
        attempts = [{"attempt": 1, "reason": "exception",
                     "error": "ValueError('x')", "traceback": "tb",
                     "delay": 0.0}]
        with SweepJournal(path) as journal:
            journal.record_fail(0, "k1", attempts)
        assert load_journal(path).failed == {"k1": attempts}

    def test_finish_supersedes_fail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        result = sample_result()
        with SweepJournal(path) as journal:
            journal.record_fail(0, "k1", [])
            journal.record_finish(0, "k1", result)
        replay = load_journal(path)
        assert replay.completed == {"k1": result}
        assert replay.failed == {}

    def test_append_after_close_raises(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.close()
        with pytest.raises(JournalError):
            journal.record_start(0, "k", 1)

    def test_sweep_id_is_order_independent(self):
        assert sweep_id(["a", "b"]) == sweep_id(["b", "a"])
        assert sweep_id(["a"]) != sweep_id(["b"])


class TestTornTailAndGarbage:
    def _intact(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path) as journal:
            journal.begin_sweep(["k1", "k2"], salt="s")
            journal.record_finish(0, "k1", sample_result())
        return path

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = self._intact(tmp_path)
        intact = path.read_bytes()
        path.write_bytes(intact + b'{"kind": "finish", "key": "k2"')
        replay = load_journal(path)
        assert replay.torn_tail
        assert set(replay.completed) == {"k1"}
        assert replay.intact_bytes == len(intact)

    def test_resume_repairs_torn_tail(self, tmp_path):
        path = self._intact(tmp_path)
        intact = path.read_bytes()
        path.write_bytes(intact + b'{"kind": "fin')
        with SweepJournal(path) as journal:
            journal.record_finish(1, "k2", sample_result("WNIC-only"))
        replay = load_journal(path)
        assert not replay.torn_tail
        assert set(replay.completed) == {"k1", "k2"}

    def test_mid_file_garbage_raises(self, tmp_path):
        path = self._intact(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + b"not json\n" + b"".join(lines[1:]))
        with pytest.raises(JournalError):
            load_journal(path)

    def test_unknown_kind_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(json.dumps({"kind": "wat"}).encode() + b"\n")
        with pytest.raises(JournalError):
            load_journal(path)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        record = {"kind": "begin", "version": JOURNAL_VERSION + 1}
        path.write_bytes(json.dumps(record).encode() + b"\n")
        with pytest.raises(JournalError):
            load_journal(path)

    def test_malformed_finish_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        record = {"kind": "finish", "key": "k", "result": {"policy": "x"}}
        path.write_bytes(json.dumps(record).encode() + b"\n")
        with pytest.raises(JournalError):
            load_journal(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(JournalError):
            load_journal(tmp_path / "absent.jsonl")


class TestJournaledSweep:
    def test_resume_skips_completed_cells(self, tmp_path, config,
                                          programs):
        path = tmp_path / "sweep.jsonl"
        specs = config.latency_points()
        first = ParallelSweepExecutor(1, journal=SweepJournal(path))
        golden = first.run_sweep(programs, factories(), specs, config)
        first.journal.close()
        assert first.live_runs == len(factories()) * len(specs)

        resumed = ParallelSweepExecutor(1, journal=SweepJournal(path))
        again = resumed.run_sweep(programs, factories(), specs, config)
        resumed.journal.close()
        assert again == golden
        assert resumed.live_runs == 0
        assert resumed.journal_hits == len(factories()) * len(specs)

    def test_journal_and_cache_agree(self, tmp_path, config, programs):
        """Journaled grids equal plain serial grids bit-identically."""
        path = tmp_path / "sweep.jsonl"
        specs = config.latency_points()
        golden = ParallelSweepExecutor(1).run_sweep(
            programs, factories(), specs, config)
        journaled = ParallelSweepExecutor(1, journal=SweepJournal(path))
        got = journaled.run_sweep(programs, factories(), specs, config)
        journaled.journal.close()
        assert got == golden


class TestPrefixResumeProperty:
    """Any byte prefix of a journal resumes to a bit-identical grid."""

    @pytest.fixture(scope="class")
    def baseline(self, tmp_path_factory):
        config = ExperimentConfig(seed=3,
                                  latency_sweep=(0.0, 0.010),
                                  bandwidth_sweep_bps=(11e6 / 8,))
        programs = ProgramSet((ProgramSpec(small_trace()),))
        specs = config.latency_points()
        path = tmp_path_factory.mktemp("journal") / "full.jsonl"
        executor = ParallelSweepExecutor(1, journal=SweepJournal(path))
        golden = executor.run_sweep(programs, factories(), specs, config)
        executor.journal.close()
        return path.read_bytes(), golden, programs, specs, config

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_any_prefix_resumes_bit_identically(self, baseline, tmp_path,
                                                data):
        raw, golden, programs, specs, config = baseline
        cut = data.draw(st.integers(min_value=0, max_value=len(raw)))
        path = tmp_path / f"prefix-{cut}.jsonl"
        path.write_bytes(raw[:cut])
        survived = len(load_journal(path).completed)
        executor = ParallelSweepExecutor(1, journal=SweepJournal(path))
        got = executor.run_sweep(programs, factories(), specs, config)
        executor.journal.close()
        assert got == golden
        total = len(factories()) * len(specs)
        # Cells that survived the cut were not re-run; the rest were.
        assert executor.journal_hits == survived
        assert executor.live_runs == total - survived
