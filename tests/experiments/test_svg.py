"""Tests for the SVG chart renderer."""

import pytest

from repro.core.simulator import RunResult
from repro.experiments.figures import FigureResult
from repro.experiments.runner import SweepPoint
from repro.experiments.svg import render_panel_svg, save_figure_svg


def result(energy):
    return RunResult(
        policy="P", end_time=10.0, foreground_time=10.0,
        disk_energy=energy / 2, wnic_energy=energy / 2, requests=1,
        device_requests={}, device_bytes={}, cache_hit_ratio=0.0,
        disk_spinups=0, disk_spindowns=0, wnic_wakeups=0)


def curves():
    points_a = [SweepPoint(policy="A", latency=l, bandwidth_bps=1.375e6,
                           result=result(100 + 10 * i))
                for i, l in enumerate((0.0, 0.01, 0.02))]
    points_b = [SweepPoint(policy="B", latency=l, bandwidth_bps=1.375e6,
                           result=result(220 - 5 * i))
                for i, l in enumerate((0.0, 0.01, 0.02))]
    return {"A": points_a, "B": points_b}


class TestRenderPanel:
    def test_valid_svg_document(self):
        svg = render_panel_svg(curves(), title="demo", x_axis="latency")
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "polyline" in svg
        assert svg.count("<polyline") == 2     # one per policy
        assert "demo" in svg
        assert "WNIC latency (ms)" in svg

    def test_bandwidth_axis(self):
        svg = render_panel_svg(curves(), title="t", x_axis="bandwidth")
        assert "WNIC bandwidth (Mbps)" in svg

    def test_legend_contains_policies(self):
        svg = render_panel_svg(curves(), title="t", x_axis="latency")
        assert ">A</text>" in svg
        assert ">B</text>" in svg

    def test_title_is_escaped(self):
        svg = render_panel_svg(curves(), title="<&>", x_axis="latency")
        assert "&lt;&amp;&gt;" in svg

    def test_errors(self):
        with pytest.raises(ValueError):
            render_panel_svg(curves(), title="t", x_axis="frequency")
        with pytest.raises(ValueError):
            render_panel_svg({}, title="t", x_axis="latency")


class TestSaveFigure:
    def test_writes_one_file_per_panel(self, tmp_path):
        fig = FigureResult(figure_id="figX", title="t", workload="w",
                           by_latency=curves(), by_bandwidth=curves())
        paths = save_figure_svg(fig, tmp_path)
        assert [p.name for p in paths] == ["figXa.svg", "figXb.svg"]
        for p in paths:
            assert p.read_text().startswith("<svg")

    def test_skips_missing_panels(self, tmp_path):
        fig = FigureResult(figure_id="figY", title="t", workload="w",
                           by_latency=curves())
        paths = save_figure_svg(fig, tmp_path)
        assert [p.name for p in paths] == ["figYa.svg"]
