"""Tests for the physical-consistency validators — and, through them,
energy-conservation integration tests of the whole simulator."""


import pytest

from repro.core.bluefs import BlueFSPolicy
from repro.core.flexfetch import FlexFetchPolicy
from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.profile import profile_from_trace
from repro.core.simulator import ProgramSpec, ReplaySimulator
from repro.experiments.validate import validate_run
from tests.conftest import make_trace


def run(trace, policy, **kw):
    return ReplaySimulator([ProgramSpec(trace)], policy, seed=3,
                           **kw).run()


def mixed_trace():
    calls = []
    t = 0.0
    for i in range(30):
        calls.append((1, i * 131072, 131072, "read", t))
        t += 0.8 if i % 3 else 25.0
    calls.append((2, 0, 262144, "write", t))
    return make_trace(calls, name="mixed",
                      file_sizes={1: 30 * 131072, 2: 262144})


class TestCleanRunsValidate:
    @pytest.mark.parametrize("policy_factory", [
        DiskOnlyPolicy, WnicOnlyPolicy, BlueFSPolicy])
    def test_fixed_and_reactive_policies(self, policy_factory):
        issues = validate_run(run(mixed_trace(), policy_factory()))
        assert issues == [], [str(i) for i in issues]

    def test_flexfetch_run(self):
        trace = mixed_trace()
        policy = FlexFetchPolicy(profile_from_trace(trace))
        issues = validate_run(run(trace, policy))
        assert issues == [], [str(i) for i in issues]

    def test_every_table3_workload_validates(self):
        """End-to-end conservation across all six applications."""
        from repro.traces.synth import TABLE3_GENERATORS
        for name, gen in TABLE3_GENERATORS.items():
            trace = gen(seed=3)
            result = run(trace, DiskOnlyPolicy())
            issues = validate_run(result)
            assert issues == [], (name, [str(i) for i in issues])


class TestDetectsCorruption:
    def _clean_result(self):
        return run(mixed_trace(), DiskOnlyPolicy())

    def test_detects_energy_mismatch(self):
        result = self._clean_result()
        result.disk_breakdown["disk.active"] += 100.0
        assert any(i.check == "breakdown"
                   for i in validate_run(result))

    def test_detects_residency_gap(self):
        result = self._clean_result()
        result.disk_residency["idle"] += 100.0
        checks = {i.check for i in validate_run(result)}
        assert "residency" in checks or "conservation" in checks

    def test_detects_negative_energy(self):
        result = self._clean_result()
        result.disk_energy = -1.0
        assert any(i.check == "energy" for i in validate_run(result))

    def test_detects_time_inversion(self):
        result = self._clean_result()
        result.foreground_time = result.end_time + 5.0
        assert any(i.check == "time" for i in validate_run(result))

    def test_detects_ghost_bytes(self):
        result = self._clean_result()
        result.device_bytes["network"] = 1000
        result.device_requests["network"] = 0
        assert any(i.check == "routing" for i in validate_run(result))

    def test_detects_conservation_violation(self):
        result = self._clean_result()
        result.disk_energy += 500.0
        result.disk_breakdown["disk.active"] += 500.0
        assert any(i.check == "conservation"
                   for i in validate_run(result))


class TestAcrossDeviceVariants:
    def test_sleep_enabled_disk_validates(self):
        from repro.devices.specs import HITACHI_DK23DA
        spec = HITACHI_DK23DA.with_sleep(30.0)
        result = run(mixed_trace(), DiskOnlyPolicy(), disk_spec=spec)
        issues = validate_run(result, disk_spec=spec)
        assert issues == [], [str(i) for i in issues]

    def test_adaptive_dpm_validates(self):
        from repro.devices.dpm import AdaptiveTimeout
        result = run(mixed_trace(), DiskOnlyPolicy(),
                     spindown_policy=AdaptiveTimeout(initial=20.0))
        issues = validate_run(result)
        assert issues == [], [str(i) for i in issues]

    def test_psm_transfer_wnic_validates(self):
        from repro.devices.specs import AIRONET_350
        spec = AIRONET_350.with_psm_transfers()
        result = run(mixed_trace(), WnicOnlyPolicy(), wnic_spec=spec)
        issues = validate_run(result, wnic_spec=spec)
        assert issues == [], [str(i) for i in issues]
