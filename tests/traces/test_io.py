"""Round-trip tests for trace serialisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.traces.io import load_trace_jsonl, save_trace_jsonl
from repro.traces.record import FileInfo, OpType, SyscallRecord
from repro.traces.trace import Trace


class TestRoundTrip:
    def test_simple_round_trip(self, tmp_path, tiny_trace):
        path = tmp_path / "t.jsonl"
        save_trace_jsonl(tiny_trace, path)
        loaded = load_trace_jsonl(path)
        assert loaded.name == tiny_trace.name
        assert loaded.records == tiny_trace.records
        assert loaded.files == tiny_trace.files

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "e.jsonl"
        save_trace_jsonl(Trace("empty", [], {}), path)
        loaded = load_trace_jsonl(path)
        assert len(loaded) == 0

    def test_generator_trace_round_trip(self, tmp_path):
        from repro.traces.synth import generate_xmms
        from repro.traces.synth.xmms import XmmsParams
        trace = generate_xmms(seed=3, params=XmmsParams(duration=60.0))
        path = tmp_path / "x.jsonl"
        save_trace_jsonl(trace, path)
        loaded = load_trace_jsonl(path)
        assert loaded.records == trace.records
        assert loaded.files == trace.files


class TestErrors:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace_jsonl(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"rec"}\n')
        with pytest.raises(ValueError, match="header"):
            load_trace_jsonl(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"header","version":99,"name":"x",'
                        '"files":[]}\n')
        with pytest.raises(ValueError, match="version"):
            load_trace_jsonl(path)

    def test_garbage_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"header","version":1,"name":"x",'
                        '"files":[]}\n{"kind":"blob"}\n')
        with pytest.raises(ValueError, match="record"):
            load_trace_jsonl(path)


@st.composite
def trace_strategy(draw):
    """Random small-but-valid traces."""
    n_files = draw(st.integers(1, 4))
    sizes = [draw(st.integers(1, 100_000)) for _ in range(n_files)]
    files = {i + 1: FileInfo(inode=i + 1, path=f"f{i}", size_bytes=s)
             for i, s in enumerate(sizes)}
    n_recs = draw(st.integers(0, 25))
    ts = 0.0
    records = []
    for _ in range(n_recs):
        inode = draw(st.integers(1, n_files))
        op = draw(st.sampled_from([OpType.READ, OpType.WRITE]))
        fsize = files[inode].size_bytes
        if op is OpType.READ:
            offset = draw(st.integers(0, max(0, fsize - 1)))
            size = draw(st.integers(0, fsize - offset))
        else:
            offset = draw(st.integers(0, 200_000))
            size = draw(st.integers(0, 50_000))
        ts += draw(st.floats(0, 10, allow_nan=False))
        dur = draw(st.floats(0, 0.5, allow_nan=False))
        records.append(SyscallRecord(pid=1, fd=3, inode=inode,
                                     offset=offset, size=size, op=op,
                                     timestamp=ts, duration=dur))
        if op is OpType.WRITE:
            info = files[inode]
            files[inode] = FileInfo(inode=inode, path=info.path,
                                    size_bytes=max(info.size_bytes,
                                                   offset + size))
    return Trace("prop", records, files)


class TestPropertyRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(trace_strategy())
    def test_round_trip_exact(self, tmp_path_factory, trace):
        path = tmp_path_factory.mktemp("io") / "t.jsonl"
        save_trace_jsonl(trace, path)
        loaded = load_trace_jsonl(path)
        assert loaded.name == trace.name
        assert loaded.records == trace.records
        assert loaded.files == trace.files


class TestCsvRoundTrip:
    def test_simple_round_trip(self, tmp_path, tiny_trace):
        from repro.traces.io import load_trace_csv, save_trace_csv
        path = tmp_path / "t.csv"
        save_trace_csv(tiny_trace, path)
        loaded = load_trace_csv(path)
        assert loaded.name == tiny_trace.name
        assert loaded.records == tiny_trace.records
        assert loaded.files == tiny_trace.files

    def test_paths_with_commas_survive(self, tmp_path):
        from repro.traces.io import load_trace_csv, save_trace_csv
        from repro.traces.record import FileInfo
        trace = Trace("odd", [], {1: FileInfo(
            inode=1, path='dir,with,"commas"/f', size_bytes=5)})
        path = tmp_path / "odd.csv"
        save_trace_csv(trace, path)
        assert load_trace_csv(path).files[1].path == \
            'dir,with,"commas"/f'

    def test_missing_preamble_rejected(self, tmp_path):
        from repro.traces.io import load_trace_csv
        path = tmp_path / "bad.csv"
        path.write_text("pid,fd,inode,offset,size,op,ts,dur\n")
        with pytest.raises(ValueError, match="preamble"):
            load_trace_csv(path)

    def test_wrong_version_rejected(self, tmp_path):
        from repro.traces.io import load_trace_csv
        path = tmp_path / "bad.csv"
        path.write_text("#trace,99,x\npid,fd,inode,offset,size,op,ts,dur\n")
        with pytest.raises(ValueError, match="version"):
            load_trace_csv(path)

    def test_rows_before_header_rejected(self, tmp_path):
        from repro.traces.io import load_trace_csv
        path = tmp_path / "bad.csv"
        path.write_text("#trace,1,x\n1,3,1,0,10,read,0.0,0.0\n")
        with pytest.raises(ValueError, match="header"):
            load_trace_csv(path)

    @settings(max_examples=25, deadline=None)
    @given(trace_strategy())
    def test_property_round_trip(self, tmp_path_factory, trace):
        from repro.traces.io import load_trace_csv, save_trace_csv
        path = tmp_path_factory.mktemp("csv") / "t.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        assert loaded.records == trace.records
        assert loaded.files == trace.files


_HEADER = ('{"kind":"header","version":1,"name":"x",'
           '"files":[{"inode":1,"path":"a","size":100000}]}\n')


def _rec_line(offset=0, size=4096, ts=0.0, dur=0.0):
    return ('{"kind":"rec","pid":1,"fd":3,"inode":1,'
            f'"offset":{offset},"size":{size},"op":"read",'
            f'"ts":{ts},"dur":{dur}}}\n')


class TestValidation:
    """Structured rejection of corrupt record fields (jsonl and CSV)."""

    def _load(self, tmp_path, body):
        from repro.traces.io import TraceValidationError
        path = tmp_path / "bad.jsonl"
        path.write_text(_HEADER + body)
        with pytest.raises(TraceValidationError) as info:
            load_trace_jsonl(path)
        return info.value

    def test_negative_size_rejected(self, tmp_path):
        err = self._load(tmp_path, _rec_line(size=-1))
        assert err.index == 0
        assert "record 0" in str(err)
        assert "negative size" in str(err)

    def test_negative_timestamp_rejected(self, tmp_path):
        err = self._load(tmp_path, _rec_line(ts=-0.5))
        assert "negative timestamp" in str(err)

    def test_nan_timestamp_rejected(self, tmp_path):
        err = self._load(tmp_path, _rec_line(ts="NaN"))
        assert "timestamp is NaN" in str(err)

    def test_nan_size_rejected(self, tmp_path):
        err = self._load(tmp_path, _rec_line(size="NaN"))
        assert "size is NaN" in str(err)

    def test_non_monotonic_order_rejected(self, tmp_path):
        err = self._load(tmp_path,
                         _rec_line(ts=5.0) + _rec_line(ts=2.0))
        assert err.index == 1
        assert "non-monotonic" in str(err)

    def test_error_names_record_index(self, tmp_path):
        body = "".join(_rec_line(ts=float(i)) for i in range(3))
        err = self._load(tmp_path, body + _rec_line(offset=-4096, ts=9.0))
        assert err.index == 3

    def test_is_a_value_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(_HEADER + _rec_line(size=-1))
        with pytest.raises(ValueError):
            load_trace_jsonl(path)

    def test_csv_negative_size_rejected(self, tmp_path):
        from repro.traces.io import TraceValidationError, load_trace_csv
        path = tmp_path / "bad.csv"
        path.write_text("#trace,1,x\npid,fd,inode,offset,size,op,ts,dur\n"
                        "1,3,1,0,-10,read,0.0,0.0\n")
        with pytest.raises(TraceValidationError, match="negative size"):
            load_trace_csv(path)

    def test_csv_non_monotonic_rejected(self, tmp_path):
        from repro.traces.io import TraceValidationError, load_trace_csv
        path = tmp_path / "bad.csv"
        path.write_text("#trace,1,x\npid,fd,inode,offset,size,op,ts,dur\n"
                        "1,3,1,0,10,read,5.0,0.0\n"
                        "1,3,1,0,10,read,1.0,0.0\n")
        with pytest.raises(TraceValidationError, match="non-monotonic") \
                as info:
            load_trace_csv(path)
        assert info.value.index == 1

    def test_csv_nan_timestamp_rejected(self, tmp_path):
        from repro.traces.io import TraceValidationError, load_trace_csv
        path = tmp_path / "bad.csv"
        path.write_text("#trace,1,x\npid,fd,inode,offset,size,op,ts,dur\n"
                        "1,3,1,0,10,read,NaN,0.0\n")
        with pytest.raises(TraceValidationError, match="NaN"):
            load_trace_csv(path)
