"""Tests for the synthetic application generators (Table 3)."""

import pytest

from repro.traces.record import OpType
from repro.traces.synth import (
    TABLE3_GENERATORS,
    TABLE3_REFERENCE,
    generate_acroread_profile_run,
    generate_acroread_search_run,
    generate_grep_make,
    generate_grep_make_xmms,
    generate_mplayer,
    generate_thunderbird,
    generate_xmms,
)
from repro.traces.synth.xmms import XmmsParams


class TestTable3Exactness:
    """Every generator must hit its Table 3 row exactly."""

    @pytest.mark.parametrize("name", sorted(TABLE3_GENERATORS))
    def test_file_count(self, name):
        stats = TABLE3_GENERATORS[name](seed=7).stats()
        assert stats.file_count == TABLE3_REFERENCE[name][0]

    @pytest.mark.parametrize("name", sorted(TABLE3_GENERATORS))
    def test_footprint_mb(self, name):
        stats = TABLE3_GENERATORS[name](seed=7).stats()
        assert stats.footprint_mb == pytest.approx(
            TABLE3_REFERENCE[name][1], abs=0.05)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(TABLE3_GENERATORS))
    def test_same_seed_same_trace(self, name):
        a = TABLE3_GENERATORS[name](seed=11)
        b = TABLE3_GENERATORS[name](seed=11)
        assert a.records == b.records
        assert a.files == b.files

    def test_different_seed_different_trace(self):
        a = generate_thunderbird(seed=1)
        b = generate_thunderbird(seed=2)
        assert a.records != b.records


class TestStructure:
    def test_grep_is_one_dense_scan(self):
        from repro.traces.synth import generate_grep
        stats = generate_grep(seed=7).stats()
        # Every gap is far below the 20 ms burst threshold.
        assert stats.think_percentile(99) < 0.020
        assert stats.read_bytes == pytest.approx(stats.footprint_bytes,
                                                 rel=0.01)

    def test_make_has_compile_gaps_and_long_steps(self):
        import numpy as np
        from repro.traces.synth import generate_make
        stats = generate_make(seed=7).stats()
        # Compile gaps (the generator also emits ~50 ms post-write
        # pauses; genuine compiles are the > 0.5 s ones).  Their
        # typical size lets the WNIC doze (> 0.8 s).
        compile_gaps = [t for t in stats.think_times if t > 0.5]
        assert compile_gaps
        assert float(np.median(compile_gaps)) > 0.8
        assert max(stats.think_times) > 20.0        # > disk timeout
        assert stats.write_bytes > 0                # object files

    def test_xmms_interval_below_disk_timeout(self):
        stats = generate_xmms(seed=7).stats()
        assert stats.think_percentile(99) < 20.0    # keeps disk awake

    def test_xmms_duration_cap(self):
        t = generate_xmms(seed=7, params=XmmsParams(duration=100.0))
        assert t.duration <= 110.0

    def test_mplayer_burst_interval(self):
        stats = generate_mplayer(seed=7).stats()
        # Bursty: most gaps tiny, refill gaps ~7.5 s.
        assert stats.think_percentile(50) < 0.01
        assert max(stats.think_times) == pytest.approx(7.5, abs=0.5)

    def test_thunderbird_two_phases(self):
        trace = generate_thunderbird(seed=7)
        stats = trace.stats()
        assert max(stats.think_times) > 10.0        # email think time
        # the search sweep reads every mbox fully
        mbox_bytes = sum(f.size_bytes for f in trace.files.values()
                         if "mbox" in f.path)
        assert stats.read_bytes > mbox_bytes

    def test_acroread_runs_differ(self):
        search = generate_acroread_search_run(seed=7).stats()
        profile = generate_acroread_profile_run(seed=7).stats()
        assert search.footprint_mb == pytest.approx(200.0)
        assert profile.footprint_mb == pytest.approx(20.0)
        assert max(profile.think_times) == pytest.approx(25.0, abs=0.1)
        assert max(search.think_times) == pytest.approx(10.0, abs=0.1)
        # the profile run's interval exceeds the 20 s disk timeout;
        # the search run's does not — the §3.3.5 setup.
        assert max(profile.think_times) > 20.0 > max(search.think_times)

    def test_all_reads_within_file_bounds(self):
        for name, gen in TABLE3_GENERATORS.items():
            trace = gen(seed=5)
            for rec in trace.records:
                if rec.op is OpType.READ:
                    assert rec.end_offset <= \
                        trace.files[rec.inode].size_bytes, name


class TestComposites:
    def test_grep_make_order(self):
        trace = generate_grep_make(seed=7)
        assert trace.name == "grep+make"
        # grep files + make files, disjoint inode spaces
        assert len(trace.files) == 1332 + 2579

    def test_grep_make_xmms_returns_pair(self):
        fg, bg = generate_grep_make_xmms(seed=7)
        assert bg.name == "xmms"
        assert set(fg.files).isdisjoint(set(bg.files))
        # xmms plays at least as long as the foreground nominal run
        assert bg.duration >= fg.duration * 0.9
