"""Unit and property tests for compile-once trace lowering."""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.policies import DiskOnlyPolicy
from repro.core.session import SimulationSession
from repro.core.workload import ProgramSpec
from repro.traces.compile import (
    CompiledTrace,
    StraceSource,
    SyntheticSource,
    TraceSource,
    compile_trace,
)
from repro.traces.record import FileInfo, OpType, SyscallRecord
from repro.traces.trace import Trace
from tests.conftest import make_trace


@st.composite
def workload(draw):
    """A small random but coherent trace (compiles in microseconds)."""
    n_files = draw(st.integers(1, 3))
    files = {i + 1: FileInfo(inode=i + 1, path=f"f{i}",
                             size_bytes=draw(st.integers(1, 256)) * 4096)
             for i in range(n_files)}
    n = draw(st.integers(0, 25))
    records = []
    ts = 0.0
    for _ in range(n):
        inode = draw(st.integers(1, n_files))
        limit = files[inode].size_bytes
        op = draw(st.sampled_from([OpType.READ, OpType.WRITE]))
        offset = draw(st.integers(0, max(0, limit - 4096)))
        size = draw(st.integers(1, min(262144, limit - offset)))
        ts += draw(st.sampled_from([0.001, 0.5, 3.0, 25.0]))
        records.append(SyscallRecord(
            pid=1, fd=3, inode=inode, offset=offset, size=size, op=op,
            timestamp=ts, duration=0.0))
    return Trace("random", records, files)


COMMON = dict(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


class TestLowering:
    @settings(**COMMON)
    @given(workload())
    def test_columns_round_trip_the_data_records(self, trace):
        compiled = compile_trace(trace)
        data = trace.data_records()
        assert compiled.record_count == len(data)
        assert len(compiled) == len(data)
        assert compiled.total_bytes == sum(r.size for r in data)
        driver_view = ProgramSpec(compiled)
        from repro.core.workload import ProgramDriver
        driver = ProgramDriver(driver_view)
        for rec in data:
            cur = driver.current
            assert (cur.pid, cur.inode, cur.offset, cur.size, cur.op) \
                == (rec.pid, rec.inode, rec.offset, rec.size, rec.op)
            driver.advance()
        assert driver.done

    @settings(**COMMON)
    @given(workload())
    def test_thinks_match_the_recorded_gaps_bitwise(self, trace):
        compiled = compile_trace(trace)
        data = trace.data_records()
        thinks = memoryview(compiled.thinks).cast("d")
        assert len(thinks) == max(0, len(data) - 1)
        for i, (cur, nxt) in enumerate(zip(data, data[1:])):
            assert thinks[i] == max(0.0, nxt.timestamp - cur.end_time)
        if data:
            assert compiled.start_time == data[0].timestamp

    @settings(**COMMON)
    @given(workload())
    def test_record_and_prepared_specs_replay_identically(self, trace):
        record_run = SimulationSession(
            [ProgramSpec(trace)], DiskOnlyPolicy(), seed=1).run()
        prepared_run = SimulationSession(
            [ProgramSpec(trace).prepared()], DiskOnlyPolicy(),
            seed=1).run()
        assert record_run == prepared_run

    def test_empty_trace_compiles(self):
        compiled = compile_trace(Trace("empty", [], {}))
        assert compiled.record_count == 0
        assert compiled.start_time == 0.0
        assert compiled.thinks == b""
        assert compiled.file_count == 0

    def test_file_table_is_inode_sorted(self):
        trace = make_trace([(9, 0, 4096, "read", 0.0),
                            (2, 0, 4096, "read", 1.0),
                            (5, 0, 4096, "read", 2.0)])
        inodes, _sizes = compile_trace(trace).files_view()
        assert list(inodes) == [2, 5, 9]


class TestDigest:
    def trace(self, name="t", size=4096):
        return make_trace([(1, 0, size, "read", 0.0),
                           (1, size, size, "read", 1.0)], name=name,
                          file_sizes={1: 4 * size})

    def test_equal_content_equal_digest_across_objects(self):
        assert compile_trace(self.trace()).digest == \
            compile_trace(self.trace()).digest

    def test_content_perturbations_change_digest(self):
        base = compile_trace(self.trace()).digest
        assert compile_trace(self.trace(size=8192)).digest != base
        assert compile_trace(self.trace(name="other")).digest != base

    def test_think_times_participate(self):
        a = make_trace([(1, 0, 4096, "read", 0.0),
                        (1, 4096, 4096, "read", 1.0)])
        b = make_trace([(1, 0, 4096, "read", 0.0),
                        (1, 4096, 4096, "read", 2.0)])
        assert compile_trace(a).digest != compile_trace(b).digest


class TestMemoisation:
    def test_same_object_compiles_once(self):
        trace = make_trace([(1, 0, 4096, "read", 0.0)])
        assert compile_trace(trace) is compile_trace(trace)

    def test_compiling_compiled_is_identity(self):
        compiled = compile_trace(make_trace([(1, 0, 4096, "read", 0.0)]))
        assert compile_trace(compiled) is compiled

    def test_compiled_trace_pickles(self):
        compiled = compile_trace(make_trace([(1, 0, 4096, "read", 0.0)]))
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone == compiled


class TestSources:
    def test_synthetic_source_loads_and_compiles(self):
        source = SyntheticSource("grep", seed=0)
        assert isinstance(source, TraceSource)
        trace = source.load()
        assert trace.records
        assert source.compiled().digest == compile_trace(trace).digest

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown synthetic"):
            SyntheticSource("nonesuch").load()

    def test_strace_source_loads_and_compiles(self, tmp_path):
        capture = tmp_path / "session.strace"
        capture.write_text(
            "1 10.0 read(3</f>) inode=1 offset=0 size=4096"
            " = 4096 <0.001>\n"
            "1 12.0 read(3</f>) inode=1 offset=4096 size=4096"
            " = 4096 <0.001>\n", encoding="utf-8")
        source = StraceSource(str(capture))
        assert isinstance(source, TraceSource)
        trace = source.load()
        assert trace.name == "session"
        assert len(trace.records) == 2
        compiled = source.compiled()
        assert compiled.record_count == 2
        assert compiled.digest == compile_trace(trace).digest

    def test_strace_source_skip_malformed(self, tmp_path):
        capture = tmp_path / "noisy.strace"
        capture.write_text(
            "garbage line\n"
            "1 10.0 read(3</f>) inode=1 offset=0 size=4096"
            " = 4096 <0.001>\n", encoding="utf-8")
        strict = StraceSource(str(capture))
        with pytest.raises(Exception):
            strict.load()
        lenient = StraceSource(str(capture), skip_malformed=True)
        assert lenient.compiled().record_count == 1


class TestCompiledTraceIsValue:
    def test_frozen(self):
        compiled = compile_trace(make_trace([(1, 0, 4096, "read", 0.0)]))
        with pytest.raises(AttributeError):
            compiled.name = "other"

    def test_is_a_compiled_trace(self):
        compiled = compile_trace(make_trace([(1, 0, 4096, "read", 0.0)]))
        assert isinstance(compiled, CompiledTrace)
        assert "records=1" in repr(compiled)
