"""Tests for the named scenario registry."""

import pytest

from repro.core.simulator import ReplaySimulator
from repro.core.flexfetch import FlexFetchPolicy
from repro.traces.synth.scenarios import SCENARIOS, build_scenario


class TestRegistry:
    def test_all_paper_scenarios_present(self):
        assert {"grep+make", "mplayer", "thunderbird",
                "grep+make+xmms", "acroread-stale"} <= set(SCENARIOS)

    def test_all_single_apps_present(self):
        assert {"grep", "make", "xmms", "mplayer", "thunderbird",
                "acroread"} <= set(SCENARIOS)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            build_scenario("nope")


class TestScenarioShape:
    def test_single_scenario(self):
        s = build_scenario("mplayer", seed=3)
        assert s.name == "mplayer"
        assert len(s.programs) == 1
        assert s.programs[0].profiled
        assert s.profile.total_bytes > 0
        assert s.foreground is s.programs[0]

    def test_forced_spinup_scenario(self):
        s = build_scenario("grep+make+xmms", seed=3)
        assert len(s.programs) == 2
        fg, bg = s.programs
        assert fg.profiled and not fg.disk_pinned
        assert not bg.profiled and bg.disk_pinned
        assert s.foreground is fg
        # the profile covers only the foreground
        fg_bytes = sum(r.size for r in fg.trace.data_records())
        assert s.profile.total_bytes == pytest.approx(fg_bytes, rel=0.01)

    def test_stale_profile_scenario(self):
        s = build_scenario("acroread-stale", seed=3)
        run_bytes = sum(r.size for r in
                        s.programs[0].trace.data_records())
        # the recorded profile is an order of magnitude smaller than
        # the run it will (mis)guide.
        assert s.profile.total_bytes < run_bytes / 5

    def test_determinism(self):
        a = build_scenario("grep+make", seed=9)
        b = build_scenario("grep+make", seed=9)
        assert a.programs[0].trace.records == b.programs[0].trace.records

    @pytest.mark.parametrize("name", ["xmms", "acroread-stale"])
    def test_scenarios_are_replayable(self, name):
        s = build_scenario(name, seed=3)
        result = ReplaySimulator(list(s.programs),
                                 FlexFetchPolicy(s.profile),
                                 seed=3).run()
        assert result.total_energy > 0
