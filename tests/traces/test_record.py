"""Unit tests for trace record types."""

import pytest

from repro.traces.record import FileInfo, OpType, SyscallRecord


def rec(**kw):
    base = dict(pid=1, fd=3, inode=10, offset=0, size=4096,
                op=OpType.READ, timestamp=0.0, duration=0.001)
    base.update(kw)
    return SyscallRecord(**base)


class TestOpType:
    def test_moves_data(self):
        assert OpType.READ.moves_data
        assert OpType.WRITE.moves_data
        assert not OpType.OPEN.moves_data
        assert not OpType.CLOSE.moves_data

    def test_string_round_trip(self):
        assert OpType("read") is OpType.READ
        with pytest.raises(ValueError):
            OpType("mmap")


class TestSyscallRecord:
    def test_derived_fields(self):
        r = rec(offset=100, size=50, timestamp=2.0, duration=0.5)
        assert r.end_offset == 150
        assert r.end_time == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            rec(offset=-1)
        with pytest.raises(ValueError):
            rec(size=-1)
        with pytest.raises(ValueError):
            rec(timestamp=-0.1)
        with pytest.raises(ValueError):
            rec(duration=-0.1)

    def test_sequentiality(self):
        a = rec(offset=0, size=100)
        b = rec(offset=100, size=100, timestamp=0.01)
        assert b.is_sequential_with(a)

    def test_sequentiality_requires_same_file_and_op(self):
        a = rec(offset=0, size=100)
        assert not rec(offset=100, inode=11).is_sequential_with(a)
        assert not rec(offset=100, op=OpType.WRITE).is_sequential_with(a)
        assert not rec(offset=104, size=100).is_sequential_with(a)

    def test_immutability(self):
        r = rec()
        with pytest.raises(AttributeError):
            r.size = 1


class TestFileInfo:
    def test_valid(self):
        info = FileInfo(inode=1, path="a/b", size_bytes=10)
        assert info.path == "a/b"

    def test_validation(self):
        with pytest.raises(ValueError):
            FileInfo(inode=1, path="", size_bytes=10)
        with pytest.raises(ValueError):
            FileInfo(inode=1, path="x", size_bytes=-1)
