"""Unit tests for the Trace container."""

import pytest

from repro.traces.record import FileInfo, OpType, SyscallRecord
from repro.traces.trace import Trace
from tests.conftest import make_trace


class TestValidation:
    def test_records_must_be_ordered(self):
        with pytest.raises(ValueError, match="out of order"):
            make_trace([(1, 0, 10, "read", 5.0), (1, 10, 10, "read", 1.0)])

    def test_unknown_inode_rejected(self):
        rec = SyscallRecord(pid=1, fd=3, inode=9, offset=0, size=10,
                            op=OpType.READ, timestamp=0.0)
        with pytest.raises(ValueError, match="unknown inode"):
            Trace("t", [rec], {})

    def test_read_past_eof_rejected(self):
        files = {1: FileInfo(inode=1, path="f", size_bytes=5)}
        rec = SyscallRecord(pid=1, fd=3, inode=1, offset=0, size=10,
                            op=OpType.READ, timestamp=0.0)
        with pytest.raises(ValueError, match="past EOF"):
            Trace("t", [rec], files)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Trace("", [], {})

    def test_empty_trace_ok(self):
        t = Trace("empty", [], {})
        assert t.duration == 0.0
        assert len(t) == 0


class TestStats:
    def test_basic_stats(self, tiny_trace):
        s = tiny_trace.stats()
        assert s.record_count == 3
        assert s.read_bytes == 3 * 4096
        assert s.write_bytes == 0
        assert s.file_count == 1
        assert len(s.think_times) == 2

    def test_think_times(self, tiny_trace):
        s = tiny_trace.stats()
        assert s.think_times[0] == pytest.approx(0.005)
        assert s.think_times[1] == pytest.approx(4.995)

    def test_footprint_in_decimal_mb(self):
        t = make_trace([(1, 0, 10, "read", 0.0)], file_sizes={1: 2_000_000})
        assert t.stats().footprint_mb == pytest.approx(2.0)

    def test_think_percentile(self, sparse_trace):
        s = sparse_trace.stats()
        assert s.think_percentile(50) == pytest.approx(30.0, abs=0.1)

    def test_percentile_of_empty(self):
        t = make_trace([(1, 0, 10, "read", 0.0)])
        assert t.stats().think_percentile(50) == 0.0


class TestComposition:
    def test_shifted(self, tiny_trace):
        shifted = tiny_trace.shifted(10.0)
        assert shifted.records[0].timestamp == pytest.approx(10.0)
        assert len(shifted) == len(tiny_trace)

    def test_shift_below_zero_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace.shifted(-100.0)

    def test_concat_orders_and_gaps(self):
        a = make_trace([(1, 0, 10, "read", 0.0)], name="a")
        b = make_trace([(2, 0, 10, "read", 0.0)], name="b")
        c = a.concat(b, gap=5.0)
        assert c.name == "a+b"
        assert len(c) == 2
        assert c.records[1].timestamp >= a.duration + 5.0
        assert set(c.files) == {1, 2}

    def test_concat_conflicting_sizes_rejected(self):
        a = make_trace([(1, 0, 10, "read", 0.0)], file_sizes={1: 10})
        b = make_trace([(1, 0, 99, "read", 0.0)], file_sizes={1: 99})
        with pytest.raises(ValueError, match="conflicting"):
            a.concat(b)

    def test_merged_interleaves(self):
        a = make_trace([(1, 0, 10, "read", 0.0), (1, 10, 10, "read", 10.0)],
                       name="a")
        b = make_trace([(2, 0, 10, "read", 5.0)], name="b")
        m = a.merged(b)
        assert [r.timestamp for r in m.records] == [0.0, 5.0, 10.0]

    def test_renumbered(self):
        a = make_trace([(1, 0, 10, "read", 0.0)])
        r = a.renumbered(100)
        assert set(r.files) == {101}
        assert r.records[0].inode == 101

    def test_max_inode(self):
        a = make_trace([(3, 0, 10, "read", 0.0), (7, 0, 10, "read", 1.0)])
        assert a.max_inode() == 7
        assert Trace("e", [], {}).max_inode() == 0

    def test_data_records_skips_metadata_calls(self):
        files = {1: FileInfo(inode=1, path="f", size_bytes=100)}
        recs = [
            SyscallRecord(pid=1, fd=3, inode=1, offset=0, size=0,
                          op=OpType.OPEN, timestamp=0.0),
            SyscallRecord(pid=1, fd=3, inode=1, offset=0, size=10,
                          op=OpType.READ, timestamp=0.1),
        ]
        t = Trace("t", recs, files)
        assert len(t.data_records()) == 1
