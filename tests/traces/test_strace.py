"""Unit tests for the modified-strace collector parser."""

import pytest

from repro.traces.record import OpType, SyscallRecord
from repro.traces.strace import (
    StraceParseError,
    format_strace_line,
    parse_strace_file,
    parse_strace_line,
    parse_strace_text,
)

GOOD = ("4242 1183900000.123456 read(3</src/main.c>) "
        "inode=1001 offset=8192 size=4096 = 4096 <0.000213>")


class TestLineParsing:
    def test_good_line(self):
        rec, path = parse_strace_line(GOOD)
        assert rec.pid == 4242
        assert rec.fd == 3
        assert rec.inode == 1001
        assert rec.offset == 8192
        assert rec.size == 4096
        assert rec.op is OpType.READ
        assert rec.timestamp == pytest.approx(1183900000.123456)
        assert rec.duration == pytest.approx(0.000213)
        assert path == "src/main.c"

    def test_line_without_path(self):
        rec, path = parse_strace_line(
            "1 2.5 write(4) inode=7 offset=0 size=100 = 100 <0.01>")
        assert rec.op is OpType.WRITE
        assert path is None

    def test_short_return_truncates_size(self):
        rec, _ = parse_strace_line(
            "1 2.5 read(4) inode=7 offset=0 size=100 = 60 <0.01>")
        assert rec.size == 60

    def test_failed_call_is_zero_size(self):
        rec, _ = parse_strace_line(
            "1 2.5 read(4) inode=7 offset=0 size=100 = -1 <0.01>")
        assert rec.size == 0

    def test_open_close_have_zero_size(self):
        rec, _ = parse_strace_line(
            "1 2.5 open(4) inode=7 offset=0 size=0 = 4 <0.01>")
        assert rec.op is OpType.OPEN
        assert rec.size == 0

    def test_garbage_rejected(self):
        with pytest.raises(StraceParseError):
            parse_strace_line("mmap(NULL, 4096) = 0x7f")


class TestTextParsing:
    TEXT = """
# collector output
10 100.0 open(3</a>) inode=1 offset=0 size=0 = 3 <0.0001>
10 100.1 read(3</a>) inode=1 offset=0 size=4096 = 4096 <0.0002>
10 100.2 read(3</a>) inode=1 offset=4096 size=4096 = 4096 <0.0002>
11 100.3 write(4</b>) inode=2 offset=0 size=100 = 100 <0.0001>
"""

    def test_parse_text(self):
        trace = parse_strace_text(self.TEXT, name="demo")
        assert trace.name == "demo"
        assert len(trace) == 4
        assert len(trace.files) == 2
        assert trace.files[1].path == "a"

    def test_timestamps_rebased(self):
        trace = parse_strace_text(self.TEXT)
        assert trace.records[0].timestamp == 0.0
        assert trace.records[-1].timestamp == pytest.approx(0.3)

    def test_file_sizes_inferred(self):
        trace = parse_strace_text(self.TEXT)
        assert trace.files[1].size_bytes == 8192
        assert trace.files[2].size_bytes == 100

    def test_explicit_file_sizes_override(self):
        trace = parse_strace_text(self.TEXT, file_sizes={1: 1_000_000})
        assert trace.files[1].size_bytes == 1_000_000

    def test_out_of_order_lines_sorted(self):
        text = ("1 5.0 read(3) inode=1 offset=0 size=10 = 10 <0.1>\n"
                "1 2.0 read(3) inode=1 offset=0 size=10 = 10 <0.1>\n")
        trace = parse_strace_text(text)
        assert trace.records[0].timestamp == 0.0
        assert trace.records[1].timestamp == pytest.approx(3.0)

    def test_bad_line_reports_number(self):
        text = "1 1.0 read(3) inode=1 offset=0 size=10 = 10 <0.1>\njunk\n"
        with pytest.raises(StraceParseError, match="line 2"):
            parse_strace_text(text)

    def test_empty_text(self):
        trace = parse_strace_text("")
        assert len(trace) == 0

    def test_parse_file(self, tmp_path):
        p = tmp_path / "capture.strace"
        p.write_text(self.TEXT)
        trace = parse_strace_file(p)
        assert trace.name == "capture"
        assert len(trace) == 4


class TestFormatting:
    def test_format_parse_round_trip(self):
        rec = SyscallRecord(pid=9, fd=5, inode=77, offset=512, size=256,
                            op=OpType.READ, timestamp=1.5, duration=0.002)
        line = format_strace_line(rec, path="x/y", epoch=1000.0)
        parsed, path = parse_strace_line(line)
        assert path == "x/y"
        assert parsed.pid == rec.pid
        assert parsed.inode == rec.inode
        assert parsed.offset == rec.offset
        assert parsed.size == rec.size
        assert parsed.timestamp == pytest.approx(1001.5)

    def test_whole_trace_round_trip(self, tiny_trace):
        lines = [format_strace_line(r, epoch=100.0)
                 for r in tiny_trace.records]
        trace = parse_strace_text("\n".join(lines), name="rt")
        assert len(trace) == len(tiny_trace)
        for a, b in zip(trace.records, tiny_trace.records, strict=True):
            assert a.inode == b.inode
            assert a.offset == b.offset
            assert a.size == b.size
            assert a.timestamp == pytest.approx(b.timestamp, abs=1e-5)


class TestStructuredErrors:
    def test_error_carries_lineno_and_snippet(self):
        text = ("1 1.0 read(3) inode=1 offset=0 size=10 = 10 <0.1>\n"
                "this line is junk\n")
        with pytest.raises(StraceParseError) as info:
            parse_strace_text(text)
        assert info.value.lineno == 2
        assert info.value.snippet == "this line is junk"
        assert "line 2" in str(info.value)
        assert "junk" in str(info.value)

    def test_long_snippet_truncated(self):
        text = "x" * 500 + "\n"
        with pytest.raises(StraceParseError) as info:
            parse_strace_text(text)
        assert len(info.value.snippet) <= 64


class TestSkipMalformed:
    GOOD_1 = "1 1.0 read(3</a>) inode=1 offset=0 size=10 = 10 <0.1>"
    GOOD_2 = "1 2.0 read(3</a>) inode=1 offset=10 size=10 = 10 <0.1>"

    def test_lossy_mode_returns_trace_and_skipped(self):
        text = f"{self.GOOD_1}\ngarbage here\n{self.GOOD_2}\n"
        trace, skipped = parse_strace_text(text, skip_malformed=True)
        assert len(trace) == 2
        assert len(skipped) == 1
        assert skipped[0].lineno == 2
        assert skipped[0].snippet == "garbage here"

    def test_clean_input_skips_nothing(self):
        text = f"{self.GOOD_1}\n{self.GOOD_2}\n"
        trace, skipped = parse_strace_text(text, skip_malformed=True)
        assert skipped == []
        assert len(trace) == 2

    def test_strict_mode_unchanged_signature(self):
        trace = parse_strace_text(f"{self.GOOD_1}\n")
        assert len(trace) == 1
