"""Tests for the trace-analysis tool and the parallel-make generator."""

import pytest

from repro.traces.analysis import Distribution, analyze_trace
from repro.traces.synth import generate_mplayer
from repro.traces.synth.make import MakeParams, generate_make
from tests.conftest import make_trace


class TestDistribution:
    def test_of_values(self):
        d = Distribution.of([1.0, 2.0, 3.0, 4.0])
        assert d.count == 4
        assert d.mean == pytest.approx(2.5)
        assert d.p50 == pytest.approx(2.5)
        assert d.maximum == 4.0

    def test_empty(self):
        d = Distribution.of([])
        assert d.count == 0
        assert d.mean == 0.0


class TestAnalyzeTrace:
    def test_structure_of_known_trace(self):
        # Two bursts: dense pair, 30 s gap, single read.
        trace = make_trace([
            (1, 0, 4096, "read", 0.0),
            (1, 4096, 4096, "read", 0.001),
            (1, 8192, 4096, "read", 30.0),
        ])
        a = analyze_trace(trace)
        assert a.burst_count == 2
        assert a.syscalls == 3
        assert a.pids == 1
        assert a.inter_burst_thinks.count == 1
        assert a.inter_burst_thinks.maximum == pytest.approx(30.0,
                                                             abs=0.1)
        assert a.disk_timeout_gaps == 1.0
        assert a.wnic_dozeable_gaps == 1.0

    def test_render_contains_key_lines(self):
        a = analyze_trace(generate_mplayer(seed=3))
        text = a.render()
        assert "trace mplayer" in text
        assert "bursts:" in text
        assert "gap structure" in text

    def test_mplayer_structure_as_documented(self):
        a = analyze_trace(generate_mplayer(seed=3))
        # ~1 MB refill bursts, ~7.5 s gaps, WNIC-dozeable, no disk
        # timeouts — the §3.3.2 premise.
        assert a.burst_bytes.p50 == pytest.approx(1_048_576, rel=0.2)
        assert a.inter_burst_thinks.p50 == pytest.approx(7.5, abs=1.0)
        assert a.wnic_dozeable_gaps > 0.9
        assert a.disk_timeout_gaps == 0.0


class TestParallelMake:
    def test_validation(self):
        with pytest.raises(ValueError):
            MakeParams(jobs=0)

    def test_table3_footprint_preserved(self):
        stats = generate_make(seed=7, params=MakeParams(jobs=4)).stats()
        assert stats.file_count == 2579
        assert stats.footprint_mb == pytest.approx(72.5, abs=0.05)

    def test_multiple_pids(self):
        trace = generate_make(seed=7, params=MakeParams(jobs=4))
        assert len(trace.pids) == 4

    def test_wall_time_compresses(self):
        seq = generate_make(seed=7).stats().duration
        par = generate_make(seed=7,
                            params=MakeParams(jobs=4)).stats().duration
        assert par < seq / 2.0
        assert par > seq / 8.0

    def test_same_record_volume(self):
        seq = generate_make(seed=7)
        par = generate_make(seed=7, params=MakeParams(jobs=4))
        assert len(par) == len(seq)
        assert sum(r.size for r in par.data_records()) == \
            sum(r.size for r in seq.data_records())

    def test_records_time_ordered(self):
        trace = generate_make(seed=7, params=MakeParams(jobs=3))
        timestamps = [r.timestamp for r in trace.records]
        assert timestamps == sorted(timestamps)

    def test_parallel_trace_replays(self):
        from repro.core.policies import DiskOnlyPolicy
        from repro.core.simulator import ProgramSpec, ReplaySimulator
        from repro.experiments.validate import validate_run
        trace = generate_make(seed=7, params=MakeParams(jobs=4))
        result = ReplaySimulator([ProgramSpec(trace)], DiskOnlyPolicy(),
                                 seed=7).run()
        assert validate_run(result) == []

    def test_deterministic(self):
        a = generate_make(seed=9, params=MakeParams(jobs=4))
        b = generate_make(seed=9, params=MakeParams(jobs=4))
        assert a.records == b.records
