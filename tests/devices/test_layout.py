"""Unit and property tests for the disk layout."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.devices.layout import BLOCK_SIZE, DiskLayout, bytes_to_blocks


class TestBytesToBlocks:
    def test_exact(self):
        assert bytes_to_blocks(BLOCK_SIZE * 3) == 3

    def test_rounds_up(self):
        assert bytes_to_blocks(1) == 1
        assert bytes_to_blocks(BLOCK_SIZE + 1) == 2

    def test_zero(self):
        assert bytes_to_blocks(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_blocks(-1)


class TestPlacement:
    def test_sequential_registration(self):
        layout = DiskLayout(seed=1, max_gap_blocks=0)
        a = layout.add_file(1, 10 * BLOCK_SIZE)
        b = layout.add_file(2, 4 * BLOCK_SIZE)
        assert a.start_block == 0
        assert b.start_block == a.end_block    # no gap configured

    def test_gaps_are_bounded(self):
        layout = DiskLayout(seed=1, max_gap_blocks=8)
        prev_end = layout.add_file(1, BLOCK_SIZE).end_block
        for inode in range(2, 50):
            ext = layout.add_file(inode, BLOCK_SIZE)
            gap = ext.start_block - prev_end
            assert 0 <= gap <= 8
            prev_end = ext.end_block

    def test_zero_byte_file_still_gets_a_block(self):
        layout = DiskLayout(seed=1)
        assert layout.add_file(1, 0).nblocks == 1

    def test_reregistration_same_size_is_idempotent(self):
        layout = DiskLayout(seed=1)
        a = layout.add_file(1, 5 * BLOCK_SIZE)
        b = layout.add_file(1, 5 * BLOCK_SIZE)
        assert a == b
        assert len(layout) == 1

    def test_reregistration_different_size_rejected(self):
        layout = DiskLayout(seed=1)
        layout.add_file(1, 5 * BLOCK_SIZE)
        with pytest.raises(ValueError):
            layout.add_file(1, 50 * BLOCK_SIZE)

    def test_capacity_enforced(self):
        layout = DiskLayout(seed=1, max_gap_blocks=0, capacity_blocks=10)
        layout.add_file(1, 8 * BLOCK_SIZE)
        with pytest.raises(ValueError):
            layout.add_file(2, 8 * BLOCK_SIZE)

    def test_deterministic_under_seed(self):
        def build(seed):
            layout = DiskLayout(seed=seed)
            return [layout.add_file(i, i * BLOCK_SIZE).start_block
                    for i in range(1, 30)]
        assert build(5) == build(5)
        assert build(5) != build(6)


class TestBlockOf:
    def test_block_of_offsets(self):
        layout = DiskLayout(seed=1, max_gap_blocks=0)
        layout.add_file(1, 10 * BLOCK_SIZE)
        assert layout.block_of(1, 0) == 0
        assert layout.block_of(1, BLOCK_SIZE) == 1
        assert layout.block_of(1, BLOCK_SIZE - 1) == 0

    def test_offset_past_eof_rejected(self):
        layout = DiskLayout(seed=1)
        layout.add_file(1, BLOCK_SIZE)
        with pytest.raises(ValueError):
            layout.block_of(1, 2 * BLOCK_SIZE)

    def test_unknown_inode_raises(self):
        with pytest.raises(KeyError):
            DiskLayout(seed=1).get(99)

    def test_contains(self):
        layout = DiskLayout(seed=1)
        layout.add_file(1, BLOCK_SIZE)
        assert 1 in layout
        assert 2 not in layout


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1_000_000), min_size=1, max_size=60),
           st.integers(0, 2 ** 31))
    def test_no_two_files_overlap(self, sizes, seed):
        layout = DiskLayout(seed=seed, max_gap_blocks=16)
        for inode, size in enumerate(sizes, start=1):
            layout.add_file(inode, size)
        span = layout.span()
        # span() is ordered by start block: each file must end before
        # the next begins.
        for i in range(len(span) - 1):
            assert span[i][1] + span[i][2] <= span[i + 1][1]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 100_000), min_size=1, max_size=40))
    def test_used_blocks_bounds_everything(self, sizes):
        layout = DiskLayout(seed=3)
        for inode, size in enumerate(sizes, start=1):
            ext = layout.add_file(inode, size)
            assert ext.end_block <= layout.used_blocks
