"""Unit tests for PSM-mode data transfers (§1.1 characteristic 1)."""

import pytest

from repro.devices.specs import AIRONET_350
from repro.devices.wnic import Direction, WirelessNic, WnicMode

PSM_SPEC = AIRONET_350.with_psm_transfers()


class TestEligibility:
    def test_disabled_by_default(self):
        nic = WirelessNic(AIRONET_350)
        r = nic.service(0.0, 4096)
        assert r.woke_up                    # default model wakes to CAM

    def test_small_request_stays_in_psm(self):
        nic = WirelessNic(PSM_SPEC)
        r = nic.service(0.0, 4096)
        assert not r.woke_up
        assert nic.state == WnicMode.PSM.value
        assert nic.wakeup_count == 0

    def test_large_request_still_wakes(self):
        nic = WirelessNic(PSM_SPEC)
        r = nic.service(0.0, 1_000_000)
        assert r.woke_up
        assert nic.state == WnicMode.CAM.value

    def test_cam_card_ignores_fast_path(self):
        nic = WirelessNic(PSM_SPEC, initially_psm=False)
        r = nic.service(0.0, 4096)
        assert r.first_byte == pytest.approx(0.0 + 1e-3)   # no beacon


class TestPsmTransferModel:
    def test_beacon_wait_before_first_byte(self):
        nic = WirelessNic(PSM_SPEC)
        r = nic.service(0.05, 4096)
        # next beacon at 0.1 s, plus link latency.
        assert r.first_byte == pytest.approx(0.1 + 1e-3)

    def test_derated_bandwidth(self):
        nic = WirelessNic(PSM_SPEC)
        r = nic.service(0.0, 8192)
        transfer = r.completion - r.first_byte
        expected = 8192 / (PSM_SPEC.bandwidth_bps * 0.5)
        assert transfer == pytest.approx(expected)

    def test_energy_uses_psm_powers(self):
        nic = WirelessNic(PSM_SPEC)
        r = nic.service(0.0, 8192)
        transfer = r.completion - r.first_byte
        wait = r.first_byte - r.arrival
        expected = wait * 0.39 + transfer * 1.42
        assert r.energy == pytest.approx(expected, rel=1e-6)

    def test_small_transfer_cheaper_than_cam_wakeup(self):
        """The whole point: a tiny fetch shouldn't pay the 1 J mode
        round-trip."""
        psm = WirelessNic(PSM_SPEC).service(0.0, 4096)
        cam = WirelessNic(AIRONET_350).service(0.0, 4096)
        assert psm.energy < cam.energy

    def test_send_direction_power(self):
        recv = WirelessNic(PSM_SPEC).service(0.0, 8192,
                                             direction=Direction.RECV)
        send = WirelessNic(PSM_SPEC).service(0.0, 8192,
                                             direction=Direction.SEND)
        assert send.energy > recv.energy


class TestEstimateParity:
    def test_estimate_uses_fast_path(self):
        nic = WirelessNic(PSM_SPEC)
        t, e = nic.estimate_service(4096)
        # expected half-beacon wait, no mode-switch cost
        assert t < PSM_SPEC.psm_to_cam_time + 0.2
        assert e < PSM_SPEC.psm_to_cam_energy

    def test_estimate_large_request_unchanged(self):
        a = WirelessNic(PSM_SPEC).estimate_service(1_000_000)
        b = WirelessNic(AIRONET_350).estimate_service(1_000_000)
        assert a == b


class TestSpecValidation:
    def test_with_psm_transfers(self):
        assert PSM_SPEC.psm_transfer_enabled
        assert not PSM_SPEC.with_psm_transfers(False).psm_transfer_enabled

    def test_bad_factor_rejected(self):
        import dataclasses
        with pytest.raises(ValueError):
            dataclasses.replace(AIRONET_350, psm_bandwidth_factor=0.0)
        with pytest.raises(ValueError):
            dataclasses.replace(AIRONET_350, psm_bandwidth_factor=1.5)

    def test_bad_beacon_rejected(self):
        import dataclasses
        with pytest.raises(ValueError):
            dataclasses.replace(AIRONET_350, beacon_interval=0.0)
