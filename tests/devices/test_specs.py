"""Tables 1 and 2: the spec constants must match the paper exactly."""

import dataclasses

import pytest

from repro.devices.specs import (
    AIRONET_350,
    HITACHI_DK23DA,
    WNIC_RATES_BPS,
)
from repro.sim.clock import GB


class TestTable1:
    """Paper Table 1 — Hitachi DK23DA."""

    def test_power_states(self):
        assert HITACHI_DK23DA.active_power == 2.0
        assert HITACHI_DK23DA.idle_power == 1.6
        assert HITACHI_DK23DA.standby_power == 0.15

    def test_transition_costs(self):
        assert HITACHI_DK23DA.spinup_energy == 5.0
        assert HITACHI_DK23DA.spindown_energy == 2.94
        assert HITACHI_DK23DA.spinup_time == 1.6
        assert HITACHI_DK23DA.spindown_time == 2.3

    def test_geometry(self):
        # §3.1: 30 GB, 35 MB/s peak, 13 ms seek, 7 ms rotation.
        assert HITACHI_DK23DA.capacity_bytes == 30 * GB
        assert HITACHI_DK23DA.bandwidth_bps == pytest.approx(35e6)
        assert HITACHI_DK23DA.avg_seek_time == pytest.approx(13e-3)
        assert HITACHI_DK23DA.avg_rotation_time == pytest.approx(7e-3)

    def test_access_time_is_burst_threshold(self):
        assert HITACHI_DK23DA.access_time == pytest.approx(20e-3)

    def test_spindown_timeout_is_laptop_mode_default(self):
        assert HITACHI_DK23DA.spindown_timeout == 20.0

    def test_breakeven_time(self):
        # (5 + 2.94) J / (1.6 - 0.15) W ~ 5.48 s — the §1.1 quantity.
        assert HITACHI_DK23DA.breakeven_time == pytest.approx(
            7.94 / 1.45, rel=1e-6)


class TestTable2:
    """Paper Table 2 — Cisco Aironet 350."""

    def test_psm_powers(self):
        assert AIRONET_350.psm_idle_power == 0.39
        assert AIRONET_350.psm_recv_power == 1.42
        assert AIRONET_350.psm_send_power == 2.48

    def test_cam_powers(self):
        assert AIRONET_350.cam_idle_power == 1.41
        assert AIRONET_350.cam_recv_power == 2.61
        assert AIRONET_350.cam_send_power == 3.69

    def test_mode_switch_costs(self):
        assert AIRONET_350.cam_to_psm_time == 0.41
        assert AIRONET_350.cam_to_psm_energy == 0.53
        assert AIRONET_350.psm_to_cam_time == 0.40
        assert AIRONET_350.psm_to_cam_energy == 0.51

    def test_mode_switch_cheaper_than_disk_spin(self):
        # §1.1's key observation.
        assert AIRONET_350.cam_to_psm_energy < HITACHI_DK23DA.spindown_energy
        assert AIRONET_350.cam_to_psm_time < HITACHI_DK23DA.spindown_time

    def test_default_link(self):
        assert AIRONET_350.bandwidth_bps == pytest.approx(11e6 / 8)
        assert AIRONET_350.cam_timeout == pytest.approx(0.8)

    def test_802_11b_rates(self):
        assert [r * 8 / 1e6 for r in WNIC_RATES_BPS] == \
            pytest.approx([1.0, 2.0, 5.5, 11.0])


class TestValidation:
    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(HITACHI_DK23DA, idle_power=-1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(HITACHI_DK23DA, bandwidth_bps=0.0)

    def test_zero_timeout_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(HITACHI_DK23DA, spindown_timeout=0.0)

    def test_wnic_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            AIRONET_350.with_link(latency=-1e-3)


class TestDerivation:
    def test_with_timeout(self):
        spec = HITACHI_DK23DA.with_timeout(5.0)
        assert spec.spindown_timeout == 5.0
        assert spec.active_power == HITACHI_DK23DA.active_power

    def test_with_link_partial(self):
        spec = AIRONET_350.with_link(latency=10e-3)
        assert spec.latency == pytest.approx(10e-3)
        assert spec.bandwidth_bps == AIRONET_350.bandwidth_bps

    def test_with_link_both(self):
        spec = AIRONET_350.with_link(latency=2e-3, bandwidth_bps=250e3)
        assert spec.latency == pytest.approx(2e-3)
        assert spec.bandwidth_bps == pytest.approx(250e3)

    def test_breakeven_infinite_when_standby_not_cheaper(self):
        spec = dataclasses.replace(HITACHI_DK23DA, standby_power=1.6)
        assert spec.breakeven_time == float("inf")
