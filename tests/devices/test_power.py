"""Unit tests for the generic power-state machine."""

import pytest

from repro.devices.power import PowerStateMachine, StateSpec, TransitionSpec


def machine(initial="low"):
    return PowerStateMachine(
        name="dev",
        states=[StateSpec("low", 0.5), StateSpec("high", 2.0)],
        transitions=[
            TransitionSpec("low", "high", time=1.0, energy=3.0),
            TransitionSpec("high", "low", time=0.5, energy=1.0),
        ],
        initial_state=initial,
    )


class TestConstruction:
    def test_duplicate_states_rejected(self):
        with pytest.raises(ValueError):
            PowerStateMachine("d", [StateSpec("a", 1), StateSpec("a", 2)],
                              [], "a")

    def test_unknown_initial_rejected(self):
        with pytest.raises(ValueError):
            PowerStateMachine("d", [StateSpec("a", 1)], [], "b")

    def test_transition_to_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            PowerStateMachine("d", [StateSpec("a", 1)],
                              [TransitionSpec("a", "zz", 0, 0)], "a")

    def test_negative_state_power_rejected(self):
        with pytest.raises(ValueError):
            StateSpec("a", -1.0)

    def test_negative_transition_cost_rejected(self):
        with pytest.raises(ValueError):
            TransitionSpec("a", "b", time=-1, energy=0)


class TestEnergyAccounting:
    def test_idle_integration(self):
        m = machine()
        m.advance_to(10.0)
        assert m.energy(10.0) == pytest.approx(5.0)   # 0.5 W x 10 s

    def test_transition_adds_impulse_and_switches_draw(self):
        m = machine()
        done = m.transition(2.0, "high")
        assert done == pytest.approx(3.0)
        m.advance_to(5.0)
        # 0.5*2 (low) + 3.0 (impulse covering [2,3)) + 2.0*2 (high
        # from transition completion at t=3)
        assert m.energy(5.0) == pytest.approx(1.0 + 3.0 + 4.0)
        assert m.state == "high"
        assert m.busy_until == pytest.approx(3.0)

    def test_illegal_transition_rejected(self):
        m = machine()
        with pytest.raises(ValueError):
            m.transition(0.0, "low")   # no self-loop defined

    def test_residency(self):
        m = machine()
        m.transition(4.0, "high")
        res = m.residency(10.0)
        assert res["low"] == pytest.approx(4.0)
        assert res["high"] == pytest.approx(6.0)


class TestClone:
    def test_clone_is_independent(self):
        m = machine()
        m.advance_to(5.0)
        c = m.clone()
        c.transition(5.0, "high")
        c.advance_to(20.0)
        assert m.state == "low"
        assert c.state == "high"
        assert m.energy(5.0) == pytest.approx(2.5)
        assert c.energy(20.0) > m.energy(5.0)

    def test_clone_preserves_operating_point(self):
        m = machine()
        m.transition(1.0, "high")
        m.note_activity(3.5)
        m.advance_to(4.0)
        c = m.clone()
        assert c.state == m.state
        assert c.last_activity == m.last_activity
        assert c.busy_until == m.busy_until
        # The clone's meter is fresh (delta semantics): advancing both
        # by the same interval must accrue identical energy.
        m0, c0 = m.energy(4.0), c.energy(4.0)
        m.advance_to(10.0)
        c.advance_to(10.0)
        assert m.energy(10.0) - m0 == pytest.approx(c.energy(10.0) - c0)


class TestActivityTracking:
    def test_note_activity_monotone(self):
        m = machine()
        m.note_activity(5.0)
        m.note_activity(3.0)
        assert m.last_activity == 5.0

    def test_mark_busy_until_monotone(self):
        m = machine()
        m.mark_busy_until(7.0)
        m.mark_busy_until(2.0)
        assert m.busy_until == 7.0

    def test_advance_clamps_backwards_time(self):
        m = machine()
        m.advance_to(10.0)
        m.advance_to(3.0)      # clamped, no error
        assert m.meter.last_time == 10.0
