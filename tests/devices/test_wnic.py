"""Unit tests for the wireless NIC model."""

import pytest

from repro.devices.specs import AIRONET_350
from repro.devices.wnic import Direction, WirelessNic, WnicMode
from repro.sim.clock import KB


class TestInitialState:
    def test_starts_psm_by_default(self):
        assert WirelessNic().state == WnicMode.PSM.value

    def test_can_start_cam(self):
        assert WirelessNic(initially_psm=False).state == WnicMode.CAM.value


class TestDpm:
    def test_dozes_after_cam_timeout(self):
        nic = WirelessNic(initially_psm=False)
        nic.advance_to(0.7)
        assert nic.state == WnicMode.CAM.value
        nic.advance_to(0.9)
        assert nic.state == WnicMode.PSM.value
        assert nic.doze_count == 1

    def test_doze_energy_accounting(self):
        nic = WirelessNic(initially_psm=False)
        nic.advance_to(10.0)
        # 0.8 s CAM idle + doze impulse (covering its 0.41 s window)
        # + PSM from 1.21 s on.
        expected = 0.8 * 1.41 + 0.53 + (10.0 - 1.21) * 0.39
        assert nic.energy(10.0) == pytest.approx(expected, rel=1e-6)

    def test_activity_defers_doze(self):
        nic = WirelessNic(initially_psm=False)
        nic.note_activity(0.5)
        nic.advance_to(1.2)
        assert nic.state == WnicMode.CAM.value
        nic.advance_to(1.4)
        assert nic.state == WnicMode.PSM.value


class TestService:
    def test_wakeup_on_demand(self):
        nic = WirelessNic()
        r = nic.service(0.0, 64 * KB)
        assert r.woke_up
        assert r.start == pytest.approx(0.40)
        assert r.first_byte == pytest.approx(0.40 + 1e-3)
        transfer = 64 * KB / AIRONET_350.bandwidth_bps
        assert r.completion == pytest.approx(0.401 + transfer)
        expected = (0.51                      # wake impulse
                    + 1e-3 * 1.41             # latency at CAM idle
                    + transfer * 2.61)        # recv
        assert r.energy == pytest.approx(expected, rel=1e-6)

    def test_send_uses_send_power(self):
        recv = WirelessNic(initially_psm=False).service(
            0.0, 1_000_000, direction=Direction.RECV)
        send = WirelessNic(initially_psm=False).service(
            0.0, 1_000_000, direction=Direction.SEND)
        assert send.energy > recv.energy
        ratio = (send.energy - 1e-3 * 1.41) / (recv.energy - 1e-3 * 1.41)
        assert ratio == pytest.approx(3.69 / 2.61, rel=1e-3)

    def test_warm_service_skips_wakeup(self):
        nic = WirelessNic(initially_psm=False)
        r = nic.service(0.2, 4096)
        assert not r.woke_up
        assert r.start == pytest.approx(0.2)

    def test_requests_queue(self):
        nic = WirelessNic(initially_psm=False)
        r1 = nic.service(0.0, 10_000_000)
        r2 = nic.service(0.0, 10_000_000)
        assert r2.start >= r1.completion

    def test_stays_cam_after_service(self):
        nic = WirelessNic()
        r = nic.service(0.0, 4096)
        assert nic.state == WnicMode.CAM.value
        nic.advance_to(r.completion + 0.9)
        assert nic.state == WnicMode.PSM.value

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            WirelessNic().service(0.0, -5)

    def test_latency_sweep_scales_service(self):
        lo = WirelessNic(AIRONET_350.with_link(latency=0.0),
                         initially_psm=False).service(0.0, 4096)
        hi = WirelessNic(AIRONET_350.with_link(latency=20e-3),
                         initially_psm=False).service(0.0, 4096)
        assert hi.completion - lo.completion == pytest.approx(20e-3)

    def test_bandwidth_sweep_scales_transfer(self):
        fast = WirelessNic(AIRONET_350,
                           initially_psm=False).service(0.0, 1_375_000)
        slow_spec = AIRONET_350.with_link(bandwidth_bps=1e6 / 8)
        slow = WirelessNic(slow_spec,
                           initially_psm=False).service(0.0, 1_375_000)
        assert fast.completion - fast.first_byte == pytest.approx(1.0)
        assert slow.completion - slow.first_byte == pytest.approx(11.0)


class TestEstimate:
    def test_estimate_matches_service(self):
        nic = WirelessNic()
        t, e = nic.estimate_service(64 * KB)
        r = WirelessNic().service(0.0, 64 * KB)
        assert t == pytest.approx(r.completion)
        assert e == pytest.approx(r.energy, rel=1e-6)

    def test_estimate_does_not_mutate(self):
        nic = WirelessNic()
        nic.estimate_service(64 * KB)
        assert nic.state == WnicMode.PSM.value
        assert nic.wakeup_count == 0

    def test_estimate_from_cam(self):
        nic = WirelessNic()
        t_psm, e_psm = nic.estimate_service(4096)
        t_cam, e_cam = nic.estimate_service(
            4096, from_state=WnicMode.CAM.value)
        assert t_psm - t_cam == pytest.approx(0.40)
        assert e_psm > e_cam
