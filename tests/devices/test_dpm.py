"""Unit tests for spin-down timeout policies and the sleep state."""

import pytest

from repro.devices.disk import DiskState, HardDisk
from repro.devices.dpm import AdaptiveTimeout, FixedTimeout
from repro.devices.specs import HITACHI_DK23DA


class TestFixedTimeout:
    def test_constant(self):
        policy = FixedTimeout(20.0)
        assert policy.timeout() == 20.0
        policy.observe_quiet_period(1.0, 5.5)   # ignored
        assert policy.timeout() == 20.0

    def test_clone_is_self(self):
        policy = FixedTimeout(20.0)
        assert policy.clone() is policy

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedTimeout(0.0)


class TestAdaptiveTimeout:
    def test_grows_after_premature_spindown(self):
        policy = AdaptiveTimeout(initial=20.0, ceiling=120.0)
        policy.observe_quiet_period(quiet=2.0, breakeven=5.5)
        assert policy.timeout() == 40.0
        assert policy.premature_count == 1

    def test_shrinks_after_long_quiet(self):
        policy = AdaptiveTimeout(initial=20.0, floor=2.0)
        policy.observe_quiet_period(quiet=60.0, breakeven=5.5)
        assert policy.timeout() == 10.0
        assert policy.profitable_count == 1

    def test_moderate_quiet_leaves_timeout(self):
        policy = AdaptiveTimeout(initial=20.0)
        policy.observe_quiet_period(quiet=10.0, breakeven=5.5)
        assert policy.timeout() == 20.0

    def test_bounds_respected(self):
        policy = AdaptiveTimeout(initial=20.0, floor=10.0, ceiling=30.0)
        for _ in range(5):
            policy.observe_quiet_period(1.0, 5.5)
        assert policy.timeout() == 30.0
        for _ in range(5):
            policy.observe_quiet_period(1000.0, 5.5)
        assert policy.timeout() == 10.0

    def test_clone_is_independent(self):
        policy = AdaptiveTimeout(initial=20.0)
        clone = policy.clone()
        clone.observe_quiet_period(1.0, 5.5)
        assert policy.timeout() == 20.0
        assert clone.timeout() == 40.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveTimeout(initial=1.0, floor=2.0)
        with pytest.raises(ValueError):
            AdaptiveTimeout(grow=1.0)
        with pytest.raises(ValueError):
            AdaptiveTimeout(shrink=1.5)
        with pytest.raises(ValueError):
            AdaptiveTimeout(profit_margin=0.5)


class TestDiskWithAdaptivePolicy:
    def test_premature_cycles_lengthen_timeout(self):
        """Requests every 22 s under a 20 s timeout make every quiet
        period premature (~2 s < 5.5 s break-even): the adaptive policy
        must back the timeout off until spin-downs stop."""
        policy = AdaptiveTimeout(initial=20.0, ceiling=120.0)
        disk = HardDisk(initially_standby=False, spindown_policy=policy)
        t = 0.0
        for _ in range(6):
            t += 22.0
            disk.service(t, 4096)
        assert policy.premature_count >= 1
        assert policy.timeout() > 20.0

    def test_adaptive_beats_fixed_on_hostile_cadence(self):
        """Energy with the adapted timeout must beat the fixed one on
        the pathological just-past-timeout request pattern."""
        def run(policy):
            disk = HardDisk(initially_standby=False,
                            spindown_policy=policy)
            t = 0.0
            for _ in range(20):
                t += 22.0
                disk.service(t, 4096)
            return disk.energy(t)
        fixed = run(FixedTimeout(20.0))
        adaptive = run(AdaptiveTimeout(initial=20.0))
        assert adaptive < fixed

    def test_clone_does_not_share_policy(self):
        policy = AdaptiveTimeout(initial=20.0)
        disk = HardDisk(initially_standby=False, spindown_policy=policy)
        clone = disk.clone()
        assert clone.spindown_policy is not disk.spindown_policy


class TestSleepState:
    def test_sleep_disabled_by_default(self):
        disk = HardDisk(initially_standby=False)
        disk.advance_to(10_000.0)
        assert disk.state == DiskState.STANDBY.value
        assert disk.sleep_count == 0

    def test_drops_to_sleep_after_standby_dwell(self):
        spec = HITACHI_DK23DA.with_sleep(60.0)
        disk = HardDisk(spec, initially_standby=False)
        disk.advance_to(50.0)                 # spun down at 20 s
        assert disk.state == DiskState.STANDBY.value
        disk.advance_to(200.0)
        assert disk.state == DiskState.SLEEP.value
        assert disk.sleep_count == 1

    def test_sleep_saves_energy_on_long_quiet(self):
        base = HardDisk(HITACHI_DK23DA, initially_standby=False)
        sleepy = HardDisk(HITACHI_DK23DA.with_sleep(60.0),
                          initially_standby=False)
        for d in (base, sleepy):
            d.advance_to(10_000.0)
        assert sleepy.energy(10_000.0) < base.energy(10_000.0)

    def test_wake_from_sleep_costs_hard_reset(self):
        spec = HITACHI_DK23DA.with_sleep(60.0)
        disk = HardDisk(spec, initially_standby=False)
        disk.advance_to(500.0)
        assert disk.state == DiskState.SLEEP.value
        r = disk.service(500.0, 4096)
        assert r.spun_up
        assert r.start == pytest.approx(500.0 + spec.wake_time)
        assert r.energy >= spec.wake_energy

    def test_estimate_from_sleep(self):
        spec = HITACHI_DK23DA.with_sleep(60.0)
        disk = HardDisk(spec)
        t_sleep, e_sleep = disk.estimate_service(
            4096, from_state=DiskState.SLEEP.value)
        t_standby, e_standby = disk.estimate_service(
            4096, from_state=DiskState.STANDBY.value)
        assert t_sleep > t_standby
        assert e_sleep > e_standby

    def test_force_spinup_from_sleep(self):
        spec = HITACHI_DK23DA.with_sleep(60.0)
        disk = HardDisk(spec, initially_standby=False)
        disk.advance_to(500.0)
        ready = disk.force_spinup(500.0)
        assert ready == pytest.approx(500.0 + spec.wake_time)
        assert disk.state == DiskState.IDLE.value
