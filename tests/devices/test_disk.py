"""Unit tests for the hard-disk model."""

import pytest

from repro.devices.disk import DiskState, HardDisk
from repro.devices.specs import HITACHI_DK23DA
from repro.sim.clock import MB


class TestInitialState:
    def test_starts_standby_by_default(self):
        assert HardDisk().state == DiskState.STANDBY.value

    def test_can_start_spinning(self):
        disk = HardDisk(initially_standby=False)
        assert disk.state == DiskState.IDLE.value


class TestDpm:
    def test_spins_down_after_timeout(self):
        disk = HardDisk(initially_standby=False)
        disk.advance_to(19.9)
        assert disk.state == DiskState.IDLE.value
        disk.advance_to(20.1)
        assert disk.state == DiskState.STANDBY.value
        assert disk.spindown_count == 1

    def test_spindown_happens_at_exact_deadline(self):
        disk = HardDisk(initially_standby=False)
        disk.advance_to(100.0)
        # Energy: 20 s idle + spin-down impulse (covering its 2.3 s
        # window) + standby from 22.3 s on.
        expected = 20.0 * 1.6 + 2.94 + (100.0 - 22.3) * 0.15
        assert disk.energy(100.0) == pytest.approx(expected, rel=1e-6)

    def test_activity_resets_timeout(self):
        disk = HardDisk(initially_standby=False)
        disk.advance_to(15.0)
        disk.note_activity(15.0)
        disk.advance_to(30.0)
        assert disk.state == DiskState.IDLE.value   # 15 s since activity
        disk.advance_to(40.0)
        assert disk.state == DiskState.STANDBY.value

    def test_spindown_deadline(self):
        disk = HardDisk(initially_standby=False)
        assert disk.spindown_deadline() == pytest.approx(20.0)
        disk.service(5.0, 4096)
        deadline = disk.spindown_deadline()
        assert deadline is not None and deadline > 25.0
        disk.advance_to(deadline + 1)
        assert disk.spindown_deadline() is None     # standby now


class TestService:
    def test_spinup_on_demand(self):
        disk = HardDisk()
        r = disk.service(0.0, 1 * MB)
        assert r.spun_up
        assert r.start == pytest.approx(1.6)        # spin-up time
        assert r.first_byte == pytest.approx(1.6 + 0.020)
        assert r.completion == pytest.approx(
            1.6 + 0.020 + 1 * MB / 35e6)
        # spin-up energy + active power over positioning + transfer
        active = (r.completion - 1.6) * 2.0
        assert r.energy == pytest.approx(5.0 + active, rel=1e-6)

    def test_warm_service_skips_spinup(self):
        disk = HardDisk(initially_standby=False)
        r = disk.service(1.0, 4096)
        assert not r.spun_up
        assert r.start == pytest.approx(1.0)

    def test_back_to_back_requests_queue(self):
        disk = HardDisk(initially_standby=False)
        r1 = disk.service(0.0, 10 * MB)
        r2 = disk.service(0.0, 10 * MB)
        assert r2.start >= r1.completion

    def test_returns_to_idle_after_service(self):
        disk = HardDisk()
        disk.service(0.0, 4096)
        assert disk.state == DiskState.IDLE.value

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            HardDisk().service(0.0, -1)


class TestPositioning:
    def test_unknown_position_costs_average(self):
        disk = HardDisk()
        assert disk.positioning_time(None) == pytest.approx(0.020)

    def test_contiguous_is_free(self):
        disk = HardDisk(initially_standby=False)
        disk.service(0.0, 8 * 4096, block=100, block_count=8)
        assert disk.positioning_time(108) == 0.0

    def test_near_seek_is_track_to_track(self):
        disk = HardDisk(initially_standby=False)
        disk.service(0.0, 4096, block=100, block_count=1)
        assert disk.positioning_time(110) == pytest.approx(1.5e-3)
        assert disk.positioning_time(101 + 64) == pytest.approx(1.5e-3)

    def test_far_seek_scales_with_distance(self):
        disk = HardDisk(initially_standby=False)
        disk.service(0.0, 4096, block=0, block_count=1)
        near = disk.positioning_time(10_000)
        far = disk.positioning_time(5_000_000)
        assert 1.5e-3 < near < far
        assert far <= disk.spec.avg_seek_time * 2.5 + 7e-3

    def test_full_span_seek_close_to_max(self):
        disk = HardDisk(initially_standby=False)
        disk.service(0.0, 4096, block=0, block_count=1)
        total_blocks = HITACHI_DK23DA.capacity_bytes // 4096
        t = disk.positioning_time(total_blocks)
        # k = (13 - 1.5) * 1.5 = 17.25 ms at full span, + t2t + rotation
        assert t == pytest.approx(1.5e-3 + 17.25e-3 + 7e-3, rel=1e-3)


class TestForceSpinup:
    def test_spins_up_to_idle(self):
        disk = HardDisk()
        ready = disk.force_spinup(0.0)
        assert ready == pytest.approx(1.6)
        assert disk.state == DiskState.IDLE.value
        assert disk.spinup_count == 1
        assert disk.energy(1.6) == pytest.approx(5.0 + 0.15 * 0,
                                                 abs=5.2)

    def test_noop_when_spinning(self):
        disk = HardDisk(initially_standby=False)
        assert disk.force_spinup(3.0) == 3.0
        assert disk.spinup_count == 0


class TestEstimate:
    def test_estimate_matches_service_warm(self):
        disk = HardDisk(initially_standby=False)
        t, e = disk.estimate_service(1 * MB)
        r = HardDisk(initially_standby=False).service(0.0, 1 * MB)
        assert t == pytest.approx(r.completion)
        assert e == pytest.approx(r.energy, rel=1e-6)

    def test_estimate_includes_spinup_when_standby(self):
        disk = HardDisk()
        t_cold, e_cold = disk.estimate_service(4096)
        t_warm, e_warm = disk.estimate_service(
            4096, from_state=DiskState.IDLE.value)
        assert t_cold - t_warm == pytest.approx(1.6)
        assert e_cold > e_warm + 5.0 - 1e-9

    def test_estimate_sequential_skips_seek(self):
        disk = HardDisk(initially_standby=False)
        t_seq, _ = disk.estimate_service(4096, sequential=True)
        t_rand, _ = disk.estimate_service(4096)
        assert t_rand - t_seq == pytest.approx(0.020)

    def test_estimate_does_not_mutate(self):
        disk = HardDisk()
        disk.estimate_service(1 * MB)
        assert disk.state == DiskState.STANDBY.value
        assert disk.spinup_count == 0

    def test_keep_alive_power(self):
        assert HardDisk().keep_alive_power() == 1.6
