"""BurstPlan fast path vs event loop: exact parity and refusal rules.

The session's fast path replays a pre-compiled :class:`BurstPlan` on a
flat clock instead of driving the discrete-event loop.  It is only a
performance shortcut, so for every figure scenario the fast-path result
must equal the event-loop result *field for field* (``RunResult`` is a
plain dataclass; ``==`` compares every float and dict exactly).

The fast path must also know when to stand down: multi-program replays,
fault schedules, and strict invariant checking all perturb the replay in
ways a frozen plan cannot express, so those sessions must report
``used_fast_path == False`` (and still produce identical results).
"""

from __future__ import annotations

import pytest

from repro.core.profile import profile_from_trace
from repro.core.session import SimulationSession
from repro.core.workload import ProgramSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import _standard_policies
from repro.faults.schedule import FaultSchedule, FaultSpec
from repro.traces.synth import (
    generate_acroread_profile_run,
    generate_acroread_search_run,
    generate_grep_make,
    generate_grep_make_xmms,
    generate_mplayer,
    generate_thunderbird,
)

FIGURE_IDS = ("fig1", "fig2", "fig3", "fig4", "fig5")


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig()


@pytest.fixture(scope="module")
def figure_setups(config):
    """fig id -> (programs factory, policy factories), mirroring golden."""
    seed = config.seed
    fig1 = generate_grep_make(seed)
    fig2 = generate_mplayer(seed)
    fig3 = generate_thunderbird(seed)
    fg4, bg4 = generate_grep_make_xmms(seed)
    search5 = generate_acroread_search_run(seed)
    stale5 = profile_from_trace(generate_acroread_profile_run(seed))
    return {
        "fig1": (lambda: [ProgramSpec(fig1)],
                 _standard_policies(profile_from_trace(fig1), config)),
        "fig2": (lambda: [ProgramSpec(fig2)],
                 _standard_policies(profile_from_trace(fig2), config)),
        "fig3": (lambda: [ProgramSpec(fig3)],
                 _standard_policies(profile_from_trace(fig3), config)),
        "fig4": (lambda: [ProgramSpec(fg4),
                          ProgramSpec(bg4, profiled=False,
                                      disk_pinned=True)],
                 _standard_policies(profile_from_trace(fg4), config,
                                    include_static=True)),
        "fig5": (lambda: [ProgramSpec(search5)],
                 _standard_policies(stale5, config,
                                    include_static=True)),
    }


def _session(programs, factory, config, **kwargs):
    return SimulationSession(programs, factory(),
                             disk_spec=config.disk_spec,
                             wnic_spec=config.wnic_spec,
                             memory_bytes=config.memory_bytes,
                             seed=config.seed, **kwargs)


@pytest.mark.parametrize("fig_id", FIGURE_IDS)
def test_fast_path_matches_event_loop(fig_id, config, figure_setups):
    """Exact RunResult equality between the two replay paths."""
    programs, policies = figure_setups[fig_id]
    fast_engaged = []
    for name, factory in policies.items():
        fast = _session(programs(), factory, config)
        slow = _session(programs(), factory, config).with_fast_path(False)
        fast_result = fast.run()
        slow_result = slow.run()
        assert not slow.used_fast_path
        assert fast_result == slow_result, f"{fig_id}/{name} diverged"
        fast_engaged.append(fast.used_fast_path)
    if fig_id in ("fig1", "fig4"):
        # fig1's grep+make trace contains writes (not plannable); fig4
        # interleaves two programs.  Both need the event loop.
        assert not any(fast_engaged)
    else:
        # Single-program all-read figures must exercise the shortcut.
        assert all(fast_engaged)


def test_faulted_session_refuses_fast_path(config, figure_setups):
    """A fault schedule perturbs devices mid-run; the plan cannot."""
    programs, policies = figure_setups["fig3"]
    factory = next(iter(policies.values()))
    spec = FaultSpec(outage_rate=0.001, spinup_fail_prob=0.2)
    baseline = _session(programs(), factory, config)
    faulted = _session(programs(), factory, config).with_faults(
        FaultSchedule(spec, seed=7))
    baseline.run()
    faulted.run()
    assert baseline.used_fast_path
    assert not faulted.used_fast_path


def test_strict_session_refuses_fast_path(config, figure_setups):
    """Strict invariant checking watches the event loop; no shortcut."""
    programs, policies = figure_setups["fig3"]
    factory = next(iter(policies.values()))
    strict = _session(programs(), factory, config).with_strict()
    relaxed = _session(programs(), factory, config)
    strict_result = strict.run()
    relaxed_result = relaxed.run()
    assert not strict.used_fast_path
    assert relaxed.used_fast_path
    assert strict_result == relaxed_result
