"""Shared fixtures for the FlexFetch reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.profile import profile_from_trace
from repro.core.simulator import ProgramSpec
from repro.devices.specs import AIRONET_350, HITACHI_DK23DA
from repro.traces.record import FileInfo, OpType, SyscallRecord
from repro.traces.trace import Trace


@pytest.fixture
def disk_spec():
    """The paper's Table 1 disk."""
    return HITACHI_DK23DA


@pytest.fixture
def wnic_spec():
    """The paper's Table 2 WNIC at default link settings."""
    return AIRONET_350


def make_trace(calls, *, name="t", file_sizes=None, pid=100):
    """Build a small validated trace from ``(inode, offset, size, op, ts)``
    tuples (op may be an OpType or 'read'/'write'); file sizes default to
    covering the largest access."""
    records = []
    max_touch: dict[int, int] = {}
    for inode, offset, size, op, ts in calls:
        op = OpType(op)
        records.append(SyscallRecord(pid=pid, fd=3, inode=inode,
                                     offset=offset, size=size, op=op,
                                     timestamp=ts, duration=0.0))
        max_touch[inode] = max(max_touch.get(inode, 0), offset + size)
    sizes = dict(max_touch)
    if file_sizes:
        for inode, size in file_sizes.items():
            sizes[inode] = max(sizes.get(inode, 0), size)
    files = {inode: FileInfo(inode=inode, path=f"f{inode}",
                             size_bytes=size)
             for inode, size in sizes.items()}
    return Trace(name, records, files)


@pytest.fixture
def tiny_trace():
    """Three reads of one file with distinct think gaps."""
    return make_trace([
        (1, 0, 4096, "read", 0.0),
        (1, 4096, 4096, "read", 0.005),   # same burst (< 20 ms gap)
        (1, 8192, 4096, "read", 5.0),     # new burst
    ])


@pytest.fixture
def sparse_trace():
    """Small reads separated by 30 s gaps (> disk spin-down timeout)."""
    calls = [(1, i * 65536, 65536, "read", i * 30.0) for i in range(6)]
    return make_trace(calls, file_sizes={1: 6 * 65536})


@pytest.fixture
def bursty_trace():
    """One dense 8 MB sequential burst (disk-friendly)."""
    calls = [(1, i * 131072, 131072, "read", i * 0.001) for i in range(64)]
    return make_trace(calls, file_sizes={1: 64 * 131072})


def program(trace, **kwargs):
    """Shorthand ProgramSpec."""
    return ProgramSpec(trace, **kwargs)


def profile_of(trace):
    """Shorthand profile extraction."""
    return profile_from_trace(trace)
