"""Tests for :mod:`repro.units` — aliases, conversions, tolerances."""

from __future__ import annotations

import pytest

from repro import units
from repro.sim.clock import MBps, Mbps, almost_equal, seconds_to_transfer


def test_aliases_are_plain_numbers_at_runtime() -> None:
    # Annotated aliases add zero runtime wrapping: a Seconds IS a float.
    duration: units.Seconds = 1.5
    size: units.Bytes = 4096
    assert isinstance(duration, float)
    assert isinstance(size, int)


def test_alias_metadata_names_the_dimension() -> None:
    assert units.SECOND.dimension == "time"
    assert units.JOULE.dimension == "energy"
    assert units.WATT.dimension == "power"
    assert units.BYTE.dimension == "data"
    assert units.BYTE_PER_SECOND.dimension == "bandwidth"


def test_conversions_match_the_paper_figures() -> None:
    # Aironet 350: 11 Mb/s; Hitachi DK23DA: 35 MB/s media rate.
    assert units.megabits_per_second(11.0) == pytest.approx(1_375_000.0)
    assert units.megabytes_per_second(35.0) == pytest.approx(35e6)
    assert units.milliseconds(13.0) == pytest.approx(0.013)
    assert units.microseconds(250.0) == pytest.approx(250e-6)


def test_clock_module_delegates_to_units() -> None:
    assert Mbps(11.0) == units.megabits_per_second(11.0)
    assert MBps(35.0) == units.megabytes_per_second(35.0)


def test_negative_bandwidth_rejected() -> None:
    with pytest.raises(ValueError):
        units.megabits_per_second(-1.0)
    with pytest.raises(ValueError):
        units.megabytes_per_second(-0.5)


def test_energy_of_is_power_times_time() -> None:
    assert units.energy_of(2.0, 3.5) == pytest.approx(7.0)
    with pytest.raises(ValueError):
        units.energy_of(2.0, -1.0)


def test_transfer_seconds_edge_cases() -> None:
    assert units.transfer_seconds(0, 0.0) == 0.0
    assert units.transfer_seconds(1_375_000, 1_375_000.0) == \
        pytest.approx(1.0)
    with pytest.raises(ValueError):
        units.transfer_seconds(-1, 1.0)
    with pytest.raises(ValueError):
        units.transfer_seconds(1, 0.0)
    assert seconds_to_transfer(2_750_000, Mbps(11.0)) == pytest.approx(2.0)


def test_approx_eq_mixed_tolerance() -> None:
    assert units.approx_eq(1.0, 1.0 + 1e-12)
    assert units.approx_eq(1e9, 1e9 + 0.5)          # relative kicks in
    assert not units.approx_eq(1.0, 1.001)
    assert units.approx_eq(0.0, 1e-10)              # absolute kicks in
    assert not units.approx_eq(0.0, 1e-6)


def test_is_zero() -> None:
    assert units.is_zero(0.0)
    assert units.is_zero(-1e-12)
    assert not units.is_zero(1e-3)
    assert units.is_zero(0.5, abs_tol=1.0)


def test_almost_equal_is_absolute_only() -> None:
    assert almost_equal(1e9, 1e9 + 1e-10)
    assert not almost_equal(1e9, 1e9 + 0.5)  # no relative slack here
