"""File discovery, orchestration, and CLI for :mod:`repro.lint`.

Invocation forms (all equivalent)::

    python -m repro.lint src/ tests/
    flexfetch lint src/ tests/
    from repro.lint import lint_paths; lint_paths(["src"])

Two passes run over every invocation:

* the **per-file** pass (rules R1-R5) checks each file in isolation;
* the **project** pass (rules R6-R9) parses every in-package file into
  one :class:`~repro.lint.ir.Project` and runs the interprocedural
  rules over its call graph.

Where R6's taint analysis flags a call site, the per-file R1 finding on
the same line is dropped — R6 subsumes it with reachability context.
Findings are globally ordered by (path, line, col, rule, message), so
terminal output, SARIF files, and baselines are all deterministic.

Exit status: 0 clean, 1 non-baselined findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import ast
import sys
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from repro.lint.baseline import (
    BaselineError,
    load_baseline,
    save_baseline,
    split_findings,
)
from repro.lint.equiv import run_equiv_rules
from repro.lint.findings import RULES, Finding
from repro.lint.interproc import run_project_rules
from repro.lint.ir import ModuleIR, build_project, parse_module
from repro.lint.rules import FileContext, run_rules
from repro.lint.sarif import write_sarif
from repro.lint.suppressions import (
    Suppressions,
    expand_multiline,
    parse_suppressions,
)

#: directory names never descended into.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".mypy_cache", ".ruff_cache", ".venv",
    "build", "dist",
})


def package_relative(path: Path) -> tuple[str, ...] | None:
    """Path relative to the ``repro`` package root, if inside it.

    Recognises both a source checkout (``.../src/repro/...``) and a
    bare package directory (``.../repro/...``).
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return tuple(parts[i:])
    return None


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS or part.startswith(".")
                           for part in sub.parts):
                    yield sub
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(
                f"not a Python file or directory: {path}")


def _finalize(findings: list[Finding]) -> list[Finding]:
    """Global ordering + R6-subsumes-R1 dedup."""
    r6_sites = {(f.path, f.line) for f in findings if f.rule == "R6"}
    kept = [f for f in findings
            if not (f.rule == "R1" and (f.path, f.line) in r6_sites)]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return kept


def _file_pass(source: str, *, path: str,
               package_rel: tuple[str, ...] | None,
               select: frozenset[str] | None
               ) -> tuple[list[Finding], ModuleIR | None]:
    """Per-file findings plus the parsed module for the project pass.

    Returns ``(findings, None)`` for files outside the ``repro``
    package, skip-file'd files, and files that fail to parse.
    """
    suppressions = parse_suppressions(source)
    if suppressions.skip_file:
        return [], None
    ctx = FileContext(path=path, package_rel=package_rel)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1, rule="E1",
                        message=f"syntax error: {exc.msg}")], None
    suppressions = expand_multiline(suppressions, tree)
    findings = [f for f in run_rules(tree, ctx, select=select)
                if suppressions.allows(f)]
    module = None
    if package_rel is not None:
        module = parse_module(source, path=path, package_rel=package_rel)
    return findings, module


def _project_pass(modules: list[ModuleIR],
                  select: frozenset[str] | None) -> list[Finding]:
    """Interprocedural findings over the in-package modules."""
    if not modules:
        return []
    project = build_project(modules)
    expanded: dict[str, Suppressions] = {
        module.path: expand_multiline(module.suppressions, module.tree)
        for module in modules
    }
    produced = (run_project_rules(project, select=select)
                + run_equiv_rules(project, select=select))
    return [
        finding for finding in produced
        if finding.path not in expanded
        or expanded[finding.path].allows(finding)
    ]


def lint_source(source: str, *, path: str = "<string>",
                package_rel: tuple[str, ...] | None = None,
                select: frozenset[str] | None = None) -> list[Finding]:
    """Lint source text; the workhorse behind every entry point.

    ``package_rel`` positions the snippet for rule scoping; default is
    *outside* the package (only R4 applies).  Pass e.g.
    ``("repro", "core", "x.py")`` to lint as if inside the simulator.
    In-package snippets also get the project pass over a one-module
    project (interprocedural rules see only local call edges).
    """
    findings, module = _file_pass(source, path=path,
                                  package_rel=package_rel, select=select)
    if module is not None:
        findings = findings + _project_pass([module], select)
    return _finalize(findings)


def lint_file(path: str | Path,
              select: frozenset[str] | None = None) -> list[Finding]:
    """Lint one file from disk."""
    p = Path(path)
    source = p.read_text(encoding="utf-8")
    return lint_source(source, path=str(p),
                       package_rel=package_relative(p), select=select)


def lint_paths(paths: Iterable[str | Path],
               select: frozenset[str] | None = None) -> list[Finding]:
    """Lint files and directory trees.

    All in-package files form *one* project, so the interprocedural
    rules see cross-module call edges; findings come back in global
    (path, line, col, rule) order.
    """
    findings: list[Finding] = []
    modules: list[ModuleIR] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        file_findings, module = _file_pass(
            source, path=str(path), package_rel=package_relative(path),
            select=select)
        findings.extend(file_findings)
        if module is not None:
            modules.append(module)
    findings.extend(_project_pass(modules, select))
    return _finalize(findings)


def _render_rule_catalogue() -> str:
    lines = []
    for rule in RULES.values():
        lines.append(f"{rule.id} ({rule.name}): {rule.summary}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="FlexFetch repo static analyzer: determinism, unit"
                    " discipline, float equality, defensive defaults,"
                    " and whole-program determinism/parallel-safety/"
                    "cache-key checks."
                    " Suppress with '# repro-lint: ignore[R1]'.")
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories (default: src tests)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run, e.g."
                             " R1,R3 (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--sarif", metavar="FILE",
                        help="also write findings as SARIF 2.1.0")
    parser.add_argument("--baseline", metavar="FILE",
                        help="recorded-baseline file; only findings"
                             " absent from it fail the run (a missing"
                             " file is an empty baseline)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline with the current"
                             " findings and exit 0")
    parser.add_argument("--format", choices=("text", "github"),
                        default="text",
                        help="finding output format: 'text' (default,"
                             " path:line:col) or 'github' (workflow"
                             " ::error annotations)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    return parser


def _render_github(finding: Finding) -> str:
    """One ``::error`` workflow command per finding.

    GitHub columns are 1-based; internal columns 0-based, matching
    ast col_offset.  Newlines cannot occur in messages (findings are
    single-line), so no %0A escaping is needed.
    """
    name = (RULES[finding.rule].name
            if finding.rule in RULES else "?")
    return (f"::error file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title={finding.rule}({name})::"
            f"{finding.message}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (``python -m repro.lint``)."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_render_rule_catalogue())
        return 0
    if args.update_baseline and not args.baseline:
        print("repro.lint: --update-baseline requires --baseline",
              file=sys.stderr)
        return 2
    select: frozenset[str] | None = None
    if args.select:
        select = frozenset(token.strip().upper()
                           for token in args.select.split(",")
                           if token.strip())
        unknown = select - RULES.keys()
        if unknown:
            print(f"repro.lint: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
    paths = [p for p in args.paths if Path(p).exists()]
    if not paths:
        print("repro.lint: no such paths:"
              f" {', '.join(map(str, args.paths))}", file=sys.stderr)
        return 2
    try:
        findings = lint_paths(paths, select=select)
    except (OSError, UnicodeDecodeError) as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        save_baseline(args.baseline, findings)
        if args.sarif:
            write_sarif(args.sarif, findings, new=set())
        if not args.quiet:
            print(f"repro.lint: baseline {args.baseline} updated with"
                  f" {len(findings)} finding(s)", file=sys.stderr)
        return 0

    baselined: list[Finding] = []
    new = findings
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"repro.lint: {exc}", file=sys.stderr)
            return 2
        new, baselined = split_findings(findings, baseline)
    if args.sarif:
        write_sarif(args.sarif, findings,
                    new=set(new) if args.baseline else None)
    for finding in new:
        if args.format == "github":
            print(_render_github(finding))
        else:
            print(finding.render())
    if not args.quiet:
        noun = "finding" if len(new) == 1 else "findings"
        suffix = f" ({len(baselined)} baselined)" if baselined else ""
        print(f"repro.lint: {len(new)} {noun}{suffix}", file=sys.stderr)
    return 1 if new else 0
