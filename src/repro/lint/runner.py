"""File discovery, orchestration, and CLI for :mod:`repro.lint`.

Invocation forms (all equivalent)::

    python -m repro.lint src/ tests/
    flexfetch lint src/ tests/
    from repro.lint import lint_paths; lint_paths(["src"])

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import ast
import sys
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from repro.lint.findings import RULES, Finding
from repro.lint.rules import FileContext, run_rules
from repro.lint.suppressions import parse_suppressions

#: directory names never descended into.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".mypy_cache", ".ruff_cache", ".venv",
    "build", "dist",
})


def package_relative(path: Path) -> tuple[str, ...] | None:
    """Path relative to the ``repro`` package root, if inside it.

    Recognises both a source checkout (``.../src/repro/...``) and a
    bare package directory (``.../repro/...``).
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return tuple(parts[i:])
    return None


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS or part.startswith(".")
                           for part in sub.parts):
                    yield sub
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(
                f"not a Python file or directory: {path}")


def lint_source(source: str, *, path: str = "<string>",
                package_rel: tuple[str, ...] | None = None,
                select: frozenset[str] | None = None) -> list[Finding]:
    """Lint source text; the workhorse behind every entry point.

    ``package_rel`` positions the snippet for rule scoping; default is
    *outside* the package (only R4 applies).  Pass e.g.
    ``("repro", "core", "x.py")`` to lint as if inside the simulator.
    """
    suppressions = parse_suppressions(source)
    if suppressions.skip_file:
        return []
    ctx = FileContext(path=path, package_rel=package_rel)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1, rule="E1",
                        message=f"syntax error: {exc.msg}")]
    findings = run_rules(tree, ctx, select=select)
    return [f for f in findings if suppressions.allows(f)]


def lint_file(path: str | Path,
              select: frozenset[str] | None = None) -> list[Finding]:
    """Lint one file from disk."""
    p = Path(path)
    source = p.read_text(encoding="utf-8")
    return lint_source(source, path=str(p),
                       package_rel=package_relative(p), select=select)


def lint_paths(paths: Iterable[str | Path],
               select: frozenset[str] | None = None) -> list[Finding]:
    """Lint files and directory trees; findings in path order."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, select=select))
    return findings


def _render_rule_catalogue() -> str:
    lines = []
    for rule in RULES.values():
        lines.append(f"{rule.id} ({rule.name}): {rule.summary}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="FlexFetch repo static analyzer: determinism, unit"
                    " discipline, float equality, defensive defaults."
                    " Suppress with '# repro-lint: ignore[R1]'.")
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories (default: src tests)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run, e.g."
                             " R1,R3 (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (``python -m repro.lint``)."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_render_rule_catalogue())
        return 0
    select: frozenset[str] | None = None
    if args.select:
        select = frozenset(token.strip().upper()
                           for token in args.select.split(",")
                           if token.strip())
        unknown = select - RULES.keys()
        if unknown:
            print(f"repro.lint: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
    paths = [p for p in args.paths if Path(p).exists()]
    if not paths:
        print("repro.lint: no such paths:"
              f" {', '.join(map(str, args.paths))}", file=sys.stderr)
        return 2
    try:
        findings = lint_paths(paths, select=select)
    except (OSError, UnicodeDecodeError) as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if not args.quiet:
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"repro.lint: {len(findings)} {noun}", file=sys.stderr)
    return 1 if findings else 0
