"""Import-resolved, class-hierarchy-aware call graph for :mod:`repro.lint`.

For every :class:`~repro.lint.ir.FunctionIR` the scanner resolves each
call expression to project targets using, in order:

* **typed-receiver dispatch** — ``self.m()``, ``policy.on_tick()`` where
  the receiver's class is known from a parameter annotation, a local
  assignment from a constructor/annotated call chain, or an inferred
  ``self.<attr>`` type.  Dispatch is CHA (class-hierarchy analysis): the
  resolved method *plus every subclass override* becomes a target, so a
  ``Policy``-typed call reaches all concrete policies;
* **dotted resolution** — ``module.func()`` / imported names, through
  the module's :class:`~repro.lint.ir.ImportTable` and the project's
  re-export chasing.

Unresolvable calls are recorded as *external* dotted names (the R6
impurity sources — ``time.time``, ``os.urandom`` — live there) or
dropped when not even a dotted name exists (calling a parameter, a
subscript, ...).  The graph therefore *under*-approximates real
control flow; rules built on it trade missed edges for zero invented
ones, the right direction for a linter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.ir import FunctionIR, ModuleIR, Project


@dataclass(slots=True)
class FunctionSummary:
    """Everything the interprocedural rules need about one function."""

    qualname: str
    #: resolved project function/method targets, with their call nodes.
    calls: list[tuple[str, ast.Call]] = field(default_factory=list)
    #: resolved project *class* constructions (``SweepJob(...)``).
    constructs: list[tuple[str, ast.Call]] = field(default_factory=list)
    #: unresolved dotted calls (``time.time`` et al.).
    external: list[tuple[str, ast.Call]] = field(default_factory=list)
    #: call node -> resolved targets (for call-aware unit inference).
    by_node: dict[ast.Call, tuple[str, ...]] = field(default_factory=dict)
    #: names of functions defined *inside* this one (closure hazards).
    local_defs: set[str] = field(default_factory=set)


class _FunctionScanner(ast.NodeVisitor):
    """One in-order pass over a function body.

    Tracks a local type environment (name -> project class qualname) so
    builder chains like ``SimulationSession().with_policy(p).run()``
    resolve: a constructor call types the expression, and a method whose
    return annotation names a project class propagates it.
    """

    def __init__(self, project: Project, fn: FunctionIR) -> None:
        self.project = project
        self.fn = fn
        self.module: ModuleIR = fn.module
        self.summary = FunctionSummary(qualname=fn.qualname)
        #: every locally bound name (params, assignments, nested defs) —
        #: these shadow imports for dotted resolution.
        self.local_names: set[str] = set()
        self.local_types: dict[str, str] = {}
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs,
                    *((args.vararg,) if args.vararg else ()),
                    *((args.kwarg,) if args.kwarg else ())):
            self.local_names.add(arg.arg)
            cls = project.annotation_class(self.module, arg.annotation)
            if cls is not None:
                self.local_types[arg.arg] = cls
        if fn.cls is not None and (args.posonlyargs or args.args):
            first = (args.posonlyargs or args.args)[0].arg
            self.local_types[first] = fn.cls

    # -- scanning ------------------------------------------------------
    def scan(self) -> FunctionSummary:
        for stmt in self.fn.node.body:
            self.visit(stmt)
        return self.summary

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested_def(node)

    def _nested_def(self,
                    node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        # A nested def is part of the enclosing function for call
        # collection (its body runs on behalf of the caller) and a
        # closure hazard for R7.
        self.summary.local_defs.add(node.name)
        self.local_names.add(node.name)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        inferred = self._infer_type(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.local_names.add(target.id)
                if inferred is not None:
                    self.local_types[target.id] = inferred
                else:
                    self.local_types.pop(target.id, None)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name):
            self.local_names.add(node.target.id)
            cls = self.project.annotation_class(self.module,
                                                node.annotation)
            if cls is not None:
                self.local_types[node.target.id] = cls

    def visit_Call(self, node: ast.Call) -> None:
        self._record_call(node)
        self.generic_visit(node)

    # -- resolution ----------------------------------------------------
    def _record_call(self, node: ast.Call) -> None:
        targets = self._resolve_call(node)
        if targets is None:
            return
        kind, resolved = targets
        if kind == "class":
            self.summary.constructs.append((resolved[0], node))
            init = self.project.lookup_method(resolved[0], "__init__")
            if init is not None:
                self.summary.calls.append((init, node))
                self.summary.by_node[node] = (init,)
        elif kind == "func":
            for target in resolved:
                self.summary.calls.append((target, node))
            self.summary.by_node[node] = resolved
        else:
            self.summary.external.append((resolved[0], node))

    def _resolve_call(self, node: ast.Call
                      ) -> tuple[str, tuple[str, ...]] | None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.local_names:
                return None
            return self._resolve_dotted_call(func)
        if isinstance(func, ast.Attribute):
            receiver = self._infer_type(func.value)
            if receiver is not None:
                targets = self._dispatch(receiver, func.attr)
                return ("func", targets) if targets else None
            root = self._chain_root(func)
            if root is None or root.id in self.local_names:
                return None
            return self._resolve_dotted_call(func)
        return None

    def _resolve_dotted_call(self, func: ast.expr
                             ) -> tuple[str, tuple[str, ...]] | None:
        dotted = self.module.imports.resolve(func)
        if dotted is None:
            return None
        resolved = self.project.resolve(self.module, dotted)
        if resolved is not None:
            if resolved in self.project.classes:
                return ("class", (resolved,))
            return ("func", (resolved,))
        return ("external", (dotted,))

    def _dispatch(self, cls_qualname: str, method: str) -> tuple[str, ...]:
        """CHA dispatch: the MRO implementation plus subclass overrides."""
        targets: set[str] = set()
        impl = self.project.lookup_method(cls_qualname, method)
        if impl is not None:
            targets.add(impl)
        for sub in self.project.subclasses(cls_qualname):
            override = self.project.classes[sub].methods.get(method)
            if override is not None:
                targets.add(override)
        return tuple(sorted(targets))

    @staticmethod
    def _chain_root(node: ast.Attribute) -> ast.Name | None:
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            cur = cur.value
        return cur if isinstance(cur, ast.Name) else None

    def _infer_type(self, expr: ast.expr) -> str | None:
        """Project class qualname of an expression's value, if known."""
        if isinstance(expr, ast.Name):
            return self.local_types.get(expr.id)
        if isinstance(expr, ast.Call):
            resolved = self._resolve_call(expr)
            if resolved is None:
                return None
            kind, targets = resolved
            if kind == "class":
                return targets[0]
            if kind == "func":
                fn = self.project.functions.get(targets[0])
                if fn is not None:
                    return self.project.annotation_class(fn.module,
                                                         fn.node.returns)
            return None
        if isinstance(expr, ast.Attribute):
            base = self._infer_type(expr.value)
            if base is None:
                return None
            return self._attr_type(base, expr.attr)
        return None

    def _attr_type(self, cls_qualname: str, attr: str) -> str | None:
        for cls in self.project.mro(cls_qualname):
            found = self.project.classes[cls].attr_types.get(attr)
            if found is not None:
                return found
        return None


class CallGraph:
    """Summaries and adjacency over every project function."""

    def __init__(self, project: Project) -> None:
        project.link()
        self.project = project
        self.summaries: dict[str, FunctionSummary] = {}
        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            self.summaries[qualname] = _FunctionScanner(project, fn).scan()
        self.callees: dict[str, tuple[str, ...]] = {
            qualname: tuple(sorted({target for target, _ in summary.calls
                                    if target in project.functions}))
            for qualname, summary in self.summaries.items()
        }
        self.callers: dict[str, list[str]] = {}
        for caller, targets in self.callees.items():
            for target in targets:
                self.callers.setdefault(target, []).append(caller)

    def shortest_path(self, roots: set[str], goal: str
                      ) -> list[str] | None:
        """A shortest root->goal call chain (for finding messages)."""
        if goal in roots:
            return [goal]
        frontier = sorted(roots)
        parents: dict[str, str] = {}
        seen = set(frontier)
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                for callee in self.callees.get(node, ()):
                    if callee in seen:
                        continue
                    seen.add(callee)
                    parents[callee] = node
                    if callee == goal:
                        path = [goal]
                        while path[-1] in parents:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    nxt.append(callee)
            frontier = nxt
        return None
