"""SARIF 2.1.0 output for :mod:`repro.lint`.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard CI systems ingest for code-scanning annotations.  This module
renders a findings list as one ``run`` of one ``tool``, with the rule
catalogue exported as ``reportingDescriptor`` entries so viewers can
show the rationale next to each result.

The output is deterministic: findings arrive pre-sorted from the
runner, the rule array is sorted by id, and serialisation is plain
``json.dumps`` — two identical analyses produce byte-identical files.
"""

from __future__ import annotations

import json
from pathlib import PurePath
from typing import Any

from repro.lint.findings import RULES, Finding

#: The schema the output declares (and the test validates against).
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")
SARIF_VERSION = "2.1.0"


def _rule_descriptors() -> list[dict[str, Any]]:
    return [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in sorted(RULES.values(), key=lambda r: r.id)
    ]


def _result(finding: Finding, rule_index: dict[str, int],
            new: set[Finding] | None) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": PurePath(finding.path).as_posix(),
                },
                "region": {
                    "startLine": finding.line,
                    # SARIF columns are 1-based; Finding.col is the
                    # 0-based AST offset.
                    "startColumn": finding.col + 1,
                },
            },
        }],
    }
    index = rule_index.get(finding.rule)
    if index is not None:
        result["ruleIndex"] = index
    if new is not None:
        result["baselineState"] = "new" if finding in new else "unchanged"
    return result


def to_sarif(findings: list[Finding], *,
             new: set[Finding] | None = None) -> dict[str, Any]:
    """A SARIF 2.1.0 log document for the findings.

    When ``new`` is given (a baseline was applied), each result carries
    a ``baselineState`` of ``"new"`` or ``"unchanged"``.
    """
    descriptors = _rule_descriptors()
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.lint",
                    "informationUri":
                        "https://github.com/flexfetch/flexfetch",
                    "rules": descriptors,
                },
            },
            "columnKind": "unicodeCodePoints",
            "results": [_result(f, rule_index, new) for f in findings],
        }],
    }


def write_sarif(path: str, findings: list[Finding], *,
                new: set[Finding] | None = None) -> None:
    """Serialise :func:`to_sarif` to ``path`` (UTF-8, stable layout)."""
    document = to_sarif(findings, new=new)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=False)
        handle.write("\n")
