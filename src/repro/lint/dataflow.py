"""A deterministic worklist fixpoint engine for :mod:`repro.lint`.

Every interprocedural rule is a dataflow problem over the call graph:

* **R6** — impurity taint: a function's taint is its own impure calls
  joined with its callees' taint;
* call-graph **reachability** — a function is reachable when it is a
  root or any caller is reachable;
* **R9** — return-dimension inference: a function's return dimension
  re-evaluates whenever a callee's does.

:func:`solve` runs any of them to a fixpoint.  The contract is the
textbook one: facts must grow monotonically under the transfer function
on a lattice of finite height, or the worklist may not terminate.  The
engine is deliberately deterministic — nodes are seeded in sorted order
and the worklist is FIFO with dedup — so findings (and therefore SARIF
output and baselines) never depend on dict iteration order.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Mapping
from typing import TypeVar

N = TypeVar("N")
F = TypeVar("F")

#: Safety valve: no realistic project needs more sweeps than this, and a
#: non-monotone transfer function must fail loudly, not spin.
_MAX_VISITS_PER_NODE = 10_000


class FixpointDivergence(RuntimeError):
    """The transfer function failed to converge (non-monotone facts)."""


def solve(nodes: Iterable[N],
          inputs: Mapping[N, Iterable[N]],
          transfer: Callable[[N, Callable[[N], F]], F],
          bottom: F) -> dict[N, F]:
    """Run a worklist fixpoint over ``nodes``.

    Parameters
    ----------
    nodes:
        The universe (e.g. every function qualname).
    inputs:
        For each node, the nodes whose facts its transfer function
        reads (e.g. its callees for a bottom-up summary).  When an
        input's fact changes, the node is re-queued.
    transfer:
        ``transfer(node, fact_of)`` computes the node's new fact;
        ``fact_of(other)`` reads the current fact of any node (``bottom``
        for nodes outside the universe).
    bottom:
        Initial fact for every node.

    Returns the fixpoint fact for every node, deterministically.
    """
    ordered = sorted(nodes, key=repr)
    facts: dict[N, F] = dict.fromkeys(ordered, bottom)

    dependents: dict[N, list[N]] = {}
    for node in ordered:
        for dep in inputs.get(node, ()):
            dependents.setdefault(dep, []).append(node)

    def fact_of(other: N) -> F:
        return facts.get(other, bottom)

    worklist: deque[N] = deque(ordered)
    queued: set[N] = set(ordered)
    visits: dict[N, int] = {}
    while worklist:
        node = worklist.popleft()
        queued.discard(node)
        visits[node] = visits.get(node, 0) + 1
        if visits[node] > _MAX_VISITS_PER_NODE:
            raise FixpointDivergence(
                f"dataflow failed to converge at {node!r}")
        new = transfer(node, fact_of)
        if new == facts[node]:
            continue
        facts[node] = new
        for dependent in dependents.get(node, ()):
            if dependent not in queued:
                worklist.append(dependent)
                queued.add(dependent)
    return facts


def reachable(roots: Iterable[N],
              callees: Mapping[N, Iterable[N]]) -> set[N]:
    """Nodes reachable from ``roots`` along ``callees`` edges.

    Expressed as a dataflow problem (fact = "reachable yet?") so the
    same engine underlies both taint and reachability; with edges known
    up front this converges in one or two sweeps.
    """
    root_set = set(roots)
    callers: dict[N, list[N]] = {}
    nodes: set[N] = set(callees) | root_set
    for caller, targets in callees.items():
        for target in targets:
            nodes.add(target)
            callers.setdefault(target, []).append(caller)

    def transfer(node: N, fact_of: Callable[[N], bool]) -> bool:
        return node in root_set or any(
            fact_of(c) for c in callers.get(node, ()))

    facts = solve(nodes, callers, transfer, bottom=False)
    return {node for node, is_reachable in facts.items() if is_reachable}
