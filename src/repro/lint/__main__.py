"""``python -m repro.lint`` — run the static analyzer."""

from repro.lint.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
