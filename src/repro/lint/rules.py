"""The rule implementations (R1-R4) for :mod:`repro.lint`.

Each rule is an :class:`ast.NodeVisitor` producing :class:`Finding`
objects.  Rules never import or execute the code under analysis — pure
syntax, so the analyzer runs identically on any tree (including broken
work-in-progress checkouts, as long as they parse).

Scope per rule (see DESIGN.md §10):

* **R1** (determinism) — files inside the ``repro`` package except
  ``repro/sim/rng.py``, the sanctioned randomness front door.
* **R2/R3** (unit discipline, float equality) — files inside the
  ``repro`` package.  Tests may compare replays for *exact* equality on
  purpose (bit-reproducibility assertions), so they are exempt.
* **R4** (defensive defaults) — every linted file.
* **R5** (layering) — files inside the ranked layers of the ``repro``
  package (see :mod:`repro.lint.layering`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.findings import Finding
from repro.lint.ir import ImportTable
from repro.lint.layering import LayeringRule, layer_of
from repro.lint.unitinfer import (
    DIMENSION_ALIASES,
    FLOAT_DIMENSIONS,
    UnitEnv,
    dimension_of_annotation,
    dimension_of_identifier,
    is_bare_numeric_annotation,
)


@dataclass(frozen=True, slots=True)
class FileContext:
    """Where a file sits, which determines rule applicability."""

    path: str
    #: path relative to the ``repro`` package root (``("repro", "core",
    #: "simulator.py")``) or None when the file is outside the package.
    package_rel: tuple[str, ...] | None

    @property
    def in_package(self) -> bool:
        return self.package_rel is not None

    @property
    def is_rng_module(self) -> bool:
        return self.package_rel == ("repro", "sim", "rng.py")


# ----------------------------------------------------------------------
# R1 — determinism
# ----------------------------------------------------------------------
#: calls that read the wall clock or the host environment.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.localtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: nondeterministic entropy sources.
_ENTROPY = frozenset({
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom",
})

#: stdlib ``random`` module-level functions (global, shared-state RNG).
_GLOBAL_RANDOM = frozenset({
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.sample", "random.shuffle",
    "random.uniform", "random.gauss", "random.normalvariate",
    "random.expovariate", "random.betavariate", "random.seed",
    "random.getrandbits", "random.paretovariate", "random.triangular",
})

#: numpy legacy global-state API; everything except the seeded
#: Generator machinery is banned.
_NUMPY_RANDOM_OK = frozenset({
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.SeedSequence", "numpy.random.PCG64",
    "numpy.random.Philox", "numpy.random.BitGenerator",
})


def impurity_of_call(dotted: str, node: ast.Call) -> str | None:
    """Message when a dotted call is a nondeterminism source, else None.

    Shared by R1 (per-file) and R6 (interprocedural taint): both flag
    the same sources; R6 adds reachability context on top.
    """
    if dotted in _WALL_CLOCK:
        return (f"wall-clock call {dotted}() — simulation"
                " time comes from the event loop, never the"
                " host clock")
    if dotted in _ENTROPY or dotted.startswith("secrets."):
        return (f"nondeterministic entropy source {dotted}()"
                " — derive randomness from the experiment"
                " seed via repro.sim.rng")
    if dotted in _GLOBAL_RANDOM:
        return (f"global-state RNG call {dotted}() — use a"
                " seeded generator from"
                " repro.sim.rng.make_rng instead")
    if dotted == "random.Random" and not node.args and not node.keywords:
        return ("unseeded random.Random() — pass an explicit"
                " seed derived via repro.sim.rng.child_seed")
    if dotted == "numpy.random.default_rng" and not node.args and \
            not node.keywords:
        return ("unseeded numpy.random.default_rng() — use"
                " repro.sim.rng.make_rng(seed, name)")
    if dotted.startswith("numpy.random.") and \
            dotted not in _NUMPY_RANDOM_OK:
        return (f"legacy numpy global RNG {dotted}() — use a"
                " seeded Generator from"
                " repro.sim.rng.make_rng")
    return None


class DeterminismRule(ast.NodeVisitor):
    """R1: the simulator may not consult wall clocks or unseeded RNGs."""

    def __init__(self, ctx: FileContext, imports: ImportTable) -> None:
        self.ctx = ctx
        self.imports = imports
        self.findings: list[Finding] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            path=self.ctx.path, line=node.lineno, col=node.col_offset,
            rule="R1", message=message))

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.imports.resolve(node.func)
        if dotted is not None:
            message = impurity_of_call(dotted, node)
            if message is not None:
                self._flag(node, message)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# R2 — unit discipline
# ----------------------------------------------------------------------
class UnitDisciplineRule(ast.NodeVisitor):
    """R2: physical quantities use the aliases; dimensions never mix."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []
        self._env_stack: list[UnitEnv] = [UnitEnv()]

    @property
    def _env(self) -> UnitEnv:
        return self._env_stack[-1]

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            path=self.ctx.path, line=node.lineno, col=node.col_offset,
            rule="R2", message=message))

    # -- annotation discipline -----------------------------------------
    def _check_arg(self, arg: ast.arg) -> None:
        if not is_bare_numeric_annotation(arg.annotation):
            return
        dim = dimension_of_identifier(arg.arg)
        if dim is not None:
            alias = DIMENSION_ALIASES[dim]
            self._flag(arg, f"parameter {arg.arg!r} is a physical"
                            f" quantity ({dim}); annotate it with"
                            f" repro.units.{alias}, not bare"
                            " float/int")

    def _visit_function(self,
                        node: ast.FunctionDef | ast.AsyncFunctionDef
                        ) -> None:
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            self._check_arg(arg)
        if is_bare_numeric_annotation(node.returns):
            dim = dimension_of_identifier(node.name)
            if dim is not None:
                alias = DIMENSION_ALIASES[dim]
                assert node.returns is not None
                self._flag(node.returns,
                           f"function {node.name!r} returns a physical"
                           f" quantity ({dim}); annotate the return as"
                           f" repro.units.{alias}, not bare float/int")
        # Fresh symbol table seeded from the alias-annotated parameters.
        env = UnitEnv()
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            env.bind_annotation(arg.arg, arg.annotation)
        self._env_stack.append(env)
        self.generic_visit(node)
        self._env_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            self._env.bind_annotation(node.target.id, node.annotation)
            if is_bare_numeric_annotation(node.annotation):
                dim = dimension_of_identifier(node.target.id)
                if dim is not None:
                    alias = DIMENSION_ALIASES[dim]
                    self._flag(node, f"{node.target.id!r} is a physical"
                                     f" quantity ({dim}); annotate it"
                                     f" with repro.units.{alias}")
        self.generic_visit(node)

    # -- dimensional arithmetic ----------------------------------------
    def _check_mix(self, node: ast.AST, op: str, left: ast.expr,
                   right: ast.expr) -> None:
        ldim = self._env.dimension_of(left)
        rdim = self._env.dimension_of(right)
        if ldim is not None and rdim is not None and ldim != rdim:
            self._flag(node, f"incompatible dimensions in {op!r}:"
                             f" {ldim} vs {rdim}")

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            op = "+" if isinstance(node.op, ast.Add) else "-"
            self._check_mix(node, op, node.left, node.right)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            op = "+=" if isinstance(node.op, ast.Add) else "-="
            self._check_mix(node, op, node.target, node.value)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:],
                                   strict=False):
            if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                self._check_mix(node, "comparison", left, right)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# R3 — float equality on measured quantities
# ----------------------------------------------------------------------
class FloatEqualityRule(ast.NodeVisitor):
    """R3: no ``==``/``!=`` on time/energy/power/bandwidth values."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []
        self._env_stack: list[UnitEnv] = [UnitEnv()]

    def _flag(self, node: ast.AST, dim: str) -> None:
        self.findings.append(Finding(
            path=self.ctx.path, line=node.lineno, col=node.col_offset,
            rule="R3",
            message=f"exact equality on a measured {dim} value — use"
                    " repro.units.approx_eq / is_zero (or math.isclose)"))

    def _visit_function(self,
                        node: ast.FunctionDef | ast.AsyncFunctionDef
                        ) -> None:
        args = node.args
        env = UnitEnv()
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            env.bind_annotation(arg.arg, arg.annotation)
        self._env_stack.append(env)
        self.generic_visit(node)
        self._env_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            self._env_stack[-1].bind_annotation(node.target.id,
                                                node.annotation)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        env = self._env_stack[-1]
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:],
                                   strict=False):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                dim = env.dimension_of(side)
                if dim in FLOAT_DIMENSIONS:
                    self._flag(node, dim)
                    break
        self.generic_visit(node)


# ----------------------------------------------------------------------
# R4 — defensive defaults
# ----------------------------------------------------------------------
_MUTABLE_CALLS = frozenset({"list", "dict", "set"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS)


class DefensiveDefaultsRule(ast.NodeVisitor):
    """R4: no mutable default arguments, no bare ``except:``."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            path=self.ctx.path, line=node.lineno, col=node.col_offset,
            rule="R4", message=message))

    def _visit_function(self,
                        node: ast.FunctionDef | ast.AsyncFunctionDef
                        ) -> None:
        for default in (*node.args.defaults, *node.args.kw_defaults):
            if default is not None and _is_mutable_default(default):
                self._flag(default, "mutable default argument — use None"
                                    " and create the object inside the"
                                    " function")
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag(node, "bare except: — name the exceptions; a"
                             " blind handler swallows invariant"
                             " violations")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# orchestration
# ----------------------------------------------------------------------
@dataclass(slots=True)
class _RulePlan:
    r1: bool = True
    r2: bool = True
    r3: bool = True
    r4: bool = True
    r5: bool = True
    findings: list[Finding] = field(default_factory=list)


def run_rules(tree: ast.AST, ctx: FileContext,
              select: frozenset[str] | None = None) -> list[Finding]:
    """Run every applicable rule over a parsed module."""
    in_pkg = ctx.in_package
    plan = _RulePlan(
        r1=in_pkg and not ctx.is_rng_module,
        r2=in_pkg,
        r3=in_pkg,
        r4=True,
        r5=in_pkg and layer_of(ctx.package_rel) is not None,
    )
    visitors: list[DeterminismRule | UnitDisciplineRule
                   | FloatEqualityRule | DefensiveDefaultsRule
                   | LayeringRule] = []
    if plan.r1 and (select is None or "R1" in select):
        imports = ImportTable()
        imports.collect(tree)
        visitors.append(DeterminismRule(ctx, imports))
    if plan.r2 and (select is None or "R2" in select):
        visitors.append(UnitDisciplineRule(ctx))
    if plan.r3 and (select is None or "R3" in select):
        visitors.append(FloatEqualityRule(ctx))
    if plan.r4 and (select is None or "R4" in select):
        visitors.append(DefensiveDefaultsRule(ctx))
    if plan.r5 and (select is None or "R5" in select):
        visitors.append(LayeringRule(ctx))
    findings: list[Finding] = []
    for visitor in visitors:
        visitor.visit(tree)
        findings.extend(visitor.findings)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings
