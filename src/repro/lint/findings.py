"""Finding and rule-catalogue types for :mod:`repro.lint`.

Every diagnostic the analyzer emits is a :class:`Finding` tagged with a
rule id from :data:`RULES`.  The catalogue is data, not code, so the CLI
``--list-rules`` output, DESIGN.md §10, and the test fixtures all key off
the same ids.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Rule:
    """One entry of the rule catalogue."""

    id: str
    name: str
    summary: str
    rationale: str


#: The rule catalogue.  Ids are stable; suppression comments
#: (``# repro-lint: ignore[R1]``) reference them.
RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            id="R1",
            name="determinism",
            summary="no wall-clock or unseeded randomness inside the"
                    " simulator package",
            rationale="replays must be a pure function of (trace, seed);"
                      " time.time()/datetime.now()/unseeded RNGs make"
                      " results unreproducible across runs and machines."
                      " All randomness flows through repro.sim.rng.",
        ),
        Rule(
            id="R2",
            name="unit-discipline",
            summary="physical quantities use the repro.units aliases and"
                    " never mix dimensions in +/-/comparisons",
            rationale="seconds, joules, watts, bytes and bytes/s as bare"
                      " float/int invite ms-vs-s and Mb-vs-MB slips —"
                      " exactly the numbers the paper's evaluation"
                      " (T_disk/E_disk vs T_net/E_net) depends on.",
        ),
        Rule(
            id="R3",
            name="float-equality",
            summary="no == / != on measured time/energy/power/bandwidth"
                    " values",
            rationale="accumulated float error makes exact equality on"
                      " integrated quantities flaky; compare with"
                      " repro.units.approx_eq / is_zero or math.isclose.",
        ),
        Rule(
            id="R4",
            name="defensive-defaults",
            summary="no mutable default arguments and no bare except",
            rationale="mutable defaults alias state across calls (a"
                      " classic simulator cross-run leak); bare except"
                      " swallows the invariant errors PR 1 added.",
        ),
        Rule(
            id="R5",
            name="layering",
            summary="no upward imports across the"
                    " devices → kernel → core → experiments/cli stack",
            rationale="the layered split (DESIGN.md §12) only holds if"
                      " dependencies point one way; a device model"
                      " importing policy code (or the kernel importing"
                      " the simulator core) silently re-fuses the"
                      " monolith.  Inject upward dependencies as"
                      " callables/protocols instead.",
        ),
        Rule(
            id="R6",
            name="determinism-taint",
            summary="no nondeterminism source reachable from sweep"
                    " execution or cache-key hashing",
            rationale="the run cache and the parallel executor both"
                      " assume a cell is a pure function of its"
                      " declared inputs; a wall-clock read, env lookup,"
                      " or unordered-set iteration anywhere in the"
                      " transitive call graph of _execute_job/run_key"
                      " silently breaks bit-identical replay, even when"
                      " the impure call sits in a helper R1 never"
                      " scopes to.",
        ),
        Rule(
            id="R7",
            name="parallel-safety",
            summary="no module-level state writes in worker-reachable"
                    " code; nothing non-picklable crosses the fork"
                    " boundary",
            rationale="sweep workers are forked processes: writes to"
                      " module globals vanish with the worker, and"
                      " lambdas/closures/open handles/locks placed in"
                      " SweepJob fields fail to pickle (or worse,"
                      " pickle to something stale).",
        ),
        Rule(
            id="R8",
            name="cache-key-soundness",
            summary="every result-affecting SimulationSession input"
                    " appears in run_key's canonical description",
            rationale="a simulation input omitted from the cache key"
                      " (the PR 1 fault schedules were one) lets a run"
                      " that varies it hit a stale cached RunResult —"
                      " the cache returns confidently wrong numbers.",
        ),
        Rule(
            id="R9",
            name="unit-flow",
            summary="unit dimensions stay consistent across call"
                    " boundaries",
            rationale="R2 checks arithmetic it can see inside one"
                      " function; a helper returning joules assigned"
                      " into a Seconds slot, or added to a latency, is"
                      " only visible once return dimensions propagate"
                      " through the call graph.",
        ),
        Rule(
            id="R10",
            name="path-coverage-drift",
            summary="every SimulationSession/MobileSystem parameter and"
                    " FaultSpec field is either read by the fast path"
                    " or named in its refusal predicate",
            rationale="the BurstPlan fast path is a shortcut over the"
                      " event loop; a new session knob the shortcut"
                      " neither consumes nor refuses on is silently"
                      " ignored — two runs that vary it return"
                      " bit-identical (wrong) results until a parity"
                      " test happens to sweep that knob.",
        ),
        Rule(
            id="R11",
            name="kernel-pair-drift",
            summary="the packed replay kernels (_replay_packed /"
                    " _disk_walk / _wnic_walk) account the same energy"
                    " buckets, spec constants and DPM transitions as"
                    " the device models they shadow",
            rationale="the packed walk re-derives device arithmetic"
                      " from first principles for speed; a cost term,"
                      " breakdown bucket, or state transition added to"
                      " one twin but not the other drifts the two"
                      " replay paths apart — the exact bug class the"
                      " _replay_object oracle exists to catch, found"
                      " here without running anything.",
        ),
        Rule(
            id="R12",
            name="float-reassociation",
            summary="no numpy reductions (sum/dot/mean/...) in modules"
                    " under the REPRO_NO_NUMPY bit-identical contract",
            rationale="numpy reduces with pairwise/SIMD association;"
                      " the scalar fallback accumulates left-to-right."
                      " The two orders round differently, so a"
                      " reduction over energy/time columns silently"
                      " breaks the contract that REPRO_NO_NUMPY=1"
                      " produces bit-identical results.  Elementwise"
                      " vector arithmetic is fine — each lane rounds"
                      " exactly like its scalar twin.",
        ),
        Rule(
            id="R13",
            name="plan-staleness",
            summary="memoised plans are immutable and every plan input"
                    " is folded into the memo key",
            rationale="plan_for memoises BurstPlans process-wide and"
                      " forked workers inherit them copy-on-write;"
                      " mutating plan-derived state after memoisation,"
                      " or keying the memo on fewer inputs than"
                      " build_plan consumes, serves stale plans to"
                      " every later cell that varies the missing"
                      " input.",
        ),
        Rule(
            id="E1",
            name="parse-error",
            summary="file could not be parsed as Python",
            rationale="an unparsable file cannot be analyzed; fix the"
                      " syntax error first.",
        ),
    )
}


@dataclass(frozen=True, slots=True)
class Finding:
    """One diagnostic: a rule violated at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: RULE(name) message`` — editor-clickable."""
        name = RULES[self.rule].name if self.rule in RULES else "?"
        return (f"{self.path}:{self.line}:{self.col}:"
                f" {self.rule}({name}) {self.message}")
