"""R5 — architectural layering checks for :mod:`repro.lint`.

The layered decomposition (DESIGN.md §12) orders the simulator's
packages bottom-up::

    devices (1)  →  kernel (2)  →  core (3)  →  experiments / cli (4)

A module may import from its own layer or any layer *below* it; an
import that points **up** the stack reintroduces exactly the coupling
the split removed (e.g. a device model reaching into policy code).
Packages outside the stack — ``units``, ``sim``, ``faults``,
``traces``, ``lint`` — are deliberately unranked: they are either
leaf utilities everything may use or tooling that must see everything,
so they neither emit nor attract findings.

The check is purely syntactic (import statements only), so dependency
injection remains the sanctioned escape hatch: ``kernel.path`` takes a
``locate`` callable instead of importing the disk layout, and stays
clean here by construction.
"""

from __future__ import annotations

import ast
from typing import Protocol

from repro.lint.findings import Finding


class _Located(Protocol):
    """The slice of :class:`repro.lint.rules.FileContext` R5 needs."""

    @property
    def path(self) -> str: ...

    @property
    def package_rel(self) -> tuple[str, ...] | None: ...

#: bottom-up rank of each layered package (higher = closer to the user).
LAYER_RANKS: dict[str, int] = {
    "devices": 1,
    "kernel": 2,
    "core": 3,
    "experiments": 4,
    "cli": 4,
}


def layer_of(package_rel: tuple[str, ...] | None) -> str | None:
    """The ranked layer a package-relative path belongs to, if any."""
    if package_rel is None or len(package_rel) < 2:
        return None
    name = package_rel[1]
    name = name.removesuffix(".py")
    return name if name in LAYER_RANKS else None


def _module_layer(module: str) -> str | None:
    """The ranked layer a dotted ``repro.*`` module path belongs to."""
    parts = module.split(".")
    if len(parts) < 2 or parts[0] != "repro":
        return None
    return parts[1] if parts[1] in LAYER_RANKS else None


class LayeringRule(ast.NodeVisitor):
    """R5: no imports pointing up the device→kernel→core→UI stack."""

    def __init__(self, ctx: _Located) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []
        self._layer = layer_of(ctx.package_rel)

    def _flag(self, node: ast.AST, module: str, target: str) -> None:
        assert self._layer is not None
        self.findings.append(Finding(
            path=self.ctx.path, line=node.lineno, col=node.col_offset,
            rule="R5",
            message=f"upward import of {module!r}:"
                    f" {self._layer} (layer {LAYER_RANKS[self._layer]})"
                    f" may not depend on {target} (layer"
                    f" {LAYER_RANKS[target]}) — invert the dependency or"
                    " inject it from above"))

    def _check_module(self, node: ast.AST, module: str) -> None:
        if self._layer is None:
            return
        target = _module_layer(module)
        if target is None:
            return
        if LAYER_RANKS[target] > LAYER_RANKS[self._layer]:
            self._flag(node, module, target)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_module(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = self._absolute_module(node)
        if module is not None:
            self._check_module(node, module)
            # ``from repro import experiments`` names the layer in the
            # alias list, not the module path.
            if module == "repro":
                for alias in node.names:
                    self._check_module(node, f"repro.{alias.name}")
        self.generic_visit(node)

    def _absolute_module(self, node: ast.ImportFrom) -> str | None:
        """Resolve an import to a dotted path, following relativity."""
        if node.level == 0:
            return node.module
        rel = self.ctx.package_rel
        if rel is None:
            return None
        # The importing module's package: drop the filename, then one
        # more component per extra leading dot.
        pkg = list(rel[:-1])
        for _ in range(node.level - 1):
            if not pkg:
                return None
            pkg.pop()
        if node.module:
            pkg.extend(node.module.split("."))
        return ".".join(pkg) if pkg else None
