"""Dual-path equivalence rules R10-R13 (DESIGN.md §17).

The replay engine keeps two implementations of every hot computation:
the discrete event loop (the oracle) and the BurstPlan fast path, which
itself forks into packed numpy kernels and scalar fallbacks.  All of
them promise *bit-identical* results.  Nothing in Python enforces that
promise structurally — a parameter added to the session, a cost term
added to a device model, or a new input to ``build_plan`` silently
drifts the twins apart until a parity test happens to cover it.

These rules make the promise checkable without running anything:

* **R10 path-coverage drift** — every ``SimulationSession`` /
  ``MobileSystem`` parameter and ``FaultSpec`` field is either read by
  the fast-path cone (``_burst_plan`` / ``_replay_plan`` and everything
  they call) or named in the refusal predicate.
* **R11 kernel-pair drift** — the packed walks account the same
  breakdown buckets, spec constants and DPM transitions as the device
  models they shadow, and numpy aliases in gated modules are only used
  under an ``is not None`` guard.
* **R12 float-reassociation** — no numpy reductions in modules under
  the ``REPRO_NO_NUMPY`` bit-identical contract (reductions
  reassociate; elementwise lanes round exactly like their scalar twin).
* **R13 plan-staleness** — memoised plans are never mutated and every
  ``build_plan`` input is folded into ``plan_for``'s memo key.

Like :mod:`repro.lint.interproc` the rules are *syntactic but
whole-program*: they anchor on the real names of the replay machinery
(``SimulationSession``, ``_disk_walk``, ``plan_for``, ...) and go
silent when an anchor is absent, so snippets and partial projects lint
clean by default.  The dynamic half of the same contract is the shadow
sanitizer in :mod:`repro.core.shadow`.
"""

from __future__ import annotations

import ast
import re

from repro.lint.findings import Finding
from repro.lint.ir import ClassIR, ModuleIR, Project, _annotation_name

# --------------------------------------------------------------------
# R11 allowances: device effects the packed walk legitimately never
# replays.  Each entry must be justified by a _packed_ok refusal or by
# the shared-state argument below; an unexplained entry is drift.
# --------------------------------------------------------------------

#: Sleep-tier and fault buckets: ``_packed_ok`` refuses devices with a
#: sleep timeout, devices already asleep, and any run with a fault
#: schedule, so the walk can never need to charge them.
_DISK_BUCKET_ALLOWANCE = frozenset({
    "disk.to-sleep", "disk.wake", "disk.spinup-failed",
})

#: Spec constants whose cost reaches the walk through the *shared*
#: ``device._transitions`` table (spindown/spinup/wake/sleep times and
#: energies — the walk indexes the same TransitionSpec objects the
#: device charges, so the constants cannot drift), through
#: ``device.spindown_policy.timeout()`` (spindown_timeout), or that
#: only feed machinery ``_packed_ok`` refuses: the sleep tier
#: (sleep_power), adaptive-DPM feedback (breakeven_time, which only
#: non-FixedTimeout policies consume), and fault retry tuning
#: (spinup_retries/backoff, dead without a fault schedule).
_DISK_SPEC_ALLOWANCE = frozenset({
    "sleep_power", "spindown_time", "spindown_energy", "spinup_time",
    "spinup_energy", "wake_time", "wake_energy", "spindown_timeout",
    "sleep_timeout", "breakeven_time", "spinup_retries",
    "spinup_backoff",
})

#: The sleep tier again: unreachable when ``sleep_timeout is None`` and
#: the device is not already asleep — both checked by ``_packed_ok``.
_DISK_TRANSITION_ALLOWANCE = frozenset({
    ("standby", "sleep"), ("sleep", "active"),
})

#: PSM bulk transfer is refused by ``_packed_ok`` (``not
#: psm_transfer_enabled``), so its buckets never occur on the fast
#: path; outages require a fault schedule, also refused.
_WNIC_BUCKET_ALLOWANCE = frozenset({
    "wnic.psm-recv", "wnic.psm-send", "wnic.outage",
})

#: CAM<->PSM transition costs flow through the shared ``_transitions``
#: table (see the disk note); the psm_* transfer constants and
#: network_timeout only feed PSM bulk transfer and fault handling,
#: both refused by ``_packed_ok``.
_WNIC_SPEC_ALLOWANCE = frozenset({
    "cam_to_psm_time", "cam_to_psm_energy", "psm_to_cam_time",
    "psm_to_cam_energy", "psm_transfer_max_bytes", "beacon_interval",
    "psm_bandwidth_factor", "psm_recv_power", "psm_send_power",
    "network_timeout",
})

_WNIC_TRANSITION_ALLOWANCE: frozenset[tuple[str, str]] = frozenset()

#: Breakdown-bucket literals: ``"disk.spinup"``, ``"wnic.recv"``, ...
_BUCKET_RE = re.compile(r"^(disk|wnic)\.[a-z0-9_.>-]+$")

#: numpy reductions whose accumulation order differs from a scalar
#: left-to-right loop (R12).  ``add.reduce`` is caught separately.
_REDUCTIONS = frozenset({
    "sum", "dot", "matmul", "prod", "mean", "cumsum", "cumprod",
    "einsum", "trapz", "nansum", "nanmean", "inner", "outer",
})

#: Frozen plan types (R13) and the factories that hand them out.
_FROZEN_PLANS = frozenset({"BurstPlan", "CompiledTrace"})
_PLAN_MAKERS = frozenset({"plan_for", "build_plan", "compile_trace"})


# --------------------------------------------------------------------
# shared helpers
# --------------------------------------------------------------------

def _params_of(fn: ast.FunctionDef | ast.AsyncFunctionDef
               ) -> list[ast.arg]:
    a = fn.args
    return [*a.posonlyargs, *a.args, *a.kwonlyargs]


def _self_arg(fn: ast.FunctionDef | ast.AsyncFunctionDef
              ) -> str | None:
    a = fn.args
    ordered = [*a.posonlyargs, *a.args]
    return ordered[0].arg if ordered else None


def _attr_chain(node: ast.expr) -> tuple[str, ...] | None:
    """``self.faults.spec.x`` -> ``("self", "faults", "spec", "x")``."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        parts.reverse()
        return tuple(parts)
    return None


def _last_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _classes_named(project: Project, name: str) -> list[ClassIR]:
    return [project.classes[q] for q in sorted(project.classes)
            if q.rsplit(".", 1)[-1] == name]


def _closure(seeds: set[str], edges: dict[str, set[str]]) -> set[str]:
    out = set(seeds)
    queue = list(seeds)
    while queue:
        for nxt in edges.get(queue.pop(), ()):
            if nxt not in out:
                out.add(nxt)
                queue.append(nxt)
    return out


def _assign_pairs(node: ast.AST) -> list[tuple[ast.expr, ast.expr]]:
    """Every ``(target, value)`` pair of Assign/AnnAssign under node."""
    pairs: list[tuple[ast.expr, ast.expr]] = []
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign):
            pairs.extend((t, stmt.value) for t in stmt.targets)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            pairs.append((stmt.target, stmt.value))
    return pairs


# --------------------------------------------------------------------
# R10: path-coverage drift
# --------------------------------------------------------------------

class _SessionModel:
    """The fast-path coverage facts of one SimulationSession class."""

    def __init__(self, project: Project, cls: ClassIR) -> None:
        self.cls = cls
        self.path = cls.module.path
        self.methods: dict[str, ast.FunctionDef] = {
            name: project.functions[q].node
            for name, q in cls.methods.items()
            if q in project.functions
        }
        self.init = self.methods.get("__init__")
        self.params: list[ast.arg] = (
            _params_of(self.init)[1:] if self.init is not None else [])
        self.stored = self._stored_attrs()
        self.edges = self._derived_edges()
        self.cone = self._cone()
        self.cone_attrs = self._cone_attrs()

    def _stored_attrs(self) -> dict[str, set[str]]:
        """init parameter -> the ``self.*`` attrs built from it."""
        stored: dict[str, set[str]] = {a.arg: set() for a in self.params}
        if self.init is None:
            return stored
        self_name = _self_arg(self.init)
        for target, value in _assign_pairs(self.init):
            chain = _attr_chain(target)
            if chain is None or len(chain) != 2 or chain[0] != self_name:
                continue
            for node in ast.walk(value):
                if isinstance(node, ast.Name) and node.id in stored:
                    stored[node.id].add(chain[1])
        return stored

    def _derived_edges(self) -> dict[str, set[str]]:
        """attr -> attrs assigned from it, across *every* method.

        Derivations are not confined to ``_materialise``: ``run`` e.g.
        builds ``_sinks_hot`` from ``sinks``, so a per-method scan
        would falsely flag the ``sinks`` parameter as uncovered.
        """
        edges: dict[str, set[str]] = {}
        for method in self.methods.values():
            self_name = _self_arg(method)
            if self_name is None:
                continue
            for target, value in _assign_pairs(method):
                chain = _attr_chain(target)
                if (chain is None or len(chain) != 2
                        or chain[0] != self_name):
                    continue
                for node in ast.walk(value):
                    if not isinstance(node, ast.Attribute):
                        continue
                    src = _attr_chain(node)
                    if src is not None and src[0] == self_name \
                            and len(src) >= 2:
                        edges.setdefault(src[1], set()).add(chain[1])
        return edges

    def _cone(self) -> set[str]:
        """_burst_plan/_replay_plan plus transitively called methods."""
        cone = {name for name in ("_burst_plan", "_replay_plan")
                if name in self.methods}
        queue = list(cone)
        while queue:
            method = self.methods[queue.pop()]
            self_name = _self_arg(method)
            for node in ast.walk(method):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == self_name
                        and func.attr in self.methods
                        and func.attr not in cone):
                    cone.add(func.attr)
                    queue.append(func.attr)
        return cone

    def _cone_attrs(self) -> set[str]:
        attrs: set[str] = set()
        for name in self.cone:
            method = self.methods[name]
            self_name = _self_arg(method)
            for node in ast.walk(method):
                if (isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == self_name):
                    attrs.add(node.attr)
        return attrs

    def coverage(self) -> dict[str, frozenset[str]]:
        """init parameter -> the cone attrs that witness its coverage."""
        return {
            param: frozenset(
                _closure(set(attrs), self.edges) & self.cone_attrs)
            for param, attrs in self.stored.items()
        }


def _session_models(project: Project) -> list[_SessionModel]:
    return [
        _SessionModel(project, cls)
        for cls in _classes_named(project, "SimulationSession")
        if {"_burst_plan", "_replay_plan"} <= cls.methods.keys()
    ]


def session_fast_path_coverage(project: Project
                               ) -> dict[str, frozenset[str]]:
    """Audit hook: map every ``SimulationSession.__init__`` parameter
    to the fast-path attributes that witness its coverage.

    An empty witness set is exactly what R10 flags; the session test
    suite asserts every real parameter maps to a non-empty set.
    """
    for model in _session_models(project):
        return model.coverage()
    return {}


def _r10_params(model: _SessionModel) -> list[Finding]:
    findings = []
    coverage = model.coverage()
    for arg in model.params:
        if coverage.get(arg.arg):
            continue
        findings.append(Finding(
            path=model.path, line=arg.lineno, col=arg.col_offset,
            rule="R10",
            message=f"session parameter '{arg.arg}' is neither read by"
                    " the fast-path cone (_burst_plan/_replay_plan)"
                    " nor named in its refusal predicate — runs that"
                    " vary it replay identically"))
    return findings


def _r10_mobile_system(project: Project,
                       model: _SessionModel) -> list[Finding]:
    envs = _classes_named(project, "MobileSystem")
    if not envs:
        return []
    init_q = envs[0].methods.get("__init__")
    if init_q is None or init_q not in project.functions:
        return []
    env_params = [a.arg for a
                  in _params_of(project.functions[init_q].node)[1:]]
    findings = []
    for method in model.methods.values():
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            if _last_name(node.func) != "MobileSystem":
                continue
            if any(kw.arg is None for kw in node.keywords):
                continue  # **kwargs forwards everything
            given = {kw.arg for kw in node.keywords}
            for i, param in enumerate(env_params):
                if i < len(node.args) or param in given:
                    continue
                findings.append(Finding(
                    path=model.path, line=node.lineno,
                    col=node.col_offset, rule="R10",
                    message=f"MobileSystem parameter '{param}' is not"
                            " forwarded by the session — an event-loop"
                            " knob the session can never set, invisible"
                            " to the fast-path refusal predicate"))
    return findings


def _maximal_self_chains(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                         self_name: str | None) -> list[tuple[str, ...]]:
    inner = {id(node.value) for node in ast.walk(fn)
             if isinstance(node, ast.Attribute)
             and isinstance(node.value, ast.Attribute)}
    chains = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and id(node) not in inner:
            chain = _attr_chain(node)
            if chain is not None and chain[0] == self_name:
                chains.append(chain)
    return chains


def _r10_fault_fields(project: Project,
                      model: _SessionModel) -> list[Finding]:
    specs = _classes_named(project, "FaultSpec")
    burst = model.methods.get("_burst_plan")
    if not specs or burst is None or "faults" not in model.stored:
        return []
    spec_fields = [
        stmt.target.id for stmt in specs[0].node.body
        if isinstance(stmt, ast.AnnAssign)
        and isinstance(stmt.target, ast.Name)
    ]
    fault_attrs = _closure(set(model.stored["faults"]), model.edges)
    chains = [
        chain
        for chain in _maximal_self_chains(burst, _self_arg(burst))
        if len(chain) >= 2 and chain[1] in fault_attrs
    ]
    field_chains = [chain for chain in chains if len(chain) >= 3]
    if not field_chains:
        # Either untouched entirely (the parameter-coverage check
        # reports that, once, at the parameter) or a bare whole-object
        # refusal, which covers every present and future field.  A
        # bare mention *conjoined* with field reads does not rescue:
        # `faults is not None and faults.outage_rate > 0` still only
        # refuses on the fields it names.
        return []
    mentioned = {part for chain in field_chains for part in chain[2:]}
    missing = [f for f in spec_fields if f not in mentioned]
    if not missing:
        return []
    return [Finding(
        path=model.path, line=burst.lineno, col=burst.col_offset,
        rule="R10",
        message="_burst_plan refuses on individual FaultSpec fields"
                f" but ignores {', '.join(missing)} — gate on the"
                " whole faults object or cover every field")]


def _run_r10(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for model in _session_models(project):
        findings.extend(_r10_params(model))
        findings.extend(_r10_mobile_system(project, model))
        findings.extend(_r10_fault_fields(project, model))
    return findings


# --------------------------------------------------------------------
# R11: kernel-pair drift
# --------------------------------------------------------------------

class _Effects:
    """Symbolic effect summary of one side of a kernel pair."""

    def __init__(self) -> None:
        #: bucket literal -> first occurrence (line, col)
        self.buckets: dict[str, tuple[int, int]] = {}
        #: dynamic-bucket prefixes seen ("disk.", "wnic.", None=any)
        self.state_wildcards: set[str | None] = set()
        self.transition_wildcard = False
        #: spec attribute -> first occurrence
        self.spec_attrs: dict[str, tuple[int, int]] = {}
        #: (src, dst) state pair -> first occurrence
        self.transitions: dict[tuple[str, str], tuple[int, int]] = {}


def _enum_values(project: Project) -> dict[str, dict[str, str]]:
    """Enum class name -> {MEMBER: string value}, project-wide."""
    enums: dict[str, dict[str, str]] = {}
    for module in project.modules.values():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {_last_name(b) for b in node.bases}
            if not bases & {"Enum", "StrEnum", "IntEnum"}:
                continue
            members: dict[str, str] = {}
            for stmt in node.body:
                if (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, str)):
                    members[stmt.targets[0].id] = stmt.value.value
            if members:
                enums[node.name] = members
    return enums


def _module_state_aliases(module: ModuleIR,
                          enums: dict[str, dict[str, str]]
                          ) -> dict[str, str]:
    """Module-level ``_IDLE = DiskState.IDLE.value`` style aliases."""
    aliases: dict[str, str] = {}
    for stmt in module.tree.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)):
            continue
        value = _state_of(stmt.value, {}, enums)
        if value is not None:
            aliases[stmt.targets[0].id] = value
    return aliases


def _state_of(expr: ast.expr, aliases: dict[str, str],
              enums: dict[str, dict[str, str]]) -> str | None:
    """Resolve an expression to a device-state string, if possible."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.Name):
        return aliases.get(expr.id)
    chain = _attr_chain(expr) if isinstance(expr, ast.Attribute) else None
    if chain is not None and len(chain) == 3 and chain[2] == "value" \
            and chain[0] in enums:
        member = enums[chain[0]].get(chain[1])
        return member if member is not None else chain[1].lower()
    return None


def _spec_receivers(fn: ast.FunctionDef | ast.AsyncFunctionDef
                    ) -> set[str]:
    """Names that hold a device spec inside one function."""
    receivers: set[str] = set()
    for arg in _params_of(fn):
        ann = (_annotation_name(arg.annotation)
               if arg.annotation is not None else None)
        if arg.arg == "spec" or (
                ann is not None and ann.endswith("Spec")
                and ann != "TransitionSpec"):
            receivers.add(arg.arg)
    for target, value in _assign_pairs(fn):
        if not isinstance(target, ast.Name):
            continue
        chain = (_attr_chain(value)
                 if isinstance(value, ast.Attribute) else None)
        if chain is not None and chain[-1] == "spec":
            receivers.add(target.id)
    return receivers


def _collect_buckets(tree: ast.AST, effects: _Effects) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if _BUCKET_RE.match(node.value):
                effects.buckets.setdefault(
                    node.value, (node.lineno, node.col_offset))
            continue
        parts: list[str] = []
        if isinstance(node, ast.JoinedStr):
            parts = [p.value for p in node.values
                     if isinstance(p, ast.Constant)
                     and isinstance(p.value, str)]
        elif (isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Add)
                and isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)):
            parts = [node.left.value]
        if not parts:
            continue
        if any("->" in part for part in parts):
            effects.transition_wildcard = True
        elif any("." in part for part in parts):
            prefix = next(
                (p for part in parts for p in ("disk.", "wnic.")
                 if part.startswith(p)), None)
            effects.state_wildcards.add(prefix)


def _collect_fn_effects(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                        aliases: dict[str, str],
                        enums: dict[str, dict[str, str]],
                        effects: _Effects) -> None:
    _collect_buckets(fn, effects)
    receivers = _spec_receivers(fn)
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute):
            value = node.value
            if isinstance(value, ast.Name) and value.id in receivers:
                effects.spec_attrs.setdefault(
                    node.attr, (node.lineno, node.col_offset))
            elif isinstance(value, ast.Attribute) \
                    and value.attr == "spec":
                effects.spec_attrs.setdefault(
                    node.attr, (node.lineno, node.col_offset))
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.slice, ast.Tuple) \
                and len(node.slice.elts) == 2:
            src = _state_of(node.slice.elts[0], aliases, enums)
            dst = _state_of(node.slice.elts[1], aliases, enums)
            if src is not None and dst is not None:
                effects.transitions.setdefault(
                    (src, dst), (node.lineno, node.col_offset))
        elif isinstance(node, ast.Call) \
                and _last_name(node.func) == "TransitionSpec":
            pair: list[str | None] = [None, None]
            for i, arg in enumerate(node.args[:2]):
                pair[i] = _state_of(arg, aliases, enums)
            for kw in node.keywords:
                if kw.arg == "src":
                    pair[0] = _state_of(kw.value, aliases, enums)
                elif kw.arg == "dst":
                    pair[1] = _state_of(kw.value, aliases, enums)
            if pair[0] is not None and pair[1] is not None:
                effects.transitions.setdefault(
                    (pair[0], pair[1]), (node.lineno, node.col_offset))


class _DeviceSide:
    """Effects + state vocabulary of one device class hierarchy."""

    def __init__(self, project: Project, cls_qualname: str,
                 enums: dict[str, dict[str, str]]) -> None:
        self.effects = _Effects()
        self.states: set[str] = set()
        modules: dict[str, ModuleIR] = {}
        for qualname in project.mro(cls_qualname):
            cls = project.classes[qualname]
            module = cls.module
            modules[module.name] = module
            aliases = _module_state_aliases(module, enums)
            for stmt in ast.walk(cls.node):
                if isinstance(stmt, ast.FunctionDef):
                    _collect_fn_effects(stmt, aliases, enums,
                                        self.effects)
            _collect_buckets(cls.node, self.effects)
        # Module-level statements of the defining modules carry bucket
        # tables (e.g. direction -> "wnic.recv" dicts) and transitions.
        for module in modules.values():
            aliases = _module_state_aliases(module, enums)
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef,
                                     ast.ClassDef, ast.Import,
                                     ast.ImportFrom)):
                    continue
                _collect_buckets(stmt, self.effects)
            # State vocabulary: enums defined in these modules.
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) \
                        and node.name in enums:
                    self.states.update(enums[node.name].values())


def _walk_cone(project: Project, anchor: str) -> list[str]:
    """Qualnames of [_packed_ok, _replay_packed, anchor] that exist."""
    cone = []
    for name in ("_packed_ok", "_replay_packed", anchor):
        for qualname in sorted(project.functions):
            if qualname.rsplit(".", 1)[-1] == name:
                cone.append(qualname)
                break
    return cone


def _collect_walk_effects(project: Project, cone: list[str],
                          enums: dict[str, dict[str, str]]
                          ) -> _Effects:
    effects = _Effects()
    for qualname in cone:
        fn = project.functions[qualname]
        aliases = _module_state_aliases(fn.module, enums)
        _collect_fn_effects(fn.node, aliases, enums, effects)
    return effects


def _state_cover(effects: _Effects, prefix: str,
                 states: set[str]) -> set[str]:
    if None in effects.state_wildcards \
            or prefix in effects.state_wildcards:
        return {prefix + state for state in states}
    return set()


def _r11_device(project: Project, cls_name: str, anchor: str,
                prefix: str, walk: _Effects, walk_spec_union: set[str],
                bucket_allowance: frozenset[str],
                spec_allowance: frozenset[str],
                transition_allowance: frozenset[tuple[str, str]],
                enums: dict[str, dict[str, str]]) -> list[Finding]:
    classes = _classes_named(project, cls_name)
    anchors = [project.functions[q] for q in sorted(project.functions)
               if q.rsplit(".", 1)[-1] == anchor]
    if not classes or not anchors:
        return []
    walk_fn = anchors[0]
    walk_path = walk_fn.module.path
    walk_line = walk_fn.node.lineno
    walk_col = walk_fn.node.col_offset
    device = _DeviceSide(project, classes[0].qualname, enums)
    dev = device.effects
    findings: list[Finding] = []

    dev_literals = {b for b in dev.buckets if b.startswith(prefix)}
    walk_literals = {b for b in walk.buckets if b.startswith(prefix)}
    walk_cover = _state_cover(walk, prefix, device.states)
    for bucket in sorted(dev_literals - walk_literals - walk_cover
                         - bucket_allowance):
        findings.append(Finding(
            path=walk_path, line=walk_line, col=walk_col, rule="R11",
            message=f"device breakdown bucket '{bucket}' ({cls_name})"
                    f" is never accounted by {anchor} — the two replay"
                    " paths drift on any trace that charges it"))
    dev_cover = _state_cover(dev, prefix, device.states)
    for bucket in sorted(walk_literals - dev_literals - dev_cover):
        if "->" in bucket and dev.transition_wildcard:
            continue
        line, col = walk.buckets[bucket]
        findings.append(Finding(
            path=walk_path, line=line, col=col, rule="R11",
            message=f"packed-walk bucket '{bucket}' does not exist in"
                    f" the {cls_name} device model — the walk charges"
                    " energy the event loop never does"))

    for attr in sorted(set(dev.spec_attrs) - walk_spec_union
                       - spec_allowance):
        findings.append(Finding(
            path=walk_path, line=walk_line, col=walk_col, rule="R11",
            message=f"device spec constant '{attr}' ({cls_name}) is"
                    f" never read by the packed walk — a cost term the"
                    " fast path silently drops"))

    dev_tr = set(dev.transitions)
    walk_tr = set(walk.transitions)
    for src, dst in sorted(dev_tr - walk_tr - transition_allowance):
        findings.append(Finding(
            path=walk_path, line=walk_line, col=walk_col, rule="R11",
            message=f"device transition {src}->{dst} ({cls_name}) is"
                    f" never charged by {anchor}"))
    for src, dst in sorted(walk_tr - dev_tr):
        line, col = walk.transitions[(src, dst)]
        findings.append(Finding(
            path=walk_path, line=line, col=col, rule="R11",
            message=f"packed walk charges transition {src}->{dst}"
                    f" which the {cls_name} model never defines"))
    return findings


def _numpy_alias(module: ModuleIR) -> str | None:
    """The module's numpy alias, iff gated by REPRO_NO_NUMPY."""
    gated = any(isinstance(node, ast.Constant)
                and node.value == "REPRO_NO_NUMPY"
                for node in ast.walk(module.tree))
    if not gated:
        return None
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    return alias.asname or "numpy"
    return None


def _terminates(stmts: list[ast.stmt]) -> bool:
    return bool(stmts) and isinstance(stmts[-1], (ast.Return, ast.Raise))


def _unguarded_numpy_uses(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                          alias: str) -> list[ast.Name]:
    """Load uses of the numpy alias outside any ``is not None`` guard.

    A guard is an If/IfExp whose test mentions the alias (uses inside
    the subtree are guarded), an early-return If whose body or orelse
    terminates (everything after it is guarded), or an assert on the
    alias.
    """
    spans: list[tuple[int, int]] = []
    after: int | None = None

    def mentions(tree: ast.expr) -> bool:
        return any(isinstance(node, ast.Name) and node.id == alias
                   for node in ast.walk(tree))

    for node in ast.walk(fn):
        if isinstance(node, (ast.If, ast.IfExp)) and mentions(node.test):
            end = node.end_lineno or node.lineno
            spans.append((node.lineno, end))
            if isinstance(node, ast.If) and (
                    _terminates(node.body) or _terminates(node.orelse)):
                after = end if after is None else min(after, end)
        elif isinstance(node, ast.Assert) and mentions(node.test):
            end = node.end_lineno or node.lineno
            spans.append((node.lineno, end))
            after = end if after is None else min(after, end)
    unguarded = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id == alias \
                and isinstance(node.ctx, ast.Load):
            if any(a <= node.lineno <= b for a, b in spans):
                continue
            if after is not None and node.lineno > after:
                continue
            unguarded.append(node)
    return unguarded


def _r11_numpy_guards(project: Project) -> list[Finding]:
    findings = []
    for module in project.modules.values():
        alias = _numpy_alias(module)
        if alias is None:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            for use in _unguarded_numpy_uses(node, alias):
                findings.append(Finding(
                    path=module.path, line=use.lineno,
                    col=use.col_offset, rule="R11",
                    message=f"numpy alias '{alias}' used without an"
                            f" 'if {alias} is not None' guard — the"
                            " scalar twin crashes under"
                            " REPRO_NO_NUMPY=1"))
    return findings


def _run_r11(project: Project) -> list[Finding]:
    enums = _enum_values(project)
    disk_walk = _collect_walk_effects(
        project, _walk_cone(project, "_disk_walk"), enums)
    wnic_walk = _collect_walk_effects(
        project, _walk_cone(project, "_wnic_walk"), enums)
    # Spec reads are compared as unions: the shared stages
    # (_replay_packed, _packed_ok) read e.g. bandwidth_bps on behalf
    # of both devices, so per-cone attribution would cross-flag.
    spec_union = set(disk_walk.spec_attrs) | set(wnic_walk.spec_attrs)
    findings = _r11_device(
        project, "HardDisk", "_disk_walk", "disk.", disk_walk,
        spec_union, _DISK_BUCKET_ALLOWANCE, _DISK_SPEC_ALLOWANCE,
        _DISK_TRANSITION_ALLOWANCE, enums)
    findings += _r11_device(
        project, "WirelessNic", "_wnic_walk", "wnic.", wnic_walk,
        spec_union, _WNIC_BUCKET_ALLOWANCE, _WNIC_SPEC_ALLOWANCE,
        _WNIC_TRANSITION_ALLOWANCE, enums)
    findings += _r11_numpy_guards(project)
    return findings


# --------------------------------------------------------------------
# R12: float reassociation under the REPRO_NO_NUMPY contract
# --------------------------------------------------------------------

def _run_r12(project: Project) -> list[Finding]:
    findings = []
    for module in project.modules.values():
        alias = _numpy_alias(module)
        if alias is None:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute):
                continue
            func = node.func
            chain = _attr_chain(func)
            name: str | None = None
            if chain is not None and chain[0] == alias and (
                    chain[-1] in _REDUCTIONS or chain[-1] == "reduce"):
                name = ".".join(chain)
            elif func.attr in _REDUCTIONS and any(
                    isinstance(sub, ast.Name) and sub.id == alias
                    for sub in ast.walk(func.value)):
                name = f".{func.attr}()"
            if name is None:
                continue
            findings.append(Finding(
                path=module.path, line=node.lineno,
                col=node.col_offset, rule="R12",
                message=f"numpy reduction '{name}' reassociates"
                        " floating-point accumulation; the scalar"
                        " fallback sums left-to-right, so the two"
                        " REPRO_NO_NUMPY legs round differently —"
                        " keep vector code elementwise and reduce"
                        " with the scalar loop"))
    return findings


# --------------------------------------------------------------------
# R13: plan staleness
# --------------------------------------------------------------------

def _root_names(expr: ast.expr) -> set[str]:
    """Free names an expression depends on (call *inputs*, not callees)."""
    callees = {id(node.func) for node in ast.walk(expr)
               if isinstance(node, ast.Call)}
    return {node.id for node in ast.walk(expr)
            if isinstance(node, ast.Name) and id(node) not in callees}


def _r13_memo_key(project: Project) -> list[Finding]:
    findings = []
    for qualname in sorted(project.functions):
        fn = project.functions[qualname]
        if fn.name != "plan_for" or fn.cls is not None:
            continue
        path = fn.module.path
        locals_: dict[str, ast.expr] = {}
        for target, value in _assign_pairs(fn.node):
            if isinstance(target, ast.Name):
                locals_.setdefault(target.id, value)
        key_roots: set[str] = set()
        saw_memo_write = False
        for target, value in _assign_pairs(fn.node):
            if not (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)):
                continue
            saw_memo_write = True
            key_expr = target.slice
            if isinstance(key_expr, ast.Name) \
                    and key_expr.id in locals_:
                key_roots.add(key_expr.id)
                key_expr = locals_[key_expr.id]
            key_roots |= _root_names(key_expr)
        if not saw_memo_write:
            continue
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Call)
                    and _last_name(node.func) == "build_plan"):
                continue
            inputs = [*node.args, *(kw.value for kw in node.keywords)]
            for arg in inputs:
                for root in sorted(_root_names(arg) - key_roots):
                    findings.append(Finding(
                        path=path, line=node.lineno,
                        col=node.col_offset, rule="R13",
                        message=f"build_plan input '{root}' is not"
                                " folded into plan_for's memo key —"
                                " cells that vary it are served a"
                                " stale memoised plan"))
    return findings


def _r13_frozen_writes(project: Project) -> list[Finding]:
    findings = []
    for qualname in sorted(project.functions):
        fn = project.functions[qualname]
        path = fn.module.path
        typed: set[str] = set()
        for arg in _params_of(fn.node):
            ann = (_annotation_name(arg.annotation)
                   if arg.annotation is not None else None)
            if ann in _FROZEN_PLANS:
                typed.add(arg.arg)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                ann_name = _annotation_name(node.annotation)
                if ann_name in _FROZEN_PLANS:
                    typed.add(node.target.id)
            elif (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                    and _last_name(node.value.func) in _PLAN_MAKERS):
                typed.add(node.targets[0].id)
        frozen_attrs: set[str] = set()
        if fn.cls is not None and fn.cls in project.classes:
            for attr, cls_q in project.classes[fn.cls] \
                    .attr_types.items():
                if cls_q.rsplit(".", 1)[-1] in _FROZEN_PLANS:
                    frozen_attrs.add(attr)
        self_name = _self_arg(fn.node) if fn.cls is not None else None
        for node in ast.walk(fn.node):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.AnnAssign) \
                    and node.value is not None:
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                chain = _attr_chain(target)
                if chain is None:
                    continue
                hit = (chain[0] in typed and len(chain) >= 2) or (
                    self_name is not None and chain[0] == self_name
                    and len(chain) >= 3 and chain[1] in frozen_attrs)
                if hit:
                    findings.append(Finding(
                        path=path, line=target.lineno,
                        col=target.col_offset, rule="R13",
                        message=f"write to '{'.'.join(chain)}' mutates"
                                " a memoised plan after creation —"
                                " plans are cached process-wide and"
                                " shared copy-on-write with workers;"
                                " build a new plan instead"))
    return findings


def _run_r13(project: Project) -> list[Finding]:
    return _r13_memo_key(project) + _r13_frozen_writes(project)


# --------------------------------------------------------------------
# entry point
# --------------------------------------------------------------------

def run_equiv_rules(project: Project,
                    select: frozenset[str] | None = None
                    ) -> list[Finding]:
    """Run the dual-path equivalence rules over a built project.

    Mirrors :func:`repro.lint.interproc.run_project_rules`: ``select``
    of ``None`` means all of R10-R13, suppression filtering is the
    caller's job, findings come back in (path, line, col, rule,
    message) order.
    """
    wanted = {"R10", "R11", "R12", "R13"}
    if select is not None:
        wanted &= select
    if not wanted or not project.modules:
        return []
    findings: list[Finding] = []
    if "R10" in wanted:
        findings.extend(_run_r10(project))
    if "R11" in wanted:
        findings.extend(_run_r11(project))
    if "R12" in wanted:
        findings.extend(_run_r12(project))
    if "R13" in wanted:
        findings.extend(_run_r13(project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule,
                                 f.message))
    return findings
