"""Interprocedural rules R6-R9 for :mod:`repro.lint`.

These rules answer whole-program questions the per-file pass (R1-R5)
cannot: they run over a :class:`~repro.lint.ir.Project` and its
:class:`~repro.lint.callgraph.CallGraph`, with the fixpoint engine in
:mod:`repro.lint.dataflow` doing the propagation.

* **R6 determinism-taint** — any function reachable from the sweep
  worker entry (``_execute_job``) or from cache-key hashing
  (``run_key``) that *directly* performs an impure operation
  (wall-clock, entropy, unseeded RNG, environment read, iteration over
  an unordered set) is flagged, with the call chain from the root in
  the message.  On these paths R6 replaces R1's local check (the
  runner drops the duplicate R1 finding).
* **R7 parallel-safety** — worker-reachable code must not write
  module-level state (workers are forked; writes never reach the
  parent), and nothing non-picklable (lambdas, nested functions, open
  handles, locks) may flow into the ``SweepJob`` /
  ``ParallelSweepExecutor`` fork boundary.
* **R8 cache-key soundness** — every result-affecting parameter of
  ``SimulationSession.__init__`` must have a corresponding entry in the
  description dict hashed by ``run_key``; an omitted input means a run
  varying it can hit a stale cached result.
* **R9 interprocedural unit flow** — return dimensions propagate
  through the call graph, catching mixed-dimension arithmetic that
  crosses a call boundary (invisible to R2) and unit-less returns
  assigned into unit-alias-typed slots.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator

from repro.lint.callgraph import CallGraph, FunctionSummary
from repro.lint.dataflow import reachable, solve
from repro.lint.findings import Finding
from repro.lint.ir import FunctionIR, ImportTable, Project
from repro.lint.rules import impurity_of_call
from repro.lint.unitinfer import (
    DIMENSION_ALIASES,
    UnitEnv,
    dimension_of_annotation,
    is_bare_numeric_annotation,
)

# ----------------------------------------------------------------------
# R6 — determinism taint
# ----------------------------------------------------------------------
#: functions whose transitive callees must be deterministic: the sweep
#: worker entry point and the cache-key hash.
_R6_ROOTS = (
    "repro.experiments.parallel._execute_job",
    "repro.experiments.cache.run_key",
)

#: the sanctioned randomness front door is exempt (it wraps the RNG
#: constructors the rest of the code must not touch directly).
_RNG_MODULE = "repro.sim.rng"

_ENV_READ_CALLS = frozenset({
    "os.getenv", "os.getenvb", "os.environ.get", "os.environ.items",
    "os.environ.keys", "os.environ.values", "os.environ.copy",
})

_SET_MESSAGE = ("iteration over an unordered set — wrap in sorted() so"
                " replay order (and therefore results) never depends on"
                " hash seeding")


def _is_set_expr(expr: ast.expr, imports: ImportTable) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        return imports.resolve(expr.func) in ("set", "frozenset")
    return False


def _direct_sources(fn: FunctionIR, summary: FunctionSummary
                    ) -> list[tuple[ast.AST, str]]:
    """(node, message) for every impure operation in the function body."""
    out: list[tuple[ast.AST, str]] = []
    for dotted, call in summary.external:
        message = impurity_of_call(dotted, call)
        if message is not None:
            out.append((call, message))
        elif dotted in _ENV_READ_CALLS:
            out.append((call, f"environment read {dotted}() — results"
                              " must not depend on the host environment;"
                              " thread configuration through"
                              " ExperimentConfig"))
    imports = fn.module.imports
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Subscript):
            if imports.resolve(node.value) == "os.environ":
                out.append((node, "environment read os.environ[...] —"
                                  " results must not depend on the host"
                                  " environment; thread configuration"
                                  " through ExperimentConfig"))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter, imports):
                out.append((node.iter, _SET_MESSAGE))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter, imports):
                    out.append((gen.iter, _SET_MESSAGE))
    return out


def _run_r6(graph: CallGraph) -> list[Finding]:
    project = graph.project
    roots = {q for q in _R6_ROOTS if q in project.functions}
    if not roots:
        return []
    reach = reachable(roots, graph.callees)
    findings: list[Finding] = []
    for qualname in sorted(reach):
        fn = project.functions.get(qualname)
        if fn is None or fn.module.name == _RNG_MODULE:
            continue
        sources = _direct_sources(fn, graph.summaries[qualname])
        if not sources:
            continue
        chain = graph.shortest_path(roots, qualname) or [qualname]
        via = " -> ".join(chain)
        for node, message in sources:
            findings.append(Finding(
                path=fn.module.path, line=node.lineno,
                col=node.col_offset, rule="R6",
                message=f"{message} [reachable from sweep/cache-key"
                        f" root via {via}]"))
    return findings


# ----------------------------------------------------------------------
# R7 — parallel safety
# ----------------------------------------------------------------------
_WORKER_ROOTS = ("repro.experiments.parallel._execute_job",)

#: methods that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "add", "update", "setdefault", "insert",
    "remove", "discard", "pop", "popitem", "clear", "appendleft",
    "extendleft",
})

_LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Event",
    "threading.Condition", "threading.Semaphore",
    "threading.BoundedSemaphore", "multiprocessing.Lock",
    "multiprocessing.RLock",
})

#: constructors whose results are mutable — unsafe to stage in the
#: fork-inherited worker payload registry.
_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.deque", "collections.defaultdict",
    "collections.Counter", "collections.OrderedDict",
})


def _fn_params(fn: FunctionIR) -> set[str]:
    args = fn.node.args
    names = {a.arg for a in
             (*args.posonlyargs, *args.args, *args.kwonlyargs)}
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


def _shared_state_writes(fn: FunctionIR) -> list[Finding]:
    """Writes to module-level state inside one worker-reachable body."""
    declared: set[str] = set()
    assigned: set[str] = set()
    params = _fn_params(fn)
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            declared.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigned.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                assigned.add(node.target.id)

    mutable = fn.module.mutable_globals

    def is_module_ref(name: str) -> bool:
        if name in params:
            return False
        if name in declared:
            return True
        return name in mutable and name not in assigned

    def flag(node: ast.AST, what: str) -> Finding:
        return Finding(
            path=fn.module.path, line=node.lineno, col=node.col_offset,
            rule="R7",
            message=f"worker-reachable code {what} — sweep workers are"
                    " forked processes, so the write never reaches the"
                    " parent and breaks bit-identical parallel/serial"
                    " parity; return the value instead")

    findings: list[Finding] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATORS and \
                isinstance(node.func.value, ast.Name) and \
                is_module_ref(node.func.value.id):
            findings.append(flag(
                node, f"mutates module-level container"
                      f" {node.func.value.id!r}"
                      f" (.{node.func.attr}())"))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and \
                        isinstance(target.value, ast.Name) and \
                        is_module_ref(target.value.id):
                    findings.append(flag(
                        node, "stores into module-level container"
                              f" {target.value.id!r}"))
                elif isinstance(target, ast.Name) and \
                        target.id in declared:
                    findings.append(flag(
                        node, f"rebinds module-level name {target.id!r}"
                              " via 'global'"))
    return findings


def _unpicklable_kind(expr: ast.expr, fn: FunctionIR,
                      summary: FunctionSummary) -> str | None:
    if isinstance(expr, ast.Lambda):
        return "a lambda"
    if isinstance(expr, ast.Name) and expr.id in summary.local_defs:
        return f"nested function {expr.id!r} (closure)"
    if isinstance(expr, ast.Call):
        dotted = fn.module.imports.resolve(expr.func)
        if dotted == "open":
            return "an open file handle"
        if dotted in _LOCK_FACTORIES:
            return f"a {dotted}()"
    return None


def _mutable_payload_kind(expr: ast.expr, fn: FunctionIR) -> str | None:
    """Why ``expr`` is a mutable value, or None if it looks immutable."""
    if isinstance(expr, ast.List):
        return "a list literal"
    if isinstance(expr, ast.Dict):
        return "a dict literal"
    if isinstance(expr, ast.Set):
        return "a set literal"
    if isinstance(expr, ast.ListComp):
        return "a list comprehension"
    if isinstance(expr, ast.SetComp):
        return "a set comprehension"
    if isinstance(expr, ast.DictComp):
        return "a dict comprehension"
    if isinstance(expr, ast.Call):
        dotted = fn.module.imports.resolve(expr.func)
        if dotted in _MUTABLE_FACTORIES:
            return f"{dotted}()"
    return None


def _staged_payload_exprs(summary: FunctionSummary) -> list[ast.expr]:
    """Payload arguments of ``stage_payload(digest, payload)`` calls."""
    out: list[ast.expr] = []
    seen: set[int] = set()

    def payload_arg(call: ast.Call) -> None:
        if id(call) in seen:
            return
        seen.add(id(call))
        if len(call.args) > 1:
            out.append(call.args[1])
        for kw in call.keywords:
            if kw.arg == "payload":
                out.append(kw.value)

    for target, call in summary.calls:
        if target.rsplit(".", 1)[-1] == "stage_payload":
            payload_arg(call)
    for dotted, call in summary.external:
        if dotted.rsplit(".", 1)[-1] == "stage_payload":
            payload_arg(call)
    return out


def _iter_display_values(expr: ast.expr) -> Iterator[ast.expr]:
    """The expression plus every element of nested literal displays."""
    yield expr
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        for elt in expr.elts:
            yield from _iter_display_values(elt)
    elif isinstance(expr, ast.Dict):
        for part in (*expr.keys, *expr.values):
            if part is not None:
                yield from _iter_display_values(part)


def _boundary_exprs(summary: FunctionSummary
                    ) -> list[tuple[str, ast.expr]]:
    """(boundary label, argument expression) pairs crossing the fork."""
    out: list[tuple[str, ast.expr]] = []

    def job_args(call: ast.Call) -> None:
        for arg in call.args:
            out.append(("SweepJob", arg))
        for kw in call.keywords:
            out.append(("SweepJob", kw.value))

    seen: set[int] = set()
    for cls_qual, call in summary.constructs:
        if cls_qual.rsplit(".", 1)[-1] == "SweepJob" and \
                id(call) not in seen:
            seen.add(id(call))
            job_args(call)
    for dotted, call in summary.external:
        if dotted.rsplit(".", 1)[-1] == "SweepJob" and \
                id(call) not in seen:
            seen.add(id(call))
            job_args(call)
    for target, call in summary.calls:
        if not target.endswith("ParallelSweepExecutor.run_sweep"):
            continue
        # Only policy_factories is pickled (it lands in SweepJob
        # fields); programs_factory runs in the parent.
        if len(call.args) > 1:
            out.append(("ParallelSweepExecutor.run_sweep", call.args[1]))
        for kw in call.keywords:
            if kw.arg == "policy_factories":
                out.append(("ParallelSweepExecutor.run_sweep", kw.value))
    return out


def _run_r7(graph: CallGraph) -> list[Finding]:
    project = graph.project
    findings: list[Finding] = []
    worker_roots = {q for q in _WORKER_ROOTS if q in project.functions}
    if worker_roots:
        for qualname in sorted(reachable(worker_roots, graph.callees)):
            fn = project.functions.get(qualname)
            if fn is not None:
                findings.extend(_shared_state_writes(fn))
    for qualname in sorted(graph.summaries):
        fn = project.functions[qualname]
        summary = graph.summaries[qualname]
        for label, arg in _boundary_exprs(summary):
            for expr in _iter_display_values(arg):
                kind = _unpicklable_kind(expr, fn, summary)
                if kind is None:
                    continue
                findings.append(Finding(
                    path=fn.module.path, line=expr.lineno,
                    col=expr.col_offset, rule="R7",
                    message=f"non-picklable value ({kind}) flows into"
                            f" the {label} fork boundary — sweep jobs"
                            " are pickled into worker processes; pass a"
                            " module-level function or a describable"
                            " factory instead"))
        for arg in _staged_payload_exprs(summary):
            for expr in _iter_display_values(arg):
                kind = _mutable_payload_kind(expr, fn)
                if kind is None:
                    continue
                findings.append(Finding(
                    path=fn.module.path, line=expr.lineno,
                    col=expr.col_offset, rule="R7",
                    message=f"mutable value ({kind}) staged into the"
                            " worker payload registry — staged payloads"
                            " are inherited copy-on-write by forked"
                            " workers and keyed by content digest, so"
                            " they must be immutable (frozen dataclass,"
                            " bytes, tuple); parent-side mutation after"
                            " staging silently diverges from what"
                            " workers see"))
    return findings


# ----------------------------------------------------------------------
# R8 — cache-key soundness
# ----------------------------------------------------------------------
#: SimulationSession.__init__ parameters that cannot change a RunResult
#: (observers and error-strictness), so the cache key may omit them.
_RESULT_NEUTRAL = frozenset({"self", "strict", "sinks"})

#: suffixes stripped when matching a session parameter against a
#: description key (``disk_spec`` is keyed as ``"disk"``).
_PARAM_SUFFIXES = ("_spec", "_policy", "_factory", "_schedule")


def _description_dict(fn: FunctionIR) -> tuple[ast.Dict | None, set[str]]:
    """The largest string-keyed dict literal in ``run_key`` + all keys."""
    best: ast.Dict | None = None
    keys: set[str] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Dict):
            continue
        literal = {k.value for k in node.keys
                   if isinstance(k, ast.Constant)
                   and isinstance(k.value, str)}
        if not literal:
            continue
        keys |= literal
        if best is None or len(literal) > sum(
                1 for k in best.keys if isinstance(k, ast.Constant)):
            best = node
    return best, keys


def _run_r8(graph: CallGraph) -> list[Finding]:
    project = graph.project
    run_key_fn: FunctionIR | None = None
    for qualname in sorted(project.functions):
        fn = project.functions[qualname]
        if fn.name == "run_key" and fn.cls is None:
            run_key_fn = fn
            break
    session = None
    for qualname in sorted(project.classes):
        if qualname.rsplit(".", 1)[-1] == "SimulationSession":
            session = project.classes[qualname]
            break
    if run_key_fn is None or session is None:
        return []
    init_qual = session.methods.get("__init__")
    init = project.functions.get(init_qual) if init_qual else None
    if init is None:
        return []
    dict_node, keys = _description_dict(run_key_fn)
    if dict_node is None:
        return []
    findings: list[Finding] = []
    args = init.node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        param = arg.arg
        if param in _RESULT_NEUTRAL:
            continue
        candidates = {param} | {param[:-len(suffix)]
                                for suffix in _PARAM_SUFFIXES
                                if param.endswith(suffix)}
        if candidates & keys:
            continue
        short = min(candidates, key=len)
        findings.append(Finding(
            path=run_key_fn.module.path, line=dict_node.lineno,
            col=dict_node.col_offset, rule="R8",
            message=f"simulation input {param!r} of"
                    f" {session.name}.__init__ is absent from run_key's"
                    " description — a run varying it can return a stale"
                    " cached result; add an explicit entry (even"
                    f" '{short}': None)"))
    return findings


# ----------------------------------------------------------------------
# R9 — interprocedural unit flow
# ----------------------------------------------------------------------
#: lattice top: a function returns different dimensions on different
#: paths; consumers treat it as unknown.
_CONFLICT = "<conflict>"

_FactOf = Callable[[str], str | None]


def _join(a: str | None, b: str | None) -> str | None:
    if a is None:
        return b
    if b is None or a == b:
        return a
    return _CONFLICT


class _CallAwareEnv(UnitEnv):
    """A :class:`UnitEnv` that also knows call return dimensions."""

    def __init__(self, summary: FunctionSummary, fact_of: _FactOf) -> None:
        super().__init__()
        self._summary = summary
        self._fact_of = fact_of

    def dimension_of(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Call):
            targets = self._summary.by_node.get(node, ())
            dims = {self._fact_of(t) for t in targets}
            if len(dims) == 1:
                dim = dims.pop()
                return None if dim == _CONFLICT else dim
            return None
        return super().dimension_of(node)


def _own_returns(fn_node: ast.FunctionDef | ast.AsyncFunctionDef
                 ) -> Iterator[ast.Return]:
    """Return statements of the function itself, not of nested defs."""
    stack: list[ast.AST] = list(fn_node.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(node, ast.Return):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _seed_env(env: UnitEnv, fn: FunctionIR) -> None:
    args = fn.node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        env.bind_annotation(arg.arg, arg.annotation)
    for node in ast.walk(fn.node):
        if isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name):
            env.bind_annotation(node.target.id, node.annotation)


def _return_dimension_facts(graph: CallGraph) -> dict[str, str | None]:
    """Fixpoint return-dimension fact for every project function."""
    project = graph.project
    nodes = sorted(project.functions)
    inputs: dict[str, tuple[str, ...]] = {
        q: graph.callees.get(q, ()) for q in nodes}

    def transfer(qualname: str, fact_of: _FactOf) -> str | None:
        fn = project.functions[qualname]
        annotated = dimension_of_annotation(fn.node.returns)
        if annotated is not None:
            return annotated
        env = _CallAwareEnv(graph.summaries[qualname], fact_of)
        _seed_env(env, fn)
        result: str | None = None
        for ret in _own_returns(fn.node):
            if ret.value is None:
                continue
            result = _join(result, env.dimension_of(ret.value))
        # Join with the previous fact so the transfer is monotone even
        # through call cycles.
        return _join(result, fact_of(qualname))

    return solve(nodes, inputs, transfer, bottom=None)


class _R9Checker(ast.NodeVisitor):
    """Per-function pass applying the cross-call unit checks."""

    def __init__(self, project: Project, fn: FunctionIR,
                 summary: FunctionSummary,
                 facts: dict[str, str | None]) -> None:
        self.project = project
        self.fn = fn
        self.summary = summary
        self.facts = facts
        self.findings: list[Finding] = []
        self.call_env = _CallAwareEnv(summary, facts.get)
        self.base_env = UnitEnv()
        _seed_env(self.call_env, fn)
        _seed_env(self.base_env, fn)

    def run(self) -> list[Finding]:
        for stmt in self.fn.node.body:
            self.visit(stmt)
        self._check_return_annotation()
        return self.findings

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            path=self.fn.module.path, line=node.lineno,
            col=node.col_offset, rule="R9", message=message))

    def _call_fact(self, call: ast.Call) -> tuple[str | None, str | None]:
        """(dimension, single target qualname) of a resolved call."""
        targets = self.summary.by_node.get(call, ())
        dims = {self.facts.get(t) for t in targets}
        if len(dims) != 1:
            return None, None
        dim = dims.pop()
        target = targets[0] if len(targets) == 1 else None
        return (None if dim == _CONFLICT else dim), target

    # -- mixed-dimension arithmetic across calls -----------------------
    def _check_mix(self, node: ast.AST, op: str, left: ast.expr,
                   right: ast.expr) -> None:
        ldim = self.call_env.dimension_of(left)
        rdim = self.call_env.dimension_of(right)
        if ldim is None or rdim is None or ldim == rdim or \
                _CONFLICT in (ldim, rdim):
            return
        lbase = self.base_env.dimension_of(left)
        rbase = self.base_env.dimension_of(right)
        if lbase is not None and rbase is not None and lbase != rbase:
            return  # R2 already sees this mismatch locally
        self._flag(node, "incompatible dimensions across a call"
                         f" boundary in {op!r}: {ldim} vs {rdim}")

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            op = "+" if isinstance(node.op, ast.Add) else "-"
            self._check_mix(node, op, node.left, node.right)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            op = "+=" if isinstance(node.op, ast.Add) else "-="
            self._check_mix(node, op, node.target, node.value)
        self.generic_visit(node)

    # -- unit-less / mismatched returns into typed slots ---------------
    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        slot_dim = dimension_of_annotation(node.annotation)
        if slot_dim is not None and isinstance(node.value, ast.Call):
            self._check_slot(node, node.value, slot_dim)
        self.generic_visit(node)

    def _check_slot(self, node: ast.AST, call: ast.Call,
                    slot_dim: str) -> None:
        alias = DIMENSION_ALIASES[slot_dim]
        dim, target = self._call_fact(call)
        targets = self.summary.by_node.get(call, ())
        if not targets:
            return
        if dim is not None and dim != slot_dim:
            who = target or " / ".join(sorted(targets))
            self._flag(node, f"call to {who}() returns {dim} but is"
                             f" assigned into a {slot_dim}-typed slot"
                             f" ({alias})")
        elif dim is None and all(
                is_bare_numeric_annotation(
                    self.project.functions[t].node.returns)
                for t in targets if t in self.project.functions):
            who = target or " / ".join(sorted(targets))
            self._flag(node, f"unit-less return of {who}() assigned"
                             f" into a {alias}-typed slot — annotate"
                             " the callee's return with"
                             f" repro.units.{alias}")

    def _check_return_annotation(self) -> None:
        annotated = dimension_of_annotation(self.fn.node.returns)
        if annotated is None:
            return
        for ret in _own_returns(self.fn.node):
            if not isinstance(ret.value, ast.Call):
                continue
            dim, target = self._call_fact(ret.value)
            if dim is not None and dim != annotated:
                who = target or "callee"
                self._flag(ret, f"returns the {dim}-valued result of"
                                f" {who}() from a function annotated"
                                f" -> {DIMENSION_ALIASES[annotated]}"
                                f" ({annotated})")

    # Nested defs are part of the enclosing summary; visit them but do
    # not re-seed the environments.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.generic_visit(node)


def _run_r9(graph: CallGraph) -> list[Finding]:
    facts = _return_dimension_facts(graph)
    findings: list[Finding] = []
    for qualname in sorted(graph.summaries):
        fn = graph.project.functions[qualname]
        checker = _R9Checker(graph.project, fn,
                             graph.summaries[qualname], facts)
        findings.extend(checker.run())
    return findings


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def run_project_rules(project: Project,
                      select: frozenset[str] | None = None
                      ) -> list[Finding]:
    """Run the interprocedural rules over a linked project.

    Suppression filtering and the global ordering happen in the runner
    (which also drops R1 findings shadowed by R6).
    """
    wanted = {"R6", "R7", "R8", "R9"} if select is None \
        else {"R6", "R7", "R8", "R9"} & select
    if not wanted or not project.modules:
        return []
    graph = CallGraph(project)
    findings: list[Finding] = []
    if "R6" in wanted:
        findings.extend(_run_r6(graph))
    if "R7" in wanted:
        findings.extend(_run_r7(graph))
    if "R8" in wanted:
        findings.extend(_run_r8(graph))
    if "R9" in wanted:
        findings.extend(_run_r9(graph))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule,
                                 f.message))
    return findings
