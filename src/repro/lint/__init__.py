"""``repro.lint`` — the repo's own determinism/units static analyzer.

An AST-based checker with five repo-specific rules that generic linters
cannot express (see DESIGN.md §10 for the catalogue and rationale):

* **R1 determinism** — no wall clocks or unseeded randomness inside the
  simulator package;
* **R2 unit-discipline** — physical quantities carry the
  :mod:`repro.units` aliases, and ``+``/``-``/ordering never mixes
  dimensions (seconds vs joules);
* **R3 float-equality** — no ``==``/``!=`` on measured float
  quantities;
* **R4 defensive-defaults** — no mutable default arguments or bare
  ``except``;
* **R5 layering** — no upward imports across the
  devices → kernel → core → experiments/cli stack (DESIGN.md §12).

Run as ``python -m repro.lint src/ tests/`` or ``flexfetch lint``;
suppress a finding with ``# repro-lint: ignore[R1]`` on its line.
"""

from repro.lint.findings import RULES, Finding, Rule
from repro.lint.runner import (
    lint_file,
    lint_paths,
    lint_source,
    main,
    package_relative,
)
from repro.lint.suppressions import Suppressions, parse_suppressions

__all__ = [
    "RULES",
    "Finding",
    "Rule",
    "Suppressions",
    "parse_suppressions",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "package_relative",
]
