"""``repro.lint`` — the repo's own determinism/units static analyzer.

An AST-based checker with repo-specific rules that generic linters
cannot express (see DESIGN.md §10 for the catalogue and rationale).
The per-file pass:

* **R1 determinism** — no wall clocks or unseeded randomness inside the
  simulator package;
* **R2 unit-discipline** — physical quantities carry the
  :mod:`repro.units` aliases, and ``+``/``-``/ordering never mixes
  dimensions (seconds vs joules);
* **R3 float-equality** — no ``==``/``!=`` on measured float
  quantities;
* **R4 defensive-defaults** — no mutable default arguments or bare
  ``except``;
* **R5 layering** — no upward imports across the
  devices → kernel → core → experiments/cli stack (DESIGN.md §12).

The whole-program pass links every linted in-package file into one
project (AST-only, nothing imported) and runs interprocedural rules
over its call graph:

* **R6 determinism-taint** — impurity reachable from the sweep worker
  or the cache-key hash, reported with the call chain;
* **R7 parallel-safety** — no module-state writes in worker-reachable
  code, nothing unpicklable into the fork boundary;
* **R8 cache-key-soundness** — every ``SimulationSession`` input keyed
  by ``run_key``;
* **R9 unit-flow** — dimension mismatches that cross call boundaries.

Run as ``python -m repro.lint src/ tests/`` or ``flexfetch lint``;
suppress a finding with ``# repro-lint: ignore[R1]`` on its line, a
file's named rules with ``# repro-lint: ignore-file[R6]`` in the
leading comment block.  ``--sarif`` emits SARIF 2.1.0; ``--baseline``
gates CI on new findings only.
"""

from repro.lint.findings import RULES, Finding, Rule
from repro.lint.runner import (
    lint_file,
    lint_paths,
    lint_source,
    main,
    package_relative,
)
from repro.lint.suppressions import Suppressions, parse_suppressions

__all__ = [
    "RULES",
    "Finding",
    "Rule",
    "Suppressions",
    "parse_suppressions",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "package_relative",
]
