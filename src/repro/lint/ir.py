"""Project-wide intermediate representation for :mod:`repro.lint`.

The per-file rules (R1-R5) see one tree at a time; the interprocedural
rules (R6-R9) need a *project*: every module of the ``repro`` package
parsed together, with imports resolved, symbols indexed by dotted
qualname, and the class hierarchy known.  This module builds that IR:

* :class:`ImportTable` — local name -> dotted module path, following
  ``import``/``from`` aliases and resolving relative imports against
  the importing module's package;
* :class:`ModuleIR` / :class:`FunctionIR` / :class:`ClassIR` — one
  parsed module, its module-level functions, and its classes (with
  methods and resolved base classes);
* :class:`Project` — the symbol table over all of them, including
  re-export chasing through package ``__init__`` modules and a
  class-hierarchy subclass index (the basis of the call graph's CHA
  dispatch).

Everything here is still pure syntax: no module is ever imported or
executed, so the IR builds identically on broken checkouts (files that
fail to parse are simply absent, and every consumer degrades to the
per-file answer).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.suppressions import Suppressions, parse_suppressions


class ImportTable:
    """Maps local names to the dotted module paths they alias.

    ``package`` is the dotted component tuple of the *containing*
    package of the module being analyzed (e.g. ``("repro", "core")``
    for ``repro/core/session.py``); relative imports resolve against
    it.  Without a package, relative imports stay unresolved.
    """

    def __init__(self, package: tuple[str, ...] = ()) -> None:
        self._aliases: dict[str, str] = {}
        self._package = package

    def collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".", 1)[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{base}.{alias.name}"

    def _import_base(self, node: ast.ImportFrom) -> str | None:
        """Absolute dotted module a ``from X import ...`` names."""
        if node.level == 0:
            return node.module
        pkg = list(self._package)
        for _ in range(node.level - 1):
            if not pkg:
                return None
            pkg.pop()
        if node.module:
            pkg.extend(node.module.split("."))
        return ".".join(pkg) if pkg else None

    def alias_target(self, name: str) -> str | None:
        """The dotted path a bare local name aliases, if imported."""
        return self._aliases.get(name)

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted path of a Name/Attribute chain, through import aliases."""
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        root = self._aliases.get(cur.id, cur.id)
        parts.append(root)
        return ".".join(reversed(parts))


#: calls whose results are module-level *mutable* containers.
_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.deque", "collections.Counter",
    "collections.OrderedDict",
})


@dataclass(slots=True)
class FunctionIR:
    """One module-level function or class method."""

    qualname: str
    name: str
    module: ModuleIR
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: qualname of the owning class, or None for module-level functions.
    cls: str | None = None


@dataclass(slots=True)
class ClassIR:
    """One module-level class: its methods and base-class names."""

    qualname: str
    name: str
    module: ModuleIR
    node: ast.ClassDef
    #: method name -> FunctionIR qualname.
    methods: dict[str, str] = field(default_factory=dict)
    #: base classes as import-resolved dotted names (project resolution
    #: happens later, in :meth:`Project.mro`).
    bases: tuple[str, ...] = ()
    #: ``self.<attr>`` -> class qualname, inferred from ``__init__``
    #: parameter annotations and constructor calls (best effort).
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass(slots=True)
class ModuleIR:
    """One parsed module of the project."""

    name: str
    path: str
    package_rel: tuple[str, ...]
    tree: ast.Module
    imports: ImportTable
    suppressions: Suppressions
    #: module-level names bound to mutable containers (list/dict/set
    #: displays or factory calls) — the R7 shared-state candidates.
    mutable_globals: frozenset[str] = frozenset()


def module_name_of(package_rel: tuple[str, ...]) -> str:
    """Dotted module name of a package-relative path.

    ``("repro", "experiments", "cache.py")`` -> ``repro.experiments.cache``;
    an ``__init__.py`` names its package.
    """
    parts = list(package_rel)
    last = parts.pop()
    stem = last[:-3] if last.endswith(".py") else last
    if stem != "__init__":
        parts.append(stem)
    return ".".join(parts)


def _is_mutable_container(node: ast.expr, imports: ImportTable) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = imports.resolve(node.func)
        return dotted in _MUTABLE_FACTORIES
    return False


def _collect_mutable_globals(tree: ast.Module,
                             imports: ImportTable) -> frozenset[str]:
    names: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
            value: ast.expr | None = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if value is None or not _is_mutable_container(value, imports):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


def _annotation_name(annotation: ast.expr | None) -> str | None:
    """The class-naming part of an annotation, as written.

    Unwraps ``X | None``, ``Optional[X]``, and quoted annotations; gives
    up on anything fancier (unions of two real classes, generics with
    payloads the IR does not track).
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        text = annotation.value.strip()
        return text if text.replace(".", "").isidentifier() else None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        parts: list[str] = []
        cur: ast.expr = annotation
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.append(cur.id)
        return ".".join(reversed(parts))
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op,
                                                        ast.BitOr):
        left = _annotation_name(annotation.left)
        right = _annotation_name(annotation.right)
        if left == "None":
            return right
        if right == "None":
            return left
        return None
    if isinstance(annotation, ast.Subscript):
        outer = _annotation_name(annotation.value)
        if outer is not None and outer.rsplit(".", 1)[-1] == "Optional":
            return _annotation_name(annotation.slice)
        return None
    return None


class Project:
    """Symbol table and class hierarchy over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleIR] = {}
        self.functions: dict[str, FunctionIR] = {}
        self.classes: dict[str, ClassIR] = {}
        #: class qualname -> direct in-project subclasses.
        self._subclasses: dict[str, set[str]] = {}
        self._linked = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_module(self, module: ModuleIR) -> None:
        self.modules[module.name] = module
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, stmt, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(module, stmt)
        self._linked = False

    def _add_function(self, module: ModuleIR,
                      node: ast.FunctionDef | ast.AsyncFunctionDef,
                      cls: str | None) -> FunctionIR:
        owner = cls if cls is not None else module.name
        fn = FunctionIR(qualname=f"{owner}.{node.name}", name=node.name,
                        module=module, node=node, cls=cls)
        self.functions[fn.qualname] = fn
        return fn

    def _add_class(self, module: ModuleIR, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        bases = tuple(dotted for dotted in
                      (module.imports.resolve(base) for base in node.bases)
                      if dotted is not None)
        cls = ClassIR(qualname=qualname, name=node.name, module=module,
                      node=node, bases=bases)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._add_function(module, stmt, cls=qualname)
                cls.methods[stmt.name] = fn.qualname
        self.classes[qualname] = cls

    def link(self) -> None:
        """Resolve the class hierarchy and self-attribute types.

        Idempotent; called once every module has been added.
        """
        if self._linked:
            return
        self._subclasses = {name: set() for name in self.classes}
        for cls in self.classes.values():
            for base in cls.bases:
                resolved = self.resolve(cls.module, base)
                if resolved in self._subclasses:
                    self._subclasses[resolved].add(cls.qualname)
        for cls in self.classes.values():
            cls.attr_types = self._infer_attr_types(cls)
        self._linked = True

    def _infer_attr_types(self, cls: ClassIR) -> dict[str, str]:
        """``self.<attr>`` class types from ``__init__`` annotations.

        ``self._policy = policy`` with ``policy: Policy | None`` types
        the attribute as ``Policy``; class-level ``AnnAssign`` entries
        contribute directly.  Best effort — a miss only loses call
        edges, never invents them.
        """
        types: dict[str, str] = {}
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                resolved = self._resolve_annotation(cls.module,
                                                    stmt.annotation)
                if resolved is not None:
                    types[stmt.target.id] = resolved
        init_qual = cls.methods.get("__init__")
        init = self.functions.get(init_qual) if init_qual else None
        if init is None:
            return types
        args = init.node.args
        param_types: dict[str, str] = {}
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            resolved = self._resolve_annotation(cls.module, arg.annotation)
            if resolved is not None:
                param_types[arg.arg] = resolved
        for node in ast.walk(init.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self" and \
                        isinstance(node.value, ast.Name) and \
                        node.value.id in param_types:
                    types.setdefault(target.attr,
                                     param_types[node.value.id])
        return types

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve_dotted(self, dotted: str, *, _depth: int = 0) -> str | None:
        """Project qualname of an absolute dotted symbol path, if any.

        Chases re-exports: ``repro.experiments.run_key`` resolves
        through the package ``__init__``'s import table to
        ``repro.experiments.cache.run_key``.
        """
        if dotted in self.functions or dotted in self.classes:
            return dotted
        if _depth >= 8:
            return None
        prefix, _, attr = dotted.rpartition(".")
        if not prefix:
            return None
        exporter = self.modules.get(prefix)
        if exporter is not None:
            target = exporter.imports.alias_target(attr)
            if target is not None and target != dotted:
                return self.resolve_dotted(target, _depth=_depth + 1)
        return None

    def resolve(self, module: ModuleIR, dotted: str) -> str | None:
        """Resolve a dotted name as seen *from* ``module``.

        Tries the absolute interpretation first, then the module-local
        one (an unimported root name is a sibling definition).
        """
        absolute = self.resolve_dotted(dotted)
        if absolute is not None:
            return absolute
        return self.resolve_dotted(f"{module.name}.{dotted}")

    def _resolve_annotation(self, module: ModuleIR,
                            annotation: ast.expr | None) -> str | None:
        """Project class qualname an annotation refers to, if any."""
        name = _annotation_name(annotation)
        if name is None:
            return None
        root = name.split(".", 1)[0]
        aliased = module.imports.alias_target(root)
        if aliased is not None:
            name = aliased + name[len(root):]
        resolved = self.resolve(module, name)
        return resolved if resolved in self.classes else None

    def annotation_class(self, module: ModuleIR,
                         annotation: ast.expr | None) -> str | None:
        """Public wrapper: class qualname named by an annotation."""
        return self._resolve_annotation(module, annotation)

    # ------------------------------------------------------------------
    # class hierarchy
    # ------------------------------------------------------------------
    def mro(self, cls_qualname: str) -> list[str]:
        """The class and its in-project ancestors, nearest first."""
        out: list[str] = []
        seen: set[str] = set()
        stack = [cls_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            out.append(current)
            cls = self.classes[current]
            for base in cls.bases:
                resolved = self.resolve(cls.module, base)
                if resolved is not None:
                    stack.append(resolved)
        return out

    def subclasses(self, cls_qualname: str) -> set[str]:
        """All transitive in-project subclasses."""
        self.link()
        out: set[str] = set()
        stack = list(self._subclasses.get(cls_qualname, ()))
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self._subclasses.get(current, ()))
        return out

    def lookup_method(self, cls_qualname: str, name: str) -> str | None:
        """Method qualname found by walking the in-project MRO."""
        for cls in self.mro(cls_qualname):
            found = self.classes[cls].methods.get(name)
            if found is not None:
                return found
        return None


def parse_module(source: str, *, path: str,
                 package_rel: tuple[str, ...]) -> ModuleIR | None:
    """Parse one package file into a :class:`ModuleIR` (None on syntax
    errors — the per-file pass already reported E1)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return None
    imports = ImportTable(package=tuple(package_rel[:-1]))
    imports.collect(tree)
    return ModuleIR(
        name=module_name_of(package_rel), path=path,
        package_rel=package_rel, tree=tree, imports=imports,
        suppressions=parse_suppressions(source),
        mutable_globals=_collect_mutable_globals(tree, imports))


def build_project(modules: list[ModuleIR]) -> Project:
    """Index parsed modules into a linked :class:`Project`."""
    project = Project()
    for module in modules:
        project.add_module(module)
    project.link()
    return project
