"""Lexical and annotation-driven unit inference shared by rules R2/R3.

The analyzer never executes the code it checks, so it infers the
physical dimension of an expression two ways:

* **annotation-driven** — a name annotated with a :mod:`repro.units`
  alias (``Seconds``, ``Joules``, ...) has that alias' dimension;
* **lexical** — identifiers whose names carry the repo's naming
  convention (``*_time``, ``*_energy``, ``nbytes``, ``bandwidth_bps``,
  ...) are assumed to hold that dimension.

Lexical inference is deliberately conservative: a *miss* only weakens
the check, a *wrong hit* creates a false positive.  Names like ``start``
or ``first_byte`` therefore infer nothing — in this codebase they are
timestamps and page indices in different modules.
"""

from __future__ import annotations

import ast

#: dimension keys (match ``repro.units.Unit.dimension``)
TIME = "time"
ENERGY = "energy"
POWER = "power"
DATA = "data"
BANDWIDTH = "bandwidth"

#: dimensions carried by floats, where exact equality is meaningless.
FLOAT_DIMENSIONS = frozenset({TIME, ENERGY, POWER, BANDWIDTH})

#: repro.units alias name -> dimension.
ALIAS_DIMENSIONS: dict[str, str] = {
    "Seconds": TIME,
    "Joules": ENERGY,
    "Watts": POWER,
    "Bytes": DATA,
    "BytesPerSecond": BANDWIDTH,
}

#: dimension -> the alias rule R2 asks for.
DIMENSION_ALIASES: dict[str, str] = {
    dim: alias for alias, dim in ALIAS_DIMENSIONS.items()
}

#: exact identifier names (underscores stripped, lowered) -> dimension.
_EXACT: dict[str, str] = {
    "now": TIME,
    "when": TIME,
    "timeout": TIME,
    "deadline": TIME,
    "duration": TIME,
    "elapsed": TIME,
    "think": TIME,
    "dt": TIME,
    "energy": ENERGY,
    "joules": ENERGY,
    "power": POWER,
    "watts": POWER,
    "nbytes": DATA,
    "bandwidth": BANDWIDTH,
    "bps": BANDWIDTH,
}

#: identifier suffixes -> dimension.
_SUFFIXES: tuple[tuple[str, str], ...] = (
    ("_time", TIME),
    ("_seconds", TIME),
    ("_timeout", TIME),
    ("_delay", TIME),
    ("_latency", TIME),
    ("_duration", TIME),
    ("_deadline", TIME),
    ("_until", TIME),
    ("_energy", ENERGY),
    ("_joules", ENERGY),
    ("_power", POWER),
    ("_watts", POWER),
    ("_bytes", DATA),
    ("_bps", BANDWIDTH),
    ("_bandwidth", BANDWIDTH),
)


def dimension_of_identifier(name: str) -> str | None:
    """Dimension a bare identifier lexically implies, if any."""
    stripped = name.lstrip("_").lower()
    exact = _EXACT.get(stripped)
    if exact is not None:
        return exact
    for suffix, dim in _SUFFIXES:
        if stripped.endswith(suffix):
            return dim
    return None


def dimension_of_annotation(annotation: ast.expr | None) -> str | None:
    """Dimension of an annotation expression using a repro.units alias.

    Recognises ``Seconds``, ``units.Seconds`` and quoted forms.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        name = annotation.value.strip().rsplit(".", 1)[-1]
        return ALIAS_DIMENSIONS.get(name)
    if isinstance(annotation, ast.Name):
        return ALIAS_DIMENSIONS.get(annotation.id)
    if isinstance(annotation, ast.Attribute):
        return ALIAS_DIMENSIONS.get(annotation.attr)
    return None


def is_bare_numeric_annotation(annotation: ast.expr | None) -> bool:
    """True for a literal ``float`` or ``int`` annotation."""
    return isinstance(annotation, ast.Name) and \
        annotation.id in ("float", "int")


class UnitEnv:
    """Per-function mapping of plain names to known dimensions.

    Annotation-driven facts (parameters and ``AnnAssign`` locals using
    the unit aliases) take precedence; lexical inference fills the rest.
    """

    def __init__(self) -> None:
        self._known: dict[str, str] = {}

    def bind(self, name: str, dimension: str | None) -> None:
        if dimension is not None:
            self._known[name] = dimension

    def bind_annotation(self, name: str, annotation: ast.expr | None) -> None:
        self.bind(name, dimension_of_annotation(annotation))

    def dimension_of(self, node: ast.expr) -> str | None:
        """Dimension of an expression, or None when unknown.

        Plain names consult the annotation environment first; attribute
        accesses fall back to the lexical convention on the terminal
        attribute name.  ``+``/``-`` propagate a known operand's
        dimension so chained arithmetic stays checkable.
        """
        if isinstance(node, ast.Name):
            known = self._known.get(node.id)
            if known is not None:
                return known
            return dimension_of_identifier(node.id)
        if isinstance(node, ast.Attribute):
            return dimension_of_identifier(node.attr)
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.Add, ast.Sub)):
            left = self.dimension_of(node.left)
            right = self.dimension_of(node.right)
            if left is not None and right is not None:
                return left if left == right else None
            return left if left is not None else right
        return None
