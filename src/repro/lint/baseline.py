"""Recorded-baseline gating for :mod:`repro.lint`.

A baseline file records the findings a tree is *known* to have, so CI
fails only on **new** findings: adopting a stricter rule does not
require fixing every historical hit first, and the debt list is an
explicit, reviewed artifact (`.lint-baseline.json` at the repo root).

Entries key on ``(path, rule, message)`` with a count — deliberately
**not** on line numbers, which shift with every unrelated edit.  When a
file holds N baselined occurrences of an identical finding and the new
analysis produces M, the first ``min(N, M)`` are considered baselined
and any excess is new.  Fixing a finding therefore never hides a fresh
one elsewhere in the file unless it is textually identical, in which
case the distinction is meaningless anyway.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.findings import Finding

#: (path, rule, message) — the line-independent identity of a finding.
BaselineKey = tuple[str, str, str]

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be understood."""


def _key(finding: Finding) -> BaselineKey:
    return (finding.path, finding.rule, finding.message)


def load_baseline(path: str | Path) -> dict[BaselineKey, int]:
    """Baseline counts from disk; a missing file is an empty baseline.

    (CI bootstraps by committing an empty baseline; a deleted file
    behaves the same as one with no entries.)
    """
    p = Path(path)
    try:
        payload = json.loads(p.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return {}
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"unreadable baseline {p}: {exc}") from exc
    if not isinstance(payload, dict) or \
            payload.get("version") != _FORMAT_VERSION or \
            not isinstance(payload.get("entries"), list):
        raise BaselineError(
            f"baseline {p} is not a version-{_FORMAT_VERSION}"
            " repro.lint baseline")
    counts: dict[BaselineKey, int] = {}
    for entry in payload["entries"]:
        try:
            key = (str(entry["path"]), str(entry["rule"]),
                   str(entry["message"]))
            count = int(entry["count"])
        except (TypeError, KeyError, ValueError) as exc:
            raise BaselineError(
                f"malformed baseline entry in {p}: {entry!r}") from exc
        counts[key] = counts.get(key, 0) + count
    return counts


def save_baseline(path: str | Path,
                  findings: list[Finding]) -> None:
    """Write the findings as the new baseline (sorted, stable layout)."""
    counts: dict[BaselineKey, int] = {}
    for finding in findings:
        key = _key(finding)
        counts[key] = counts.get(key, 0) + 1
    entries = [
        {"path": path_, "rule": rule, "message": message, "count": count}
        for (path_, rule, message), count in sorted(counts.items())
    ]
    payload = {"version": _FORMAT_VERSION, "tool": "repro.lint",
               "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=1) + "\n",
                          encoding="utf-8")


def split_findings(findings: list[Finding],
                   baseline: dict[BaselineKey, int]
                   ) -> tuple[list[Finding], list[Finding]]:
    """Partition into ``(new, baselined)`` by consuming baseline counts.

    Order-preserving: the first occurrences of a key absorb its
    baseline budget, the rest are new.
    """
    remaining = dict(baseline)
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        key = _key(finding)
        budget = remaining.get(key, 0)
        if budget > 0:
            remaining[key] = budget - 1
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined
