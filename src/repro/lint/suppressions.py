"""Suppression-comment parsing for :mod:`repro.lint`.

Three pragmas, all ordinary comments:

* ``# repro-lint: ignore[R1]`` / ``ignore[R1,R3]`` / ``ignore`` —
  suppress the named rules (or all rules) on that physical line; on the
  last line of a multi-line statement the pragma covers the whole
  statement (findings anchor to the statement's first line);
* ``# repro-lint: ignore-file[R6]`` / ``ignore-file[R6,R7]`` — suppress
  the named rules everywhere in the file.  Only honoured in the *first
  comment block* (leading comments/blank lines before any code), so a
  file's opt-outs are visible at the top.  Unknown rule ids are kept
  verbatim and simply never match a finding;
* ``# repro-lint: skip-file`` — skip the whole file (used sparingly;
  test fixtures that *must* contain violations are the intended user).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, replace

from repro.lint.findings import Finding

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<verb>ignore-file|ignore|skip-file)"
    r"(?:\[(?P<rules>[A-Za-z0-9,\s]+)\])?")


@dataclass(frozen=True, slots=True)
class Suppressions:
    """Parsed pragmas of one file."""

    skip_file: bool
    #: line number -> suppressed rule ids; empty set means *all* rules.
    by_line: dict[int, frozenset[str]]
    #: rule ids suppressed for the whole file (``ignore-file[...]``).
    file_rules: frozenset[str] = frozenset()

    def allows(self, finding: Finding) -> bool:
        """True when the finding survives the file's pragmas."""
        if self.skip_file:
            return False
        if finding.rule in self.file_rules:
            return False
        rules = self.by_line.get(finding.line)
        if rules is None:
            return True
        return bool(rules) and finding.rule not in rules


def _parse_rule_list(spec: str) -> frozenset[str]:
    return frozenset(token.strip().upper()
                     for token in spec.split(",") if token.strip())


def parse_suppressions(source: str) -> Suppressions:
    """Scan source text for ``repro-lint`` pragmas."""
    skip_file = False
    by_line: dict[int, frozenset[str]] = {}
    file_rules: set[str] = set()
    in_header = True
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if in_header and stripped and not stripped.startswith("#"):
            in_header = False
        match = _PRAGMA.search(line)
        if match is None:
            continue
        verb = match.group("verb")
        if verb == "skip-file":
            skip_file = True
            continue
        spec = match.group("rules")
        if verb == "ignore-file":
            # Only the leading comment block may opt a file out; a
            # buried ignore-file is inert (and the named rules need an
            # explicit list — a blanket file opt-out is skip-file).
            if in_header and spec is not None:
                file_rules |= _parse_rule_list(spec)
            continue
        if spec is None:
            by_line[lineno] = frozenset()
        else:
            by_line[lineno] = _parse_rule_list(spec)
    return Suppressions(skip_file=skip_file, by_line=by_line,
                        file_rules=frozenset(file_rules))


def expand_multiline(suppressions: Suppressions,
                     tree: ast.AST) -> Suppressions:
    """Make trailing pragmas on multi-line statements effective.

    Findings anchor to a statement's *first* line, but a pragma is
    naturally written on the line the offending expression ends on::

        total = (compute_energy()
                 + base_line)  # repro-lint: ignore[R9]

    For every statement spanning several lines, any pragma on any of
    its lines is copied onto its first line (rule sets union; an
    ignore-all on one line wins).
    """
    if not suppressions.by_line:
        return suppressions
    by_line = dict(suppressions.by_line)
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if hasattr(node, "body"):
            # Compound statements (if/for/def/...) span their whole
            # suite; inheriting pragmas from nested lines would
            # suppress far more than the author wrote.
            continue
        end = getattr(node, "end_lineno", None)
        if end is None or end <= node.lineno:
            continue
        merged: frozenset[str] | None = by_line.get(node.lineno)
        hit = False
        for lineno in range(node.lineno + 1, end + 1):
            rules = suppressions.by_line.get(lineno)
            if rules is None:
                continue
            hit = True
            if merged is None:
                merged = rules
            elif not merged or not rules:
                merged = frozenset()  # ignore-all dominates
            else:
                merged = merged | rules
        if hit and merged is not None:
            by_line[node.lineno] = merged
    if by_line == suppressions.by_line:
        return suppressions
    return replace(suppressions, by_line=by_line)
