"""Suppression-comment parsing for :mod:`repro.lint`.

Two pragmas, both ordinary comments:

* ``# repro-lint: ignore[R1]`` / ``ignore[R1,R3]`` / ``ignore`` —
  suppress the named rules (or all rules) on that physical line;
* ``# repro-lint: skip-file`` — skip the whole file (used sparingly;
  test fixtures that *must* contain violations are the intended user).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.lint.findings import Finding

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<verb>ignore|skip-file)"
    r"(?:\[(?P<rules>[A-Za-z0-9,\s]+)\])?")


@dataclass(frozen=True, slots=True)
class Suppressions:
    """Parsed pragmas of one file."""

    skip_file: bool
    #: line number -> suppressed rule ids; empty set means *all* rules.
    by_line: dict[int, frozenset[str]]

    def allows(self, finding: Finding) -> bool:
        """True when the finding survives the file's pragmas."""
        if self.skip_file:
            return False
        rules = self.by_line.get(finding.line)
        if rules is None:
            return True
        return bool(rules) and finding.rule not in rules


def parse_suppressions(source: str) -> Suppressions:
    """Scan source text for ``repro-lint`` pragmas."""
    skip_file = False
    by_line: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        if match.group("verb") == "skip-file":
            skip_file = True
            continue
        spec = match.group("rules")
        if spec is None:
            by_line[lineno] = frozenset()
        else:
            by_line[lineno] = frozenset(
                token.strip().upper()
                for token in spec.split(",") if token.strip())
    return Suppressions(skip_file=skip_file, by_line=by_line)
