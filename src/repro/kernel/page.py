"""Page and extent algebra.

The kernel path works in 4 KB pages.  A :class:`PageId` names one page of
one file; an :class:`Extent` is a contiguous page run within a file.  The
helpers here convert byte ranges to page runs and merge/split runs — the
primitive operations the cache, readahead, and write-back modules share.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator
from typing import NamedTuple
from repro.units import Bytes

#: Page size (bytes) — matches :data:`repro.devices.layout.BLOCK_SIZE`.
PAGE_SIZE: int = 4096

#: The Linux maximum readahead window the paper cites: 128 KB = 32 pages.
MAX_READAHEAD_PAGES: int = 32


class PageId(NamedTuple):
    """Identity of one cached page: ``(inode, page_index)``."""

    inode: int
    index: int


@dataclass(frozen=True, slots=True, order=True)
class Extent:
    """A contiguous run of ``npages`` pages of ``inode`` from ``start``."""

    inode: int
    start: int
    npages: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("negative start page")
        if self.npages <= 0:
            raise ValueError("extent must cover at least one page")

    @property
    def end(self) -> int:
        """One past the last page index."""
        return self.start + self.npages

    @property
    def nbytes(self) -> Bytes:
        """Size of the extent in bytes."""
        return self.npages * PAGE_SIZE

    def pages(self) -> Iterator[PageId]:
        """Yield the PageIds covered, in order."""
        for i in range(self.start, self.end):
            yield PageId(self.inode, i)

    def intersects(self, other: Extent) -> bool:
        """Whether the two extents share any page."""
        return (self.inode == other.inode
                and self.start < other.end and other.start < self.end)

    def adjacent_or_overlapping(self, other: Extent) -> bool:
        """Whether the two extents can merge into one run."""
        return (self.inode == other.inode
                and self.start <= other.end and other.start <= self.end)

    def merge(self, other: Extent) -> Extent:
        """Union of two mergeable extents (ValueError otherwise)."""
        if not self.adjacent_or_overlapping(other):
            raise ValueError(f"cannot merge disjoint extents {self} {other}")
        start = min(self.start, other.start)
        end = max(self.end, other.end)
        return Extent(self.inode, start, end - start)

    def clamp(self, max_end: int) -> Extent | None:
        """Truncate to ``[start, max_end)``; None if nothing remains."""
        end = min(self.end, max_end)
        if end <= self.start:
            return None
        return Extent(self.inode, self.start, end - self.start)


def pages_of_range(inode: int, offset: int, size: int) -> Extent | None:
    """Page extent covering the byte range ``[offset, offset+size)``.

    Zero-byte reads touch no pages and return ``None``.
    """
    if offset < 0 or size < 0:
        raise ValueError("negative offset or size")
    if size == 0:
        return None
    first = offset // PAGE_SIZE
    last = (offset + size - 1) // PAGE_SIZE
    return Extent(inode, first, last - first + 1)


def coalesce(extents: Iterable[Extent]) -> list[Extent]:
    """Merge overlapping/adjacent extents; result sorted by (inode, start)."""
    ordered = sorted(extents)
    out: list[Extent] = []
    for ext in ordered:
        if out and out[-1].adjacent_or_overlapping(ext):
            out[-1] = out[-1].merge(ext)
        else:
            out.append(ext)
    return out


def runs_from_pages(pages: Iterable[PageId]) -> list[Extent]:
    """Group individual pages into maximal contiguous extents."""
    ordered = sorted(set(pages))
    out: list[Extent] = []
    for inode, index in ordered:
        if out and out[-1].inode == inode and out[-1].end == index:
            out[-1] = Extent(inode, out[-1].start, out[-1].npages + 1)
        else:
            out.append(Extent(inode, index, 1))
    return out


def split_max_pages(extent: Extent, max_pages: int) -> list[Extent]:
    """Split an extent into chunks of at most ``max_pages`` pages.

    Used to cap device requests at the 128 KB prefetch window (§2.1).
    """
    if max_pages <= 0:
        raise ValueError("max_pages must be positive")
    out: list[Extent] = []
    start = extent.start
    remaining = extent.npages
    while remaining > 0:
        chunk = min(remaining, max_pages)
        out.append(Extent(extent.inode, start, chunk))
        start += chunk
        remaining -= chunk
    return out
