"""The read/write system-call service path.

:class:`VirtualFileSystem` composes the page cache, readahead, and
write-back modules into the path a traced ``read()``/``write()`` takes in
the simulator:

1. the demand byte range becomes a page extent;
2. readahead may widen it (two-window policy, <= 32 pages);
3. resident pages are subtracted — "applications' requests for data that
   are resident in system buffer cache should not incur accesses to
   storage devices" (§2.1);
4. the remaining miss runs are split at the 128 KB window and returned as
   a :class:`FetchPlan` of device-agnostic extents — routing them to the
   disk or the WNIC is the *policy's* job, which is the whole point of
   the paper;
5. writes dirty pages and return the write-back layer's verdict.

The VFS never touches a device itself; keeping it device-free is what
lets FlexFetch's estimator replay the same logic offline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.cache import TwoQCache
from repro.kernel.page import (
    MAX_READAHEAD_PAGES,
    Extent,
    PageId,
    pages_of_range,
    runs_from_pages,
    split_max_pages,
)
from repro.kernel.readahead import TwoWindowReadahead
from repro.kernel.writeback import LaptopModeWriteback, WritebackConfig
from repro.sim.clock import MB
from repro.units import Bytes, Seconds


@dataclass(frozen=True, slots=True)
class FetchPlan:
    """What one syscall needs from a storage device.

    ``demand_extent`` is the pages the application actually asked for
    (None for zero-byte calls); ``fetch_extents`` are the device requests
    after readahead and cache subtraction (each <= 32 pages);
    ``hit_pages``/``miss_pages`` count the demand pages only.
    """

    demand_extent: Extent | None
    fetch_extents: tuple[Extent, ...]
    hit_pages: int
    miss_pages: int

    @property
    def fully_cached(self) -> bool:
        """True when the syscall needs no device access at all."""
        return not self.fetch_extents

    @property
    def fetch_bytes(self) -> Bytes:
        """Total bytes the device(s) must move for this call."""
        return sum(e.nbytes for e in self.fetch_extents)


@dataclass
class FileMeta:
    """Size bookkeeping for one file."""

    inode: int
    size_bytes: Bytes

    @property
    def pages(self) -> int:
        return -(-self.size_bytes // 4096) if self.size_bytes else 0


class VirtualFileSystem:
    """Cache + readahead + write-back composed into a syscall path.

    Parameters
    ----------
    memory_bytes:
        Page-cache capacity (default 64 MB — a mid-2000s laptop's
        usable buffer-cache share).
    readahead_max_pages:
        Readahead cap, 32 pages (128 KB) per the paper.
    """

    def __init__(self, memory_bytes: Bytes = 64 * MB, *,
                 readahead_max_pages: int = MAX_READAHEAD_PAGES,
                 writeback_config: WritebackConfig | None = None) -> None:
        if memory_bytes <= 0:
            raise ValueError("memory size must be positive")
        self.cache = TwoQCache(max(1, memory_bytes // 4096))
        self.readahead = TwoWindowReadahead(max_pages=readahead_max_pages)
        self.writeback = LaptopModeWriteback(self.cache, writeback_config)
        self._files: dict[int, FileMeta] = {}

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------
    def register_file(self, inode: int, size_bytes: Bytes) -> None:
        """Declare a file's size (trace generators call this up front)."""
        if size_bytes < 0:
            raise ValueError("negative file size")
        meta = self._files.get(inode)
        if meta is None:
            self._files[inode] = FileMeta(inode, size_bytes)
        else:
            meta.size_bytes = max(meta.size_bytes, size_bytes)

    def file_size(self, inode: int) -> int:
        """Registered size of ``inode`` (KeyError if unknown)."""
        return self._files[inode].size_bytes

    def known_files(self) -> list[int]:
        """All registered inode numbers."""
        return list(self._files)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read(self, pid: int, inode: int, offset: int, size: int,
             now: Seconds) -> FetchPlan:
        """Service a ``read()`` syscall; returns the device fetch plan.

        The caller must follow up with :meth:`complete_fetch` for each
        extent it actually fetched, which installs the pages.
        """
        meta = self._files.get(inode)
        if meta is None:
            raise KeyError(f"read from unregistered inode {inode}")
        demand = pages_of_range(inode, offset, size)
        if demand is None:
            return FetchPlan(None, (), 0, 0)
        file_pages = max(meta.pages, demand.end)
        widened = self.readahead.plan(pid, inode, demand, file_pages)

        # Hot path: iterate page indices and only materialise PageIds
        # for demand-page cache accesses — readahead windows make the
        # widened extent much larger than the demand range.  Because the
        # scan walks one inode's indices in ascending order, the miss
        # runs can be built inline instead of collecting PageIds and
        # regrouping them afterwards.
        cache = self.cache
        demand_start, demand_end = demand.start, demand.end
        miss_demand = 0
        runs: list[Extent] = []
        run_start = -1
        run_end = -1
        for index in range(widened.start, widened.end):
            if demand_start <= index < demand_end:
                if cache.access(PageId(inode, index)):
                    continue
                miss_demand += 1
            elif cache.is_resident(inode, index):
                continue
            if index == run_end:
                run_end = index + 1
            else:
                if run_start >= 0:
                    runs.append(Extent(inode, run_start,
                                       run_end - run_start))
                run_start = index
                run_end = index + 1
        if run_start >= 0:
            runs.append(Extent(inode, run_start, run_end - run_start))
        hit_pages = (demand_end - demand_start) - miss_demand
        fetches: list[Extent] = []
        max_pages = self.readahead.max_pages
        for run in runs:
            if run.npages <= max_pages:
                fetches.append(run)
            else:
                fetches.extend(split_max_pages(run, max_pages))
        return FetchPlan(demand, tuple(fetches), hit_pages, miss_demand)

    def complete_fetch(self, extent: Extent, now: Seconds) -> list[Extent]:
        """Install fetched pages; returns dirty extents evicted en route."""
        flushed = self.cache.insert_run(extent.inode, extent.start,
                                        extent.end, now=now)
        for page in flushed:
            self.writeback.note_clean(page)
        return runs_from_pages(flushed)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def write(self, pid: int, inode: int, offset: int, size: int,
              now: Seconds) -> list[Extent]:
        """Service a ``write()``: dirty the pages, return forced flushes.

        Returns extents evicted-dirty during insertion (they must reach
        a device immediately); deferred write-back is handled separately
        via :meth:`plan_writeback`.
        """
        meta = self._files.get(inode)
        if meta is None:
            self.register_file(inode, offset + size)
            meta = self._files[inode]
        meta.size_bytes = max(meta.size_bytes, offset + size)
        demand = pages_of_range(inode, offset, size)
        if demand is None:
            return []
        flushed: list[PageId] = []
        for page in demand.pages():
            if page in self.cache:
                self.cache.mark_dirty(page, now)
            else:
                flushed.extend(self.cache.insert(page, dirty=True, now=now))
            self.writeback.note_dirty(page, now)
        for page in flushed:
            self.writeback.note_clean(page)
        return runs_from_pages(flushed)

    def plan_writeback(self, now: Seconds, *, disk_active: bool) -> list[Extent]:
        """Dirty extents due for flushing under laptop-mode policy."""
        return self.writeback.plan_flush(now, disk_active=disk_active)

    # ------------------------------------------------------------------
    # profile support (§2.3.2)
    # ------------------------------------------------------------------
    def resident_bytes(self, inode: int, offset: int, size: int) -> Bytes:
        """Bytes of the range currently resident in the cache.

        FlexFetch's cache filter uses this to drop profiled requests that
        would be buffer-cache hits from its device cost estimates.
        """
        demand = pages_of_range(inode, offset, size)
        if demand is None:
            return 0
        # Hot path (FlexFetch's cache filter calls this per profiled
        # request): one set lookup per page, no PageId construction.
        return self.cache.resident_count(inode, demand.start,
                                         demand.end) * 4096
