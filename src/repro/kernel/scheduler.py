"""C-SCAN I/O request scheduling.

The paper's simulator emulates "the C-SCAN I/O request scheduling
mechanism": pending disk requests are serviced in ascending block order
from the current head position to the end of the sweep, then the head
jumps back and sweeps up again.  Within the replay simulator this governs
the order a *batch* of miss extents (one I/O burst, possibly from several
files) hits the platter, which in turn decides how many of them are
sequential with their predecessor and dodge the seek + rotation charge.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.kernel.page import Extent


@dataclass(frozen=True, slots=True)
class DiskExtent:
    """A device-level request: file extent + absolute disk placement."""

    extent: Extent
    start_block: int

    def __post_init__(self) -> None:
        if self.start_block < 0:
            raise ValueError("negative block address")

    @property
    def nblocks(self) -> int:
        return self.extent.npages

    @property
    def end_block(self) -> int:
        return self.start_block + self.nblocks


class CScanScheduler:
    """Circular-SCAN elevator over block addresses.

    Requests are queued with :meth:`add`; :meth:`drain` yields them in
    C-SCAN order starting from the current head position: ascending
    blocks >= head first, then wrap to the lowest queued block and ascend
    again.  The head position updates as requests are yielded.
    """

    def __init__(self, head_block: int = 0) -> None:
        if head_block < 0:
            raise ValueError("negative head position")
        self._head = head_block
        self._counter = itertools.count()
        self._queue: list[tuple[int, int, DiskExtent]] = []

    @property
    def head_block(self) -> int:
        """Current sweep position (start block of the last dispatch).

        This is the *selection* head: the next request chosen is the
        lowest-addressed one at or above it, so several requests for the
        same block dispatch back-to-back within one sweep.  Physical
        head position for seek costing is the disk model's concern.
        """
        return self._head

    def __len__(self) -> int:
        return len(self._queue)

    def add(self, request: DiskExtent) -> None:
        """Queue one request."""
        heapq.heappush(self._queue,
                       (request.start_block, next(self._counter), request))

    def add_all(self, requests: Iterable[DiskExtent]) -> None:
        """Queue several requests."""
        for r in requests:
            self.add(r)

    def drain(self) -> Iterator[DiskExtent]:
        """Yield all queued requests in C-SCAN order, updating the head.

        New requests added *while draining* join the current sweep if
        they are still ahead of the head, otherwise the next one — the
        standard elevator guarantee against starvation.
        """
        while self._queue:
            ahead = [entry for entry in self._queue
                     if entry[0] >= self._head]
            if not ahead:
                # End of sweep: jump home and ascend again (the "C").
                self._head = 0
                continue
            pick = min(ahead)
            self._queue.remove(pick)
            heapq.heapify(self._queue)
            request = pick[2]
            self._head = request.start_block
            yield request

    def order(self, requests: Iterable[DiskExtent]) -> list[DiskExtent]:
        """Convenience: C-SCAN-order a batch without persisting state.

        Used by the replay simulator to sequence one burst's misses; the
        head position advances across calls.
        """
        self.add_all(requests)
        return list(self.drain())
