"""Asynchronous write-back and Linux laptop mode.

The paper's simulator models "the asynchronous write-back scheme" and
"the policies adopted in the Linux laptop mode, such as eager writing
back dirty blocks to active disks and delaying write-back to disks in the
standby mode" (§3.1).  Concretely:

* writes dirty pages in the cache and return immediately;
* dirty pages older than ``max_age`` (default 30 s, the laptop-mode
  ``dirty_expire``) must be flushed even if that spins the disk up;
* whenever the disk is active for other reasons, *all* dirty pages are
  flushed eagerly ("piggy-backing") so the disk can spin down sooner and
  stay down longer.

The manager does not talk to a device itself; it decides *what to flush
when*, and the replay simulator issues the resulting extents to the disk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.cache import TwoQCache
from repro.kernel.page import Extent, runs_from_pages
from repro.units import Seconds


@dataclass(frozen=True, slots=True)
class WritebackConfig:
    """Write-back policy knobs.

    Attributes
    ----------
    max_age:
        Seconds a page may stay dirty before a forced flush (laptop-mode
        ``dirty_expire_centisecs`` default is 30 s).
    eager_on_active:
        Flush everything whenever the disk is already active/idle
        (laptop mode's signature behaviour).
    dirty_limit_pages:
        Safety valve: exceeding this many dirty pages forces a flush
        regardless of disk state.
    """

    max_age: float = 30.0
    eager_on_active: bool = True
    dirty_limit_pages: int = 4096

    def __post_init__(self) -> None:
        if self.max_age <= 0:
            raise ValueError("max_age must be positive")
        if self.dirty_limit_pages <= 0:
            raise ValueError("dirty_limit_pages must be positive")


class LaptopModeWriteback:
    """Decides which dirty pages to flush at each opportunity."""

    def __init__(self, cache: TwoQCache,
                 config: WritebackConfig | None = None) -> None:
        self.cache = cache
        self.config = config or WritebackConfig()
        self.flush_count = 0
        self.flushed_pages = 0
        self._dirty_times: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    def note_dirty(self, page, now: Seconds) -> None:
        """Record a page becoming dirty at ``now``."""
        self._dirty_times.setdefault(tuple(page), now)

    def note_clean(self, page) -> None:
        """Record a page flushed (by us or by eviction)."""
        self._dirty_times.pop(tuple(page), None)

    @property
    def dirty_count(self) -> int:
        return len(self._dirty_times)

    def oldest_dirty_age(self, now: Seconds) -> float:
        """Age of the oldest dirty page (0 if none)."""
        if not self._dirty_times:
            return 0.0
        return now - min(self._dirty_times.values())

    # ------------------------------------------------------------------
    def next_forced_flush(self) -> float | None:
        """Absolute time the oldest dirty page expires, or None."""
        if not self._dirty_times:
            return None
        return min(self._dirty_times.values()) + self.config.max_age

    def plan_flush(self, now: Seconds, *, disk_active: bool) -> list[Extent]:
        """Extents to flush at ``now``; empty list means nothing due.

        Eager when the disk is active (laptop mode), otherwise only when
        a page exceeded ``max_age`` or the dirty limit tripped — and then
        *everything* goes, to buy the longest possible quiet period.
        """
        if not self._dirty_times:
            return []
        due = (disk_active and self.config.eager_on_active) \
            or self.oldest_dirty_age(now) >= self.config.max_age \
            or self.dirty_count >= self.config.dirty_limit_pages
        if not due:
            return []
        pages = [p for p in self.cache.dirty_pages()
                 if tuple(p) in self._dirty_times]
        # Pages already evicted-with-flush are gone from the cache but
        # may linger in our table; drop them.
        stale = set(self._dirty_times) - {tuple(p) for p in pages}
        for key in stale:
            self._dirty_times.pop(key, None)
        if not pages:
            return []
        extents = runs_from_pages(pages)
        for p in pages:
            self.cache.clean(p)
            self.note_clean(p)
        self.flush_count += 1
        self.flushed_pages += sum(e.npages for e in extents)
        return extents
