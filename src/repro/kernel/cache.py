"""2Q-like page cache.

The paper's simulator emulates "the 2Q-like page replacement algorithm"
of the Linux buffer cache.  This module implements the classic simplified
2Q of Johnson & Shasha (VLDB '94), which is the scheme Linux's
active/inactive lists approximate:

* **A1in** — a FIFO of pages seen once, sized ``Kin`` (default 25 % of
  capacity).  First-touch pages go here, so a single scan (grep over a
  source tree) cannot wipe out the hot set.
* **A1out** — a ghost FIFO of page *identities* recently evicted from
  A1in, sized ``Kout`` (default 50 % of capacity, identities only — it
  holds no data).
* **Am** — an LRU of pages re-referenced while in A1out; this is the
  protected hot set.

Dirty state is tracked per page; evicting a dirty page surfaces it to the
caller so the write-back layer can schedule the flush.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.kernel.page import Extent, PageId
from repro.units import Seconds


@dataclass
class CacheStats:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    ghost_promotions: int = 0
    dirty_evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class _PageMeta:
    dirty: bool = False
    dirtied_at: float = field(default=0.0)
    #: Linux's PG_referenced: set on the first A1in touch, promotion to
    #: Am happens on the second.  Keeps one-touch prefetched pages (and
    #: whole sequential scans) out of the protected set.
    referenced: bool = False


class TwoQCache:
    """Simplified 2Q replacement over :class:`PageId` keys.

    Parameters
    ----------
    capacity_pages:
        Total resident pages (A1in + Am).
    kin_fraction / kout_fraction:
        Sizing of A1in and the A1out ghost list relative to capacity,
        defaulting to the 2Q paper's recommended 25 % / 50 %.
    """

    def __init__(self, capacity_pages: int, *, kin_fraction: float = 0.25,
                 kout_fraction: float = 0.50) -> None:
        if capacity_pages <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < kin_fraction < 1.0:
            raise ValueError("kin_fraction must be in (0, 1)")
        if kout_fraction <= 0.0:
            raise ValueError("kout_fraction must be positive")
        self.capacity = int(capacity_pages)
        self.kin = max(1, int(self.capacity * kin_fraction))
        self.kout = max(1, int(self.capacity * kout_fraction))
        self._a1in: OrderedDict[PageId, _PageMeta] = OrderedDict()
        self._a1out: OrderedDict[PageId, None] = OrderedDict()
        self._am: OrderedDict[PageId, _PageMeta] = OrderedDict()
        #: Union of A1in and Am keys, kept in lockstep so residency
        #: checks (the cost model's hottest query) are one set lookup
        #: instead of two ordered-dict probes.
        self._resident: set[PageId] = set()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, page: PageId) -> bool:
        return page in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def is_resident(self, inode: int, index: int) -> bool:
        """O(1) residency check without constructing a :class:`PageId`.

        ``PageId`` is a tuple subclass, so the plain ``(inode, index)``
        tuple hashes and compares equal to the stored key.
        """
        return (inode, index) in self._resident

    def resident_count(self, inode: int, start: int, end: int) -> int:
        """Resident pages of ``inode`` in ``[start, end)`` (O(1) each)."""
        resident = self._resident
        count = 0
        for index in range(start, end):
            if (inode, index) in resident:
                count += 1
        return count

    def resident_fraction(self, extent: Extent) -> float:
        """Fraction of an extent's pages currently resident."""
        hits = self.resident_count(extent.inode, extent.start, extent.end)
        return hits / extent.npages

    def is_dirty(self, page: PageId) -> bool:
        """Whether a resident page is dirty (False if absent)."""
        meta = self._a1in.get(page) or self._am.get(page)
        return bool(meta and meta.dirty)

    def dirty_pages(self) -> list[PageId]:
        """All resident dirty pages, oldest dirtied first."""
        pages = [(m.dirtied_at, p)
                 for q in (self._a1in, self._am)
                 for p, m in q.items() if m.dirty]
        return [p for _, p in sorted(pages)]

    # ------------------------------------------------------------------
    # access path
    # ------------------------------------------------------------------
    def access(self, page: PageId) -> bool:
        """Record a reference.  Returns True on hit, False on miss.

        A miss does *not* insert the page — the caller fetches it from a
        device and then calls :meth:`insert`.  This split is what lets
        the VFS batch misses into readahead-sized device extents.
        """
        if page in self._am:
            self._am.move_to_end(page)
            self.stats.hits += 1
            return True
        meta = self._a1in.get(page)
        if meta is not None:
            # Linux's two-touch promotion: the first A1in reference
            # sets PG_referenced, the second moves the page to the
            # active set.  (Classic 2Q never promotes from A1in, which
            # lets a scan flush a hot set that was re-read before ever
            # being evicted; one-touch promotion would instead let
            # every prefetched-then-read scan page flood Am.)
            if meta.referenced:
                del self._a1in[page]
                self._am[page] = meta
            else:
                meta.referenced = True
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def insert(self, page: PageId, *, dirty: bool = False,
               now: Seconds = 0.0) -> list[PageId]:
        """Install a fetched/written page; returns evicted dirty pages.

        Pages whose identity is still in the A1out ghost list go straight
        to Am (they have proven re-reference value); new pages enter A1in.
        Clean evictions vanish silently; dirty ones are returned so the
        write-back layer can flush them.
        """
        if page in self._resident:
            meta = self._am.get(page)
            if meta is not None:
                self._am.move_to_end(page)
            else:
                meta = self._a1in[page]
            if dirty:
                meta.dirty = True
                meta.dirtied_at = now
            return []
        meta = _PageMeta(dirty=dirty, dirtied_at=now if dirty else 0.0)
        if page in self._a1out:
            del self._a1out[page]
            self._am[page] = meta
            self.stats.ghost_promotions += 1
        else:
            self._a1in[page] = meta
        self._resident.add(page)
        self.stats.insertions += 1
        if len(self._resident) > self.capacity:
            return self._reclaim()
        return []

    def insert_run(self, inode: int, start: int, end: int, *,
                   dirty: bool = False, now: Seconds = 0.0) -> list[PageId]:
        """Batched :meth:`insert` of pages ``[start, end)`` of ``inode``.

        Reclaim still runs after every single insertion (so the eviction
        stream is bit-identical to one-at-a-time inserts); the batching
        saves the per-page call and list plumbing on the fetch-completion
        path, where multi-page readahead extents land.  The body is
        :meth:`insert` inlined with the queues bound to locals.
        """
        flushed: list[PageId] = []
        resident = self._resident
        a1in, a1out, am = self._a1in, self._a1out, self._am
        capacity = self.capacity
        stats = self.stats
        dirtied_at = now if dirty else 0.0
        for index in range(start, end):
            page = PageId(inode, index)
            if page in resident:
                meta = am.get(page)
                if meta is not None:
                    am.move_to_end(page)
                else:
                    meta = a1in[page]
                if dirty:
                    meta.dirty = True
                    meta.dirtied_at = now
                continue
            meta = _PageMeta(dirty=dirty, dirtied_at=dirtied_at)
            if page in a1out:
                del a1out[page]
                am[page] = meta
                stats.ghost_promotions += 1
            else:
                a1in[page] = meta
            resident.add(page)
            stats.insertions += 1
            if len(resident) > capacity:
                evicted = self._reclaim()
                if evicted:
                    flushed.extend(evicted)
        return flushed

    def mark_dirty(self, page: PageId, now: Seconds) -> bool:
        """Mark a resident page dirty; returns False if not resident."""
        meta = self._a1in.get(page) or self._am.get(page)
        if meta is None:
            return False
        if not meta.dirty:
            meta.dirty = True
            meta.dirtied_at = now
        return True

    def clean(self, page: PageId) -> None:
        """Clear the dirty bit after a successful write-back."""
        meta = self._a1in.get(page) or self._am.get(page)
        if meta is not None:
            meta.dirty = False

    def drop(self, page: PageId) -> None:
        """Invalidate a page (used by tests and failure injection)."""
        self._a1in.pop(page, None)
        self._am.pop(page, None)
        self._a1out.pop(page, None)
        self._resident.discard(page)

    # ------------------------------------------------------------------
    # replacement
    # ------------------------------------------------------------------
    def _reclaim(self) -> list[PageId]:
        """Evict until within capacity; returns evicted *dirty* pages."""
        flushed: list[PageId] = []
        while len(self._resident) > self.capacity:
            if len(self._a1in) > self.kin or not self._am:
                page, meta = self._a1in.popitem(last=False)
                self._a1out[page] = None
                while len(self._a1out) > self.kout:
                    self._a1out.popitem(last=False)
            else:
                page, meta = self._am.popitem(last=False)
            self._resident.discard(page)
            self.stats.evictions += 1
            if meta.dirty:
                self.stats.dirty_evictions += 1
                flushed.append(page)
        return flushed

    # ------------------------------------------------------------------
    # introspection for tests
    # ------------------------------------------------------------------
    def queue_sizes(self) -> tuple[int, int, int]:
        """``(len(A1in), len(A1out), len(Am))``."""
        return len(self._a1in), len(self._a1out), len(self._am)
