"""Kernel path layer: the VFS/cache/readahead/write-back pipeline.

The pieces — page cache, readahead, write-back, the C-SCAN elevator —
already live in this package; :class:`KernelPath` is the seam that used
to be hand-wired inside the replay simulator.  Every syscall the
workload layer replays walks this object: reads become miss extents
(after cache subtraction and readahead) ordered for the disk arm,
writes become forced-eviction extents, and laptop-mode flushes
piggy-back on an active disk.

Disk placement is injected as a ``locate`` callable (extent -> start
block) so the kernel layer stays below the policy/core layers and free
of their types; the :class:`~repro.core.system.MobileSystem` wires it
to the :class:`~repro.devices.layout.DiskLayout`.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.kernel.page import Extent
from repro.kernel.scheduler import CScanScheduler, DiskExtent
from repro.kernel.vfs import VirtualFileSystem
from repro.units import Bytes, Seconds


class KernelPath:
    """The in-kernel journey of one syscall, cache to device queue."""

    def __init__(self, vfs: VirtualFileSystem, scheduler: CScanScheduler,
                 locate: Callable[[Extent], int]) -> None:
        self.vfs = vfs
        self.scheduler = scheduler
        self._locate = locate

    # -- syscall entry points ------------------------------------------
    def read(self, pid: int, inode: int, offset: int, size: Bytes,
             now: Seconds) -> list[Extent]:
        """Cache/readahead a read; returns its miss extents in C-SCAN
        order (only these reach a device)."""
        plan = self.vfs.read(pid, inode, offset, size, now)
        return self.order_for_disk(list(plan.fetch_extents))

    def write(self, pid: int, inode: int, offset: int, size: Bytes,
              now: Seconds) -> list[Extent]:
        """Dirty the pages of a write; returns forced-eviction extents
        that must hit a device immediately (memory pressure)."""
        return self.vfs.write(pid, inode, offset, size, now)

    def plan_writeback(self, now: Seconds, *,
                       disk_active: bool) -> list[Extent]:
        """Laptop-mode opportunistic flush plan (empty if nothing due)."""
        return self.vfs.plan_writeback(now, disk_active=disk_active)

    def complete_fetch(self, extent: Extent, now: Seconds) -> list[Extent]:
        """A device finished fetching ``extent``; populate the cache."""
        return self.vfs.complete_fetch(extent, now)

    # -- device-queue ordering -----------------------------------------
    def order_for_disk(self, extents: list[Extent]) -> list[Extent]:
        """C-SCAN-order a batch of extents by their disk placement."""
        if len(extents) <= 1:
            return extents
        requests = [DiskExtent(extent=e, start_block=self._locate(e))
                    for e in extents]
        return [r.extent for r in self.scheduler.order(requests)]
