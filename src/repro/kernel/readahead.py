"""Two-window readahead, as in the 2.6-era Linux kernel.

The paper's simulator emulates "the two-window readahead policy that
prefetches up to 32 pages".  Per file stream the kernel keeps a *current
window* (pages the application is consuming) and an *ahead window*
(pages being prefetched behind it).  On detected sequential access the
window doubles up to :data:`~repro.kernel.page.MAX_READAHEAD_PAGES`
(32 pages = 128 KB); a random access collapses the stream back to the
minimum.  This is exactly the mechanism FlexFetch's §2.1 burst model
assumes when it merges sequential requests "into one request of size up
to 128 KB".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.page import MAX_READAHEAD_PAGES, Extent


@dataclass
class ReadaheadState:
    """Per-(process, file) stream state.

    ``window_start``/``window_pages`` describe the current window;
    ``ahead_start``/``ahead_pages`` the ahead window (0 pages = none);
    ``next_size`` the size the next ahead window will get.
    """

    window_start: int = 0
    window_pages: int = 0
    ahead_start: int = 0
    ahead_pages: int = 0
    next_size: int = 0
    last_page: int = -2  # sentinel: nothing read yet
    sequential_count: int = 0
    random_count: int = field(default=0)


class TwoWindowReadahead:
    """Computes prefetch extents for a read stream.

    Parameters
    ----------
    min_pages:
        Initial readahead size on the first sequential hit (Linux uses
        4 pages = 16 KB).
    max_pages:
        Hard cap — 32 pages (128 KB) per the paper.
    """

    def __init__(self, min_pages: int = 4,
                 max_pages: int = MAX_READAHEAD_PAGES) -> None:
        if min_pages <= 0 or max_pages < min_pages:
            raise ValueError("need 0 < min_pages <= max_pages")
        self.min_pages = min_pages
        self.max_pages = max_pages
        self._streams: dict[tuple[int, int], ReadaheadState] = {}

    def state(self, pid: int, inode: int) -> ReadaheadState:
        """The stream state for ``(pid, inode)`` (created on demand)."""
        return self._streams.setdefault((pid, inode), ReadaheadState())

    def reset(self, pid: int, inode: int) -> None:
        """Forget a stream (file close)."""
        self._streams.pop((pid, inode), None)

    # ------------------------------------------------------------------
    def plan(self, pid: int, inode: int, extent: Extent,
             file_pages: int) -> Extent:
        """Expand a demand read into the extent the kernel would fetch.

        Returns the union of the demand pages and any readahead pages,
        clamped to the file size.  The caller intersects the result with
        the cache to find what actually hits the device.
        """
        st = self.state(pid, inode)
        # Sequential = the read starts exactly where the previous one
        # ended (next page), or continues within the last touched page
        # (sub-page sequential reads).  A re-read of an earlier position
        # is a random probe and collapses the window.
        sequential = extent.start in (st.last_page, st.last_page + 1)
        if st.last_page < -1:
            # First access to the stream: offset-0 reads are treated as
            # sequential starts (open-then-read), others as random probes.
            sequential = extent.start == 0

        if sequential:
            st.sequential_count += 1
            if st.next_size == 0:
                st.next_size = self.min_pages
            else:
                st.next_size = min(st.next_size * 2, self.max_pages)
        else:
            st.random_count += 1
            st.next_size = 0
            st.ahead_pages = 0

        demand_end = extent.end
        fetch_start = extent.start
        fetch_end = demand_end
        if sequential:
            # Build/extend the ahead window past the demand pages.
            ahead = st.next_size
            fetch_end = min(demand_end + ahead, file_pages)
        fetch_end = max(fetch_end, demand_end)
        fetch_end = min(max(fetch_end, fetch_start + 1),
                        max(file_pages, fetch_start + 1))

        st.window_start = extent.start
        st.window_pages = extent.npages
        st.ahead_start = demand_end
        st.ahead_pages = max(0, fetch_end - demand_end)
        st.last_page = extent.end - 1
        return Extent(inode, fetch_start, fetch_end - fetch_start)
