"""Simulated Linux I/O path.

The paper's simulator "emulates the policies used for Linux buffer cache
management, including the 2Q-like page replacement algorithm, the
two-window readahead policy that prefetches up to 32 pages, the C-SCAN
I/O request scheduling mechanism, and the asynchronous write-back scheme"
plus laptop mode (§3.1).  Each of those policies is one module here:

* :mod:`repro.kernel.page` — page/extent algebra shared by all of them,
* :mod:`repro.kernel.cache` — the 2Q-like page cache,
* :mod:`repro.kernel.readahead` — two-window readahead (<= 32 pages),
* :mod:`repro.kernel.scheduler` — C-SCAN ordering of disk extents,
* :mod:`repro.kernel.writeback` — async write-back + laptop mode,
* :mod:`repro.kernel.vfs` — the read/write system-call service path that
  composes them and emits device-agnostic fetch extents.
"""

from repro.kernel.cache import CacheStats, TwoQCache
from repro.kernel.page import PAGE_SIZE, Extent, PageId, pages_of_range
from repro.kernel.readahead import ReadaheadState, TwoWindowReadahead
from repro.kernel.scheduler import CScanScheduler, DiskExtent
from repro.kernel.vfs import FetchPlan, VirtualFileSystem
from repro.kernel.writeback import LaptopModeWriteback, WritebackConfig

__all__ = [
    "CacheStats",
    "TwoQCache",
    "PAGE_SIZE",
    "Extent",
    "PageId",
    "pages_of_range",
    "ReadaheadState",
    "TwoWindowReadahead",
    "CScanScheduler",
    "DiskExtent",
    "FetchPlan",
    "VirtualFileSystem",
    "LaptopModeWriteback",
    "WritebackConfig",
]
