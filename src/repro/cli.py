"""Command-line entry point.

::

    flexfetch tables                 # render Tables 1-3
    flexfetch figure fig1            # run + render one figure
    flexfetch figure fig2 --panel a  # latency panel only
    flexfetch all                    # everything (slow)
    flexfetch run mplayer            # single workload, all policies,
                                     # default link settings
    flexfetch run grep+make --faults outage-rate=0.01 --strict
    flexfetch faults grep+make       # energy vs wireless outage rate
    flexfetch lint                   # determinism/units static analysis
    flexfetch sweep fig3 --journal s.jsonl --retries 3 --timeout 120
    flexfetch sweep fig3 --resume s.jsonl   # skip completed cells
    flexfetch sweep fig3 --partial          # placeholders, exit 3

``python -m repro`` is equivalent.

Exit codes: 0 success, 1 error, 2 usage, 3 partial sweep (some cells
failed after retries; see the failure manifest).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.bluefs import BlueFSPolicy
from repro.core.flexfetch import FlexFetchPolicy
from repro.core.policies import DiskOnlyPolicy, WnicOnlyPolicy
from repro.core.session import SimulationSession
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FIGURES, fault_panel
from repro.experiments.parallel import SweepCellError
from repro.experiments.report import (
    fault_panel_to_csv,
    render_fault_panel,
    render_figure,
    render_table,
    sweep_to_csv,
)
from repro.experiments.tables import table1, table2, table3
from repro.faults.invariants import SimulationInvariantError
from repro.faults.schedule import FaultSchedule, FaultSpec, FaultSpecError
from repro.sim.engine import SimulationError
from repro.traces.io import TraceValidationError, save_trace_csv, \
    save_trace_jsonl
from repro.traces.strace import StraceParseError, format_strace_line
from repro.traces.synth import TABLE3_GENERATORS


def _cmd_tables(args: argparse.Namespace) -> int:
    for table in (table1(), table2(), table3(seed=args.seed)):
        print(render_table(table))
        print()
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    builder = FIGURES.get(args.figure)
    if builder is None:
        print(f"unknown figure {args.figure!r}; choose from"
              f" {sorted(FIGURES)}", file=sys.stderr)
        return 2
    config = ExperimentConfig(seed=args.seed)
    progress = (lambda line: print(f"  {line}", file=sys.stderr)) \
        if args.verbose else None
    cache = None
    if not args.no_cache:
        from repro.experiments.cache import RunCache
        cache = RunCache(args.cache_dir)
    result = builder(config, panels=args.panel, progress=progress,
                     workers=args.workers, cache=cache)
    print(render_figure(result))
    if args.svg:
        from repro.experiments.svg import save_figure_svg
        for path in save_figure_svg(result, args.svg):
            print(f"wrote {path}", file=sys.stderr)
    if args.csv:
        if result.by_latency:
            print("# panel (a) CSV")
            print(sweep_to_csv(result.by_latency))
        if result.by_bandwidth:
            print("# panel (b) CSV")
            print(sweep_to_csv(result.by_bandwidth))
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    rc = _cmd_tables(args)
    for figure_id in FIGURES:
        args.figure = figure_id
        rc |= _cmd_figure(args)
    return rc


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.traces.synth.scenarios import SCENARIOS, build_scenario
    if args.workload not in SCENARIOS:
        print(f"unknown scenario {args.workload!r}; choose from"
              f" {sorted(SCENARIOS)}", file=sys.stderr)
        return 2
    config = ExperimentConfig(seed=args.seed)
    scenario = build_scenario(args.workload, seed=args.seed)
    fault_spec = FaultSpec.parse(args.faults) if args.faults else None
    total_calls = sum(len(p.trace) for p in scenario.programs)
    print(f"scenario {scenario.name}: {scenario.description}")
    print(f"  {len(scenario.programs)} program(s), {total_calls} calls")
    if fault_spec is not None and fault_spec.enabled:
        print(f"  faults: {args.faults}")
    policies = [DiskOnlyPolicy(), WnicOnlyPolicy(), BlueFSPolicy(),
                FlexFetchPolicy(scenario.profile)]
    for policy in policies:
        faults = FaultSchedule(fault_spec, seed=args.seed) \
            if fault_spec is not None else None
        result = (SimulationSession(list(scenario.programs), policy,
                                    disk_spec=config.disk_spec,
                                    wnic_spec=config.wnic_spec,
                                    memory_bytes=config.memory_bytes,
                                    seed=config.seed)
                  .with_faults(faults, strict=args.strict)
                  .run())
        line = result.summary()
        failovers = sum(result.fault_failovers.values())
        if failovers or result.disk_spinup_failures:
            line += (f"  [failovers={failovers}"
                     f" spinup-failures={result.disk_spinup_failures}]")
        print(" ", line)
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.traces.synth.scenarios import SCENARIOS
    if args.workload not in SCENARIOS:
        print(f"unknown scenario {args.workload!r}; choose from"
              f" {sorted(SCENARIOS)}", file=sys.stderr)
        return 2
    try:
        rates = tuple(float(r) for r in args.rates.split(",") if r.strip())
    except ValueError:
        print(f"bad --rates {args.rates!r}; expected comma-separated"
              " numbers", file=sys.stderr)
        return 2
    if not rates or any(r < 0 for r in rates):
        print("--rates needs at least one non-negative rate",
              file=sys.stderr)
        return 2
    base = FaultSpec.parse(args.faults) if args.faults else None
    config = ExperimentConfig(seed=args.seed)
    progress = (lambda line: print(f"  {line}", file=sys.stderr)) \
        if args.verbose else None
    panel = fault_panel(config, scenario=args.workload, rates=rates,
                        base_spec=base, strict=args.strict,
                        progress=progress)
    print(render_fault_panel(panel))
    if args.csv:
        print("# fault panel CSV")
        print(fault_panel_to_csv(panel))
    return 0


#: Exit code of a ``--partial`` sweep that finished with failed cells.
EXIT_PARTIAL = 3


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Supervised, journaled, resumable figure sweep."""
    import json as _json
    import tempfile

    from repro.experiments.journal import SweepJournal
    from repro.experiments.parallel import (
        ParallelSweepExecutor,
        enable_profiling,
        failure_manifest,
        merged_profile_stats,
        profile_report,
    )
    from repro.experiments.supervisor import RetryPolicy
    from repro.faults.chaos import ChaosSpec

    builder = FIGURES.get(args.figure)
    if builder is None:
        print(f"unknown figure {args.figure!r}; choose from"
              f" {sorted(FIGURES)}", file=sys.stderr)
        return 2
    if args.resume and args.journal and args.resume != args.journal:
        print("flexfetch: error: --resume and --journal name different"
              " files; pass just --resume", file=sys.stderr)
        return 2

    config = ExperimentConfig(seed=args.seed)
    progress = (lambda line: print(f"  {line}", file=sys.stderr)) \
        if args.verbose else None
    cache = None
    if not args.no_cache:
        from repro.experiments.cache import RunCache
        cache = RunCache(args.cache_dir)
    journal_path = args.resume or args.journal
    journal = SweepJournal(journal_path) if journal_path else None
    chaos = ChaosSpec.parse(args.chaos) if args.chaos else None
    retry = RetryPolicy(max_retries=args.retries,
                        backoff_base=args.backoff)
    executor = ParallelSweepExecutor(
        args.workers, cache=cache, retry=retry, timeout=args.timeout,
        journal=journal, partial=args.partial, chaos=chaos,
        sanitize=True if args.sanitize else None)
    profiling = args.profile or args.profile_out
    profile_dir = None
    if profiling:
        # Armed before the pool forks so workers inherit the setting;
        # each live cell dumps one .prof the parent merges below.
        profile_dir = tempfile.mkdtemp(prefix="flexfetch-profile-")
        enable_profiling(profile_dir)
    try:
        result = builder(config, panels=args.panel, progress=progress,
                         executor=executor)
    finally:
        if profiling:
            enable_profiling(None)
        if journal is not None:
            journal.close()
    print(render_figure(result))

    if profiling:
        assert profile_dir is not None
        stats = merged_profile_stats(profile_dir)
        if stats is None:
            print("profile: no cells ran live (all cached/journaled);"
                  " nothing to report", file=sys.stderr)
        else:
            print(profile_report(stats, top=args.profile_top), end="")
            if args.profile_out:
                stats.dump_stats(args.profile_out)
                print(f"merged profile written to {args.profile_out}",
                      file=sys.stderr)

    cells = executor.live_runs + executor.cache_hits + \
        executor.journal_hits + len(executor.failures)
    summary = (f"sweep {args.figure}: {cells} cells"
               f" ({executor.live_runs} live, {executor.cache_hits}"
               f" cached, {executor.journal_hits} journal)"
               f" retries={sum(executor.retries.values())}"
               f" respawns={executor.respawns}")
    if cache is not None and cache.corrupt_rows:
        summary += f" corrupt-cache-rows={cache.corrupt_rows}"
    if executor.failures:
        summary += f" FAILED={len(executor.failures)}"
    print(summary, file=sys.stderr)

    if executor.failures:
        manifest_path = args.manifest or (
            f"{journal_path}.failures.json" if journal_path
            else "sweep-failures.json")
        with open(manifest_path, "w", encoding="utf-8") as fh:
            _json.dump(failure_manifest(executor.failures), fh,
                       indent=1, sort_keys=True)
        print(f"failure manifest written to {manifest_path}",
              file=sys.stderr)
        return EXIT_PARTIAL
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    gen = TABLE3_GENERATORS.get(args.workload)
    if gen is None:
        print(f"unknown workload {args.workload!r}; choose from"
              f" {sorted(TABLE3_GENERATORS)}", file=sys.stderr)
        return 2
    trace = gen(seed=args.seed)
    if args.format == "jsonl":
        save_trace_jsonl(trace, args.out)
    elif args.format == "csv":
        save_trace_csv(trace, args.out)
    else:  # strace collector text
        with open(args.out, "w", encoding="utf-8") as fh:
            paths = {i: f.path for i, f in trace.files.items()}
            for rec in trace.records:
                fh.write(format_strace_line(
                    rec, path=paths.get(rec.inode),
                    epoch=1_183_900_000.0) + "\n")
    stats = trace.stats()
    print(f"wrote {args.out}: {stats.record_count} records,"
          f" {stats.file_count} files,"
          f" {stats.footprint_mb:.1f} MB footprint")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import main as lint_main
    argv: list[str] = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.list_rules:
        argv.append("--list-rules")
    if args.sarif:
        argv += ["--sarif", args.sarif]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.format != "text":
        argv += ["--format", args.format]
    return lint_main(argv)


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.traces.analysis import analyze_trace
    from repro.traces.synth.scenarios import SCENARIOS, build_scenario
    if args.workload not in SCENARIOS:
        print(f"unknown scenario {args.workload!r}; choose from"
              f" {sorted(SCENARIOS)}", file=sys.stderr)
        return 2
    scenario = build_scenario(args.workload, seed=args.seed)
    for spec in scenario.programs:
        print(analyze_trace(spec.trace).render())
        flags = []
        if not spec.profiled:
            flags.append("non-profiled")
        if spec.disk_pinned:
            flags.append("disk-pinned")
        if flags:
            print(f"  ({', '.join(flags)})")
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flexfetch",
        description="FlexFetch (ICPP 2007) reproduction harness")
    parser.add_argument("--seed", type=int, default=7,
                        help="experiment seed (default 7)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="render Tables 1-3")

    def add_sweep_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes for sweep cells"
                       " (default 1 = in-process)")
        p.add_argument("--no-cache", action="store_true",
                       help="always simulate; skip the run cache")
        p.add_argument("--cache-dir", default="benchmarks/results/cache",
                       metavar="DIR",
                       help="run-cache directory"
                       " (default benchmarks/results/cache)")

    p_fig = sub.add_parser("figure", help="run one figure")
    p_fig.add_argument("figure", choices=sorted(FIGURES))
    p_fig.add_argument("--panel", default="ab", choices=["a", "b", "ab"],
                       help="which panel(s) to run")
    p_fig.add_argument("--csv", action="store_true",
                       help="also dump CSV data")
    p_fig.add_argument("--verbose", action="store_true",
                       help="per-point progress on stderr")
    p_fig.add_argument("--svg", metavar="DIR",
                       help="also write SVG charts into DIR")
    add_sweep_flags(p_fig)

    p_all = sub.add_parser("all", help="run every table and figure")
    p_all.add_argument("--panel", default="ab", choices=["a", "b", "ab"])
    p_all.add_argument("--csv", action="store_true")
    p_all.add_argument("--verbose", action="store_true")
    p_all.add_argument("--svg", metavar="DIR",
                       help="also write SVG charts into DIR")
    add_sweep_flags(p_all)

    from repro.traces.synth.scenarios import SCENARIOS
    p_run = sub.add_parser("run",
                           help="one scenario, all policies, default link")
    p_run.add_argument("workload", choices=sorted(SCENARIOS))
    p_run.add_argument("--faults", metavar="SPEC",
                       help="inject faults, e.g."
                       " 'outage-rate=0.01,spinup-fail-prob=0.2'")
    p_run.add_argument("--strict", action="store_true",
                       help="runtime invariant checking (fail loudly)")

    p_faults = sub.add_parser(
        "faults", help="energy of all policies vs wireless outage rate")
    p_faults.add_argument("workload", choices=sorted(SCENARIOS))
    p_faults.add_argument("--rates", default="0,0.002,0.005,0.01,0.02",
                          help="comma-separated outage rates (1/s)")
    p_faults.add_argument("--faults", metavar="SPEC",
                          help="base fault spec the rate sweep overrides")
    p_faults.add_argument("--strict", action="store_true",
                          help="runtime invariant checking on every run")
    p_faults.add_argument("--csv", action="store_true",
                          help="also dump CSV data")
    p_faults.add_argument("--verbose", action="store_true",
                          help="per-point progress on stderr")

    p_sweep = sub.add_parser(
        "sweep",
        help="supervised figure sweep: retries, timeouts, journaling,"
             " resume, graceful degradation")
    p_sweep.add_argument("figure", choices=sorted(FIGURES))
    p_sweep.add_argument("--panel", default="ab",
                         choices=["a", "b", "ab"],
                         help="which panel(s) to run")
    p_sweep.add_argument("--verbose", action="store_true",
                         help="per-point progress on stderr")
    add_sweep_flags(p_sweep)
    p_sweep.add_argument("--journal", metavar="FILE",
                         help="append-only crash-consistent journal of"
                              " completed cells (JSONL)")
    p_sweep.add_argument("--resume", metavar="FILE",
                         help="resume from an existing journal,"
                              " skipping completed cells bit-identically")
    p_sweep.add_argument("--retries", type=int, default=2, metavar="K",
                         help="retry budget per cell (default 2)")
    p_sweep.add_argument("--backoff", type=float, default=0.25,
                         metavar="S",
                         help="base retry backoff seconds, doubled per"
                              " attempt (default 0.25)")
    p_sweep.add_argument("--timeout", type=float, default=None,
                         metavar="S",
                         help="per-cell wall-clock timeout in seconds;"
                              " hung workers are killed and the cell"
                              " retried (needs --workers > 1)")
    p_sweep.add_argument("--partial", action="store_true",
                         help="finish the sweep despite permanently"
                              " failed cells (placeholder points, a"
                              " failure manifest, exit code 3)")
    p_sweep.add_argument("--manifest", metavar="FILE",
                         help="failure-manifest path (default"
                              " <journal>.failures.json or"
                              " sweep-failures.json)")
    p_sweep.add_argument("--sanitize", action="store_true",
                         help="shadow-verify every live fast-path cell"
                              " against the event loop at the bit level"
                              " (same as REPRO_SANITIZE=1; divergence"
                              " raises ReplayDivergenceError)")
    p_sweep.add_argument("--chaos", metavar="SPEC",
                         help="fault injection for the orchestrator,"
                              " e.g. 'kill-prob=0.5,corrupt-prob=0.3'"
                              " (chaos testing)")
    p_sweep.add_argument("--profile", action="store_true",
                         help="cProfile every live cell in its worker;"
                              " print a merged top-N cumulative report"
                              " after the sweep")
    p_sweep.add_argument("--profile-out", metavar="FILE",
                         help="also dump the merged profile as a pstats"
                              " file (implies --profile)")
    p_sweep.add_argument("--profile-top", type=int, default=25,
                         metavar="N",
                         help="rows in the merged profile report"
                              " (default 25)")

    p_inspect = sub.add_parser(
        "inspect", help="burst/think structure report of a scenario")
    p_inspect.add_argument("workload", choices=sorted(SCENARIOS))

    p_lint = sub.add_parser(
        "lint", help="run the repo's determinism/units static analyzer")
    p_lint.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories (default: src tests)")
    p_lint.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids, e.g. R1,R3")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    p_lint.add_argument("--sarif", metavar="FILE",
                        help="also write findings as SARIF 2.1.0")
    p_lint.add_argument("--baseline", metavar="FILE",
                        help="recorded-baseline file; only new"
                             " findings fail the run")
    p_lint.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline with the current"
                             " findings")
    p_lint.add_argument("--format", default="text",
                        choices=["text", "github"],
                        help="finding output format; 'github' emits"
                             " ::error workflow annotations")

    p_trace = sub.add_parser(
        "trace", help="synthesise a workload trace and write it to disk")
    p_trace.add_argument("workload", choices=sorted(TABLE3_GENERATORS))
    p_trace.add_argument("--out", required=True,
                         help="output file path")
    p_trace.add_argument("--format", default="jsonl",
                         choices=["jsonl", "csv", "strace"],
                         help="on-disk format (default jsonl)")
    return parser


#: Failure modes every subcommand turns into exit code 1 with a
#: one-line diagnostic instead of a traceback.
_USER_ERRORS = (TraceValidationError, StraceParseError, FaultSpecError,
                SimulationInvariantError, SimulationError, ValueError,
                OSError)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (console script ``flexfetch``)."""
    args = build_parser().parse_args(argv)
    handlers = {
        "tables": _cmd_tables,
        "figure": _cmd_figure,
        "all": _cmd_all,
        "run": _cmd_run,
        "faults": _cmd_faults,
        "trace": _cmd_trace,
        "inspect": _cmd_inspect,
        "lint": _cmd_lint,
        "sweep": _cmd_sweep,
    }
    try:
        return handlers[args.command](args)
    except SweepCellError as exc:
        # A permanently failed sweep cell: show the worker's remote
        # traceback (the chained __cause__ lost its frames crossing the
        # process boundary) before the one-line diagnostic.
        if exc.remote_traceback:
            print(exc.remote_traceback, file=sys.stderr, end="")
        print(f"flexfetch: error: {exc}", file=sys.stderr)
        return 1
    except _USER_ERRORS as exc:
        message = str(exc).splitlines()[0] if str(exc) else \
            type(exc).__name__
        print(f"flexfetch: error: {message}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
