"""Typed physical quantities for the simulator.

FlexFetch's output *is* numbers with units — joules and seconds per
evaluation stage (§2.2), bytes over links quoted in megabits.  Modelling
them as bare ``float``/``int`` invites the classic trace-simulator bug
class: ms-vs-s slips, Mb-vs-MB slips, adding an energy to a time.  This
module gives every quantity a named alias and keeps every conversion in
one audited place.

The aliases are :data:`typing.Annotated` forms, not ``NewType`` wrappers:

* to a type checker (``mypy --strict``) ``Seconds`` *is* ``float``, so
  annotating the hot layers costs zero call-site churn and no runtime
  wrapping on the simulator's innermost loops;
* to the repo's own static analyzer (``python -m repro.lint``) the alias
  *name* is the unit: rule R2 demands these aliases on physical
  parameters/returns and flags arithmetic that mixes incompatible
  dimensions (see DESIGN.md §10).

Float equality on measured quantities is rule R3's business: compare
with :func:`approx_eq` / :func:`is_zero`, never ``==``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Annotated, TypeAlias


@dataclass(frozen=True, slots=True)
class Unit:
    """Metadata marker carried inside an ``Annotated`` quantity alias."""

    symbol: str
    dimension: str


SECOND = Unit("s", "time")
JOULE = Unit("J", "energy")
WATT = Unit("W", "power")
BYTE = Unit("B", "data")
BYTE_PER_SECOND = Unit("B/s", "bandwidth")

#: Wall-clock-free simulation time, in seconds.
Seconds: TypeAlias = Annotated[float, SECOND]
#: Energy, in joules (1 J = 1 W x 1 s).
Joules: TypeAlias = Annotated[float, JOULE]
#: Power draw, in watts.
Watts: TypeAlias = Annotated[float, WATT]
#: Data size, in bytes (always integral: syscalls move whole bytes).
Bytes: TypeAlias = Annotated[int, BYTE]
#: Link or platter bandwidth, in bytes per second.
BytesPerSecond: TypeAlias = Annotated[float, BYTE_PER_SECOND]


# ----------------------------------------------------------------------
# conversions (the only place magic factors are allowed)
# ----------------------------------------------------------------------
def milliseconds(value: float) -> Seconds:
    """Convert a millisecond figure (datasheet seek times) to seconds."""
    return value * 1e-3


def microseconds(value: float) -> Seconds:
    """Convert a microsecond figure to seconds."""
    return value * 1e-6


def megabits_per_second(megabits: float) -> BytesPerSecond:
    """Convert *decimal megabits/s* (network figures) to bytes/s.

    ``megabits_per_second(11.0)`` -> 1 375 000 B/s for the Aironet 350.
    """
    if megabits < 0:
        raise ValueError(f"bandwidth cannot be negative: {megabits!r}")
    return megabits * 1e6 / 8.0


def megabytes_per_second(megabytes: float) -> BytesPerSecond:
    """Convert *decimal megabytes/s* (disk datasheets) to bytes/s."""
    if megabytes < 0:
        raise ValueError(f"bandwidth cannot be negative: {megabytes!r}")
    return megabytes * 1e6


def energy_of(power: Watts, duration: Seconds) -> Joules:
    """Energy of a constant ``power`` draw held for ``duration``."""
    if duration < 0:
        raise ValueError(f"duration cannot be negative: {duration!r}")
    return power * duration


def transfer_seconds(size: Bytes, bandwidth: BytesPerSecond) -> Seconds:
    """Time to move ``size`` bytes at ``bandwidth`` bytes/second.

    A zero-byte transfer takes zero time regardless of bandwidth; a
    positive transfer over a non-positive bandwidth is a configuration
    error and raises.
    """
    if size < 0:
        raise ValueError(f"size cannot be negative: {size!r}")
    if size == 0:
        return 0.0
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive: {bandwidth!r}")
    return size / bandwidth


# ----------------------------------------------------------------------
# tolerant comparison (rule R3's sanctioned escape hatch)
# ----------------------------------------------------------------------
#: Default absolute slack for measured quantities; well below one
#: microjoule / one nanosecond, far above accumulated float noise.
ABS_TOLERANCE: float = 1e-9

#: Default relative slack, for quantities large enough that absolute
#: noise scales with magnitude (a 10 kJ run's rounding dwarfs 1e-9).
REL_TOLERANCE: float = 1e-9


def approx_eq(a: float, b: float, *, rel_tol: float = REL_TOLERANCE,
              abs_tol: float = ABS_TOLERANCE) -> bool:
    """Tolerant equality for measured times/energies.

    Symmetric mixed absolute/relative comparison: true when
    ``|a - b| <= max(rel_tol * max(|a|, |b|), abs_tol)``.
    """
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def is_zero(value: float, *, abs_tol: float = ABS_TOLERANCE) -> bool:
    """True when a measured quantity is zero up to float noise."""
    return abs(value) <= abs_tol


__all__ = [
    "Unit",
    "SECOND",
    "JOULE",
    "WATT",
    "BYTE",
    "BYTE_PER_SECOND",
    "Seconds",
    "Joules",
    "Watts",
    "Bytes",
    "BytesPerSecond",
    "milliseconds",
    "microseconds",
    "megabits_per_second",
    "megabytes_per_second",
    "energy_of",
    "transfer_seconds",
    "ABS_TOLERANCE",
    "REL_TOLERANCE",
    "approx_eq",
    "is_zero",
]
