"""FlexFetch (ICPP 2007) reproduction.

A trace-driven simulation study of history-aware I/O data-source
selection for mobile energy saving: should a request be serviced from
the local laptop disk or from a remote replica over the wireless NIC?

Public API tour
---------------
Workloads::

    from repro.traces.synth import generate_mplayer
    trace = generate_mplayer(seed=7)

Policies and replay::

    from repro import (DiskOnlyPolicy, WnicOnlyPolicy, BlueFSPolicy,
                       FlexFetchPolicy, ProgramSpec, SimulationSession,
                       profile_from_trace)
    profile = profile_from_trace(trace)          # the recorded history
    result = SimulationSession([ProgramSpec(trace)],
                               FlexFetchPolicy(profile)).run()
    print(result.total_energy, result.end_time)

Paper evaluation::

    from repro.experiments import figure2, render_figure
    print(render_figure(figure2()))

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core.bluefs import BlueFSConfig, BlueFSPolicy
from repro.core.decision import DataSource, decide
from repro.core.flexfetch import FlexFetchConfig, FlexFetchPolicy
from repro.core.policies import DiskOnlyPolicy, Policy, WnicOnlyPolicy
from repro.core.profile import ExecutionProfile, profile_from_trace
from repro.core.session import SimulationSession
from repro.core.simulator import (
    MobileSystem,
    ProgramSpec,
    ReplaySimulator,
    RunResult,
)
from repro.core.telemetry import MetricsSink, NullSink, RecordingSink
from repro.devices.specs import AIRONET_350, HITACHI_DK23DA, DiskSpec, WnicSpec
from repro.traces.trace import Trace
from repro import units
from repro.units import (
    Bytes,
    BytesPerSecond,
    Joules,
    Seconds,
    Watts,
    approx_eq,
)

__version__ = "1.0.0"

__all__ = [
    "BlueFSConfig",
    "BlueFSPolicy",
    "DataSource",
    "decide",
    "FlexFetchConfig",
    "FlexFetchPolicy",
    "DiskOnlyPolicy",
    "Policy",
    "WnicOnlyPolicy",
    "ExecutionProfile",
    "profile_from_trace",
    "MetricsSink",
    "MobileSystem",
    "NullSink",
    "ProgramSpec",
    "RecordingSink",
    "ReplaySimulator",
    "RunResult",
    "SimulationSession",
    "AIRONET_350",
    "HITACHI_DK23DA",
    "DiskSpec",
    "WnicSpec",
    "Trace",
    "units",
    "Seconds",
    "Joules",
    "Watts",
    "Bytes",
    "BytesPerSecond",
    "approx_eq",
    "__version__",
]
