"""Device parameter records.

The constants here are the paper's Tables 1 and 2 plus the performance
figures quoted in §3.1 (disk geometry/bandwidth, WNIC rates and DPM
timeouts).  Everything downstream — the replay simulator, FlexFetch's
online estimators, and the BlueFS cost model — reads parameters from these
frozen dataclasses, so an experiment can swap in a different disk or NIC
by constructing a new spec.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.clock import GB, MBps, Mbps
from repro.units import Bytes, BytesPerSecond, Joules, Seconds, Watts


@dataclass(frozen=True, slots=True)
class DiskSpec:
    """Hard-disk parameters (paper Table 1 + §3.1 geometry).

    Attributes
    ----------
    active_power / idle_power / standby_power:
        Watts drawn while transferring / spinning idle / spun down.
    spinup_energy, spinup_time:
        Cost to go standby -> active.
    spindown_energy, spindown_time:
        Cost to go idle -> standby.
    avg_seek_time, avg_rotation_time:
        Mean head-positioning components; their sum is the paper's
        "disk access time" and is also FlexFetch's I/O-burst threshold.
    track_to_track_time:
        Short-seek cost for hops within a cylinder group; this is what
        makes a near-sequential scan over many small files (grep over a
        freshly laid-out tree, §3.3.1) cheap on the disk.
    bandwidth_bps:
        Peak media transfer rate in bytes/second.
    spindown_timeout:
        Idle seconds before the DPM policy spins the disk down
        (Linux laptop-mode default, §3.1).
    capacity_bytes:
        Total addressable capacity; bounds the disk layout.
    """

    name: str
    active_power: Watts
    idle_power: Watts
    standby_power: Watts
    spinup_energy: Joules
    spinup_time: Seconds
    spindown_energy: Joules
    spindown_time: Seconds
    avg_seek_time: Seconds
    avg_rotation_time: Seconds
    track_to_track_time: Seconds
    bandwidth_bps: BytesPerSecond
    spindown_timeout: Seconds
    capacity_bytes: Bytes
    #: optional fourth state (§1.1): all remaining electronics off; a
    #: hard reset is needed to reactivate.  ``sleep_timeout`` is the
    #: standby dwell before dropping to sleep (None = never, as in the
    #: paper's experiments).
    sleep_power: Watts = 0.02
    sleep_timeout: float | None = None
    wake_time: Seconds = 3.2
    wake_energy: Joules = 7.5

    def __post_init__(self) -> None:
        for field_name in ("active_power", "idle_power", "standby_power",
                           "spinup_energy", "spinup_time", "spindown_energy",
                           "spindown_time", "avg_seek_time",
                           "avg_rotation_time", "track_to_track_time",
                           "sleep_power", "wake_time", "wake_energy"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} cannot be negative")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.spindown_timeout <= 0:
            raise ValueError("spin-down timeout must be positive")
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if self.sleep_timeout is not None and self.sleep_timeout <= 0:
            raise ValueError("sleep timeout must be positive or None")

    @property
    def access_time(self) -> Seconds:
        """Average time to the first byte of a random request (seek+rot)."""
        return self.avg_seek_time + self.avg_rotation_time

    @property
    def breakeven_time(self) -> Seconds:
        """Minimum quiet period for a spin-down to pay off (§1.1).

        Solves ``standby_power * t + spindown_energy + spinup_energy
        = idle_power * t`` for ``t``: shorter quiet periods than this make
        spinning down a net energy loss.
        """
        saved_per_second = self.idle_power - self.standby_power
        if saved_per_second <= 0:
            return float("inf")
        cost = self.spindown_energy + self.spinup_energy
        return cost / saved_per_second

    def with_timeout(self, timeout: Seconds) -> DiskSpec:
        """Copy of this spec with a different spin-down timeout."""
        return replace(self, spindown_timeout=timeout)

    def with_sleep(self, timeout: float | None) -> DiskSpec:
        """Copy with the sleep state enabled after ``timeout`` seconds
        of standby (None disables it)."""
        return replace(self, sleep_timeout=timeout)


@dataclass(frozen=True, slots=True)
class WnicSpec:
    """Wireless NIC parameters (paper Table 2 + §3.1).

    Power figures are per (mode, activity); ``cam_timeout`` is the idle
    period after which the adaptive DPM drops from CAM to PSM (800 ms for
    the Aironet 350).  ``bandwidth_bps`` and ``latency`` describe the
    *link to the remote storage server*, the access bottleneck per §2.1;
    experiments sweep both.
    """

    name: str
    psm_idle_power: Watts
    psm_recv_power: Watts
    psm_send_power: Watts
    cam_idle_power: Watts
    cam_recv_power: Watts
    cam_send_power: Watts
    cam_to_psm_time: Seconds
    cam_to_psm_energy: Joules
    psm_to_cam_time: Seconds
    psm_to_cam_energy: Joules
    cam_timeout: Seconds
    bandwidth_bps: BytesPerSecond
    latency: float
    #: §1.1: "Data transmission can be carried out in both CAM and PSM,
    #: but with different latencies and bandwidths."  When enabled,
    #: requests of at most ``psm_transfer_max_bytes`` are serviced
    #: without leaving PSM, at ``psm_bandwidth_factor`` of the link rate
    #: and with up to one ``beacon_interval`` of extra latency (the card
    #: only talks to the AP at beacon wake-ups).  Off by default — the
    #: paper's experiments use the CAM-transfer model.
    psm_transfer_enabled: bool = False
    psm_transfer_max_bytes: Bytes = 16 * 1024
    psm_bandwidth_factor: float = 0.5
    beacon_interval: float = 0.1

    def __post_init__(self) -> None:
        for field_name in ("psm_idle_power", "psm_recv_power",
                           "psm_send_power", "cam_idle_power",
                           "cam_recv_power", "cam_send_power",
                           "cam_to_psm_time", "cam_to_psm_energy",
                           "psm_to_cam_time", "psm_to_cam_energy",
                           "latency"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} cannot be negative")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.cam_timeout <= 0:
            raise ValueError("CAM timeout must be positive")
        if not 0.0 < self.psm_bandwidth_factor <= 1.0:
            raise ValueError("psm_bandwidth_factor must be in (0, 1]")
        if self.psm_transfer_max_bytes < 0:
            raise ValueError("psm_transfer_max_bytes cannot be negative")
        if self.beacon_interval <= 0:
            raise ValueError("beacon interval must be positive")

    def with_psm_transfers(self, enabled: bool = True) -> WnicSpec:
        """Copy with PSM-mode data transfers toggled."""
        return replace(self, psm_transfer_enabled=enabled)

    def with_link(self, *, bandwidth_bps: float | None = None,
                  latency: float | None = None) -> WnicSpec:
        """Copy with a different link bandwidth and/or latency.

        This is the knob the paper's figures sweep: latency 0-20 ms at
        11 Mbps, and the four 802.11b rates at 1 ms.
        """
        kwargs: dict[str, float] = {}
        if bandwidth_bps is not None:
            kwargs["bandwidth_bps"] = bandwidth_bps
        if latency is not None:
            kwargs["latency"] = latency
        return replace(self, **kwargs)


#: Paper Table 1 / §3.1 — the simulated laptop disk.
HITACHI_DK23DA = DiskSpec(
    name="Hitachi DK23DA",
    active_power=2.0,
    idle_power=1.6,
    standby_power=0.15,
    spinup_energy=5.0,
    spinup_time=1.6,
    spindown_energy=2.94,
    spindown_time=2.3,
    avg_seek_time=13e-3,
    avg_rotation_time=7e-3,
    track_to_track_time=1.5e-3,
    bandwidth_bps=MBps(35.0),
    spindown_timeout=20.0,
    capacity_bytes=30 * GB,
)

#: Paper Table 2 / §3.1 — the simulated 802.11b card.
AIRONET_350 = WnicSpec(
    name="Cisco Aironet 350",
    psm_idle_power=0.39,
    psm_recv_power=1.42,
    psm_send_power=2.48,
    cam_idle_power=1.41,
    cam_recv_power=2.61,
    cam_send_power=3.69,
    cam_to_psm_time=0.41,
    cam_to_psm_energy=0.53,
    psm_to_cam_time=0.40,
    psm_to_cam_energy=0.51,
    cam_timeout=0.8,
    bandwidth_bps=Mbps(11.0),
    latency=1e-3,
)

#: The four 802.11b PHY rates (§3.3), in bytes/second, ascending.
WNIC_RATES_BPS: tuple[float, ...] = (
    Mbps(1.0), Mbps(2.0), Mbps(5.5), Mbps(11.0))
