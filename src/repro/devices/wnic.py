"""Wireless NIC model (802.11b, Cisco Aironet 350 parameters).

Implements the adaptive dynamic power management described in §3.1:

* two modes — **CAM** (continuously aware, radio always on) and **PSM**
  (power saving, radio mostly off with periodic access-point check-ins);
* CAM -> PSM after 800 ms of idleness (0.41 s / 0.53 J);
* PSM -> CAM when traffic is pending (0.40 s / 0.51 J) — the model
  performs all bulk transfers in CAM, matching the card's behaviour of
  waking up "if more than one packet is ready on the access point";
* a transfer costs ``latency + size/bandwidth`` with direction-dependent
  power (recv for reads from the remote server, send for writes).

The *link* bandwidth and latency live on the spec and are what the
paper's figures sweep; the mode machinery is independent of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

from repro.devices.power import PowerStateMachine, StateSpec, TransitionSpec
from repro.devices.specs import AIRONET_350, WnicSpec
from repro.sim.clock import seconds_to_transfer
from repro.units import Bytes, Joules, Seconds, approx_eq

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.schedule import FaultSchedule


class WnicMode(str, Enum):
    """WNIC power modes."""

    CAM = "cam"
    PSM = "psm"


class Direction(str, Enum):
    """Transfer direction relative to the mobile host."""

    RECV = "recv"   # read from remote storage
    SEND = "send"   # write back to remote storage


# Plain-string aliases and per-direction meter buckets for the hot
# paths: enum ``.value`` access is a descriptor call apiece, and the
# f-string bucket labels allocated per transfer at request rates.
_CAM = WnicMode.CAM.value
_PSM = WnicMode.PSM.value
_DIR_BUCKET = {Direction.RECV: "wnic.recv", Direction.SEND: "wnic.send"}
_PSM_DIR_BUCKET = {Direction.RECV: "wnic.psm-recv",
                   Direction.SEND: "wnic.psm-send"}


@dataclass(frozen=True, slots=True)
class WnicServiceResult:
    """Outcome of one network request (see :class:`DiskServiceResult`).

    ``failed`` marks a fault-injected attempt that timed out waiting for
    the link: no bytes moved, ``energy`` is the wasted wait/abort cost,
    and the caller owns retry or failover.
    """

    arrival: float
    start: float
    first_byte: float
    completion: float
    energy: Joules
    woke_up: bool
    failed: bool = False


class WirelessNic(PowerStateMachine):
    """Adaptive-DPM 802.11b NIC.

    Parameters
    ----------
    spec:
        NIC parameters; defaults to the paper's Aironet 350 at 11 Mbps
        with 1 ms link latency.  Use :meth:`WnicSpec.with_link` to sweep.
    initially_psm:
        Whether the card starts in power-saving mode (the experiments do).
    """

    def __init__(self, spec: WnicSpec = AIRONET_350,
                 start_time: Seconds = 0.0, *,
                 initially_psm: bool = True) -> None:
        self.spec = spec
        initial = WnicMode.PSM if initially_psm else WnicMode.CAM
        super().__init__(
            name="wnic",
            states=[
                StateSpec(WnicMode.CAM.value, spec.cam_idle_power),
                StateSpec(WnicMode.PSM.value, spec.psm_idle_power),
            ],
            transitions=[
                TransitionSpec(WnicMode.CAM.value, WnicMode.PSM.value,
                               spec.cam_to_psm_time, spec.cam_to_psm_energy),
                TransitionSpec(WnicMode.PSM.value, WnicMode.CAM.value,
                               spec.psm_to_cam_time, spec.psm_to_cam_energy),
            ],
            initial_state=initial.value,
            start_time=start_time,
        )
        self.wakeup_count = 0
        self.doze_count = 0
        #: injected-fault timeline (None = the paper's perfect link).
        self._faults: FaultSchedule | None = None
        #: failed attempts and aborted transfers (diagnostics).
        self.outage_timeout_count = 0
        self.aborted_transfer_count = 0

    def set_fault_schedule(self, faults: FaultSchedule | None) -> None:
        """Attach an injected-fault timeline to this card."""
        self._faults = faults

    def clone(self) -> WirelessNic:
        new = super().clone()
        # What-if clones (FlexFetch's §2.2 online simulators) are blind
        # to the fault schedule: estimation must neither consume fault
        # state nor foresee outages.
        new._faults = None
        return new

    # ------------------------------------------------------------------
    # DPM policy
    # ------------------------------------------------------------------
    def _apply_dpm(self, time: float) -> None:
        """Drop to PSM if CAM-idle past the 800 ms timeout."""
        if self._state != _CAM:
            return
        deadline = max(self._last_activity, self._busy_until) \
            + self.spec.cam_timeout
        if time >= deadline:
            self.meter.advance(deadline)
            self.transition(deadline, _PSM, bucket="wnic.doze")
            self.doze_count += 1

    # ------------------------------------------------------------------
    # request service
    # ------------------------------------------------------------------
    def _psm_eligible(self, size_bytes: Bytes) -> bool:
        """Whether a request can be serviced without leaving PSM."""
        return (self.spec.psm_transfer_enabled
                and size_bytes <= self.spec.psm_transfer_max_bytes
                and self.state == WnicMode.PSM.value)

    def _service_in_psm(self, time: float, size_bytes: Bytes,
                        direction: Direction,
                        e_pre: float) -> WnicServiceResult:
        """Small-transfer fast path: stay in PSM (§1.1 characteristic 1).

        The card exchanges data at its beacon wake-ups: first byte waits
        for the next beacon (up to one ``beacon_interval``) plus the
        link latency, and throughput is derated by
        ``psm_bandwidth_factor``.
        """
        spec = self.spec
        meter = self.meter
        start = max(time, self._busy_until)
        beacon_wait = spec.beacon_interval \
            - (start % spec.beacon_interval)
        first_byte = start + beacon_wait + spec.latency
        bandwidth = spec.bandwidth_bps * spec.psm_bandwidth_factor
        completion = first_byte + seconds_to_transfer(size_bytes, bandwidth)
        busy_power = (spec.psm_recv_power
                      if direction is Direction.RECV
                      else spec.psm_send_power)
        meter.advance(first_byte)
        meter.set_power(first_byte, busy_power,
                        _PSM_DIR_BUCKET[direction])
        meter.advance(completion)
        self.set_state_power(completion)
        self.note_activity(completion)
        self.mark_busy_until(completion)
        return WnicServiceResult(
            arrival=time, start=start, first_byte=first_byte,
            completion=completion,
            energy=sum(meter._energy.values()) - e_pre,
            woke_up=False)

    def service(self, time: float, size_bytes: Bytes, *,
                direction: Direction = Direction.RECV) -> WnicServiceResult:
        """Transfer ``size_bytes`` over the link, arriving at ``time``.

        With a fault schedule attached, the transfer is subject to link
        outages (the card waits up to ``network_timeout`` for the AP,
        then reports a failed attempt) and 802.11b rate fallback.
        """
        if size_bytes < 0:
            raise ValueError("negative request size")
        self.advance_to(time)
        meter = self.meter
        busy = self._busy_until
        start = time if time >= busy else busy
        meter.advance(start)
        # sum(energy.values()) inlines meter.total(): with no `upto` the
        # tail term is zero and the sums are bit-identical.
        e_pre = sum(meter._energy.values())

        if self._faults is not None and self._faults.affects_network:
            return self._service_with_faults(time, start, size_bytes,
                                             direction, e_pre)

        spec = self.spec
        if (spec.psm_transfer_enabled
                and size_bytes <= spec.psm_transfer_max_bytes
                and self._state == _PSM):
            return self._service_in_psm(time, size_bytes, direction, e_pre)

        woke = False
        if self._state == _PSM:
            start = self.transition(start, _CAM, bucket="wnic.wakeup")
            self.wakeup_count += 1
            woke = True

        first_byte = start + spec.latency
        # size >= 0 and the spec validates bandwidth > 0, so the plain
        # division is exactly seconds_to_transfer without the calls.
        completion = first_byte + size_bytes / spec.bandwidth_bps
        busy_power = (spec.cam_recv_power
                      if direction is Direction.RECV
                      else spec.cam_send_power)
        # Latency portion is spent waiting in CAM idle; transfer at the
        # direction-dependent power.
        meter.set_power(start, spec.cam_idle_power, "wnic.cam")
        meter.advance(first_byte)
        meter.set_power(first_byte, busy_power, _DIR_BUCKET[direction])
        meter.advance(completion)
        self.set_state_power(completion)
        self.note_activity(completion)
        self.mark_busy_until(completion)
        e1 = sum(meter._energy.values())
        return WnicServiceResult(
            arrival=time, start=start, first_byte=first_byte,
            completion=completion, energy=e1 - e_pre, woke_up=woke)

    # ------------------------------------------------------------------
    # fault-injected service
    # ------------------------------------------------------------------
    def _fail_after_timeout(self, arrival: float, t: float, woke: bool,
                            e_pre: float) -> WnicServiceResult:
        """The link is down and will not return within the deadline: the
        radio scans in CAM for ``network_timeout`` seconds, burns the
        idle draw, and gives up."""
        assert self._faults is not None
        deadline = t + self._faults.spec.network_timeout
        self.meter.set_power(t, self.spec.cam_idle_power, "wnic.outage")
        self.meter.advance(deadline)
        self.set_state_power(deadline)
        self.note_activity(deadline)
        self.mark_busy_until(deadline)
        self.outage_timeout_count += 1
        return WnicServiceResult(
            arrival=arrival, start=t, first_byte=deadline,
            completion=deadline, energy=self.meter.total() - e_pre,
            woke_up=woke, failed=True)

    def _service_with_faults(self, time: float, start: float,
                             size_bytes: Bytes, direction: Direction,
                             e_pre: float) -> WnicServiceResult:
        """CAM-path transfer under link outages and rate fallback."""
        faults = self._faults
        assert faults is not None

        if self._psm_eligible(size_bytes):
            # Take the PSM fast path only when no fault can touch the
            # conservative worst-case transfer window.
            bandwidth = self.spec.bandwidth_bps \
                * self.spec.psm_bandwidth_factor
            worst = start + self.spec.beacon_interval + self.spec.latency \
                + seconds_to_transfer(size_bytes, bandwidth)
            effective_bps = faults.network_bandwidth(
                start, self.spec.bandwidth_bps)
            if (faults.link_available(start)
                    and faults.outage_start_within(start, worst) is None
                    and approx_eq(effective_bps,
                                  self.spec.bandwidth_bps)):
                return self._service_in_psm(time, size_bytes, direction,
                                            e_pre)

        woke = False
        if self.state == WnicMode.PSM.value:
            start = self.transition(start, WnicMode.CAM.value,
                                    bucket="wnic.wakeup")
            self.wakeup_count += 1
            woke = True

        if not faults.link_available(start):
            resume = faults.outage_end(start)
            if resume - start > self._faults.spec.network_timeout:
                return self._fail_after_timeout(time, start, woke, e_pre)
            # The link returns inside the deadline: wait it out in CAM
            # (the radio keeps scanning for the access point).
            self.meter.set_power(start, self.spec.cam_idle_power,
                                 "wnic.outage")
            self.meter.advance(resume)
            start = resume

        first_byte = start + self.spec.latency
        bandwidth = faults.network_bandwidth(first_byte,
                                             self.spec.bandwidth_bps)
        transfer = seconds_to_transfer(size_bytes, bandwidth)
        completion = first_byte + transfer
        busy_power = (self.spec.cam_recv_power
                      if direction is Direction.RECV
                      else self.spec.cam_send_power)

        cut = faults.outage_start_within(start, completion)
        if cut is not None:
            # The link drops mid-request: bytes moved so far are lost,
            # the card burns its wait deadline, and the attempt fails.
            self.meter.set_power(start, self.spec.cam_idle_power,
                                 "wnic.cam")
            if cut > first_byte:
                self.meter.advance(first_byte)
                self.meter.set_power(first_byte, busy_power,
                                     f"wnic.{direction.value}-aborted")
            self.meter.advance(cut)
            self.aborted_transfer_count += 1
            return self._fail_after_timeout(time, cut, woke, e_pre)

        self.meter.set_power(start, self.spec.cam_idle_power, "wnic.cam")
        self.meter.advance(first_byte)
        self.meter.set_power(first_byte, busy_power,
                             f"wnic.{direction.value}")
        self.meter.advance(completion)
        self.set_state_power(completion)
        self.note_activity(completion)
        self.mark_busy_until(completion)
        return WnicServiceResult(
            arrival=time, start=start, first_byte=first_byte,
            completion=completion, energy=self.meter.total() - e_pre,
            woke_up=woke)

    # ------------------------------------------------------------------
    # what-if estimation helpers
    # ------------------------------------------------------------------
    def estimate_service(self, size_bytes: Bytes, *,
                         direction: Direction = Direction.RECV,
                         from_state: str | None = None) -> tuple[float, float]:
        """Pure estimate ``(time, energy)`` of a transfer; no mutation."""
        state = from_state or self._state
        spec = self.spec
        if (spec.psm_transfer_enabled
                and size_bytes <= spec.psm_transfer_max_bytes
                and state == _PSM):
            # PSM fast path: expected half-beacon wait + derated rate.
            bandwidth = spec.bandwidth_bps * spec.psm_bandwidth_factor
            transfer = seconds_to_transfer(size_bytes, bandwidth)
            busy_power = (spec.psm_recv_power
                          if direction is Direction.RECV
                          else spec.psm_send_power)
            t = spec.beacon_interval / 2 + spec.latency + transfer
            e = (spec.beacon_interval / 2 + spec.latency) \
                * spec.psm_idle_power + transfer * busy_power
            return t, e
        t = 0.0
        e = 0.0
        if state == _PSM:
            t += spec.psm_to_cam_time
            e += spec.psm_to_cam_energy
        transfer = seconds_to_transfer(size_bytes, spec.bandwidth_bps)
        busy_power = (spec.cam_recv_power
                      if direction is Direction.RECV
                      else spec.cam_send_power)
        t += spec.latency + transfer
        e += spec.latency * spec.cam_idle_power
        e += transfer * busy_power
        return t, e
