"""Spin-down timeout policies for the disk's dynamic power management.

The paper's experiments use a fixed 20 s timeout (the Linux laptop-mode
default).  Its related-work section cites the two classic alternatives
— a fixed threshold (Douglis/Krishnan/Marsh, USENIX '94) and a
dynamically adapted one (Helmbold/Long/Sherrod, MobiCom '96) — so both
are provided here as pluggable policies, and the adaptive one doubles
as an ablation axis for how sensitive FlexFetch's wins are to the DPM
underneath it.

A policy answers one question — *how long may the disk idle before
spinning down?* — and receives feedback after each spin-cycle: how long
the quiet period actually was versus the break-even time, i.e. whether
the spin-down paid off.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from repro.units import Seconds


class SpindownPolicy(ABC):
    """Idle-timeout policy for timeout-driven disk DPM."""

    @abstractmethod
    def timeout(self) -> Seconds:
        """Current idle threshold in seconds (> 0)."""

    def observe_quiet_period(self, quiet: float, breakeven: float) -> None:
        """Feedback after a spin-up: the spin-down that preceded it left
        the disk quiet for ``quiet`` seconds against a ``breakeven``
        requirement.  Fixed policies ignore this."""

    def clone(self) -> SpindownPolicy:
        """Copy for what-if simulation (stateful policies must not share
        mutable state with their clones)."""
        return self


class FixedTimeout(SpindownPolicy):
    """The paper's policy: a constant threshold (default 20 s)."""

    def __init__(self, seconds: float = 20.0) -> None:
        if seconds <= 0:
            raise ValueError("timeout must be positive")
        self._seconds = float(seconds)

    def timeout(self) -> Seconds:
        return self._seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FixedTimeout({self._seconds}s)"


class AdaptiveTimeout(SpindownPolicy):
    """Multiplicative-adjustment timeout (Helmbold et al. style).

    After a *premature* spin-down (quiet period shorter than the
    break-even time, so the cycle wasted energy) the threshold grows by
    ``grow``; after a clearly profitable one (quiet period at least
    ``profit_margin`` times break-even) it shrinks by ``shrink``.  The
    threshold stays inside ``[floor, ceiling]``.
    """

    def __init__(self, initial: float = 20.0, *, floor: float = 2.0,
                 ceiling: float = 120.0, grow: float = 2.0,
                 shrink: float = 0.5, profit_margin: float = 4.0) -> None:
        if not 0 < floor <= initial <= ceiling:
            raise ValueError("need 0 < floor <= initial <= ceiling")
        if grow <= 1.0 or not 0.0 < shrink < 1.0:
            raise ValueError("need grow > 1 and 0 < shrink < 1")
        if profit_margin < 1.0:
            raise ValueError("profit margin must be >= 1")
        self._timeout = float(initial)
        self.floor = float(floor)
        self.ceiling = float(ceiling)
        self.grow = float(grow)
        self.shrink = float(shrink)
        self.profit_margin = float(profit_margin)
        self.premature_count = 0
        self.profitable_count = 0

    def timeout(self) -> Seconds:
        return self._timeout

    def observe_quiet_period(self, quiet: float, breakeven: float) -> None:
        if quiet < breakeven:
            self.premature_count += 1
            self._timeout = min(self.ceiling, self._timeout * self.grow)
        elif quiet >= breakeven * self.profit_margin:
            self.profitable_count += 1
            self._timeout = max(self.floor, self._timeout * self.shrink)

    def clone(self) -> AdaptiveTimeout:
        new = AdaptiveTimeout(
            initial=min(max(self._timeout, self.floor), self.ceiling),
            floor=self.floor, ceiling=self.ceiling, grow=self.grow,
            shrink=self.shrink, profit_margin=self.profit_margin)
        new.premature_count = self.premature_count
        new.profitable_count = self.profitable_count
        return new

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AdaptiveTimeout({self._timeout:.1f}s"
                f" [{self.floor}, {self.ceiling}])")
