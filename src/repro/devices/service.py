"""Device service layer: a uniform front door to the storage devices.

The routing layer above speaks one verb — *transfer this many bytes of
this file now* — and each :class:`DeviceService` translates it into its
device's vocabulary: the disk service maps the file offset to a disk
block through the :class:`~repro.devices.layout.DiskLayout` (so seek
distance is real), the WNIC service picks the radio direction.  The
devices themselves own all spin-up/PSM accounting and the injected
fault paths; the services add no arithmetic of their own.

Keeping the protocol at the byte/offset level (no kernel types) is what
lets this module sit at the bottom of the layer order: ``devices`` never
imports ``kernel`` or ``core``.
"""

from __future__ import annotations

from typing import Protocol

from repro.devices.disk import DiskServiceResult, HardDisk
from repro.devices.layout import DiskLayout
from repro.devices.wnic import Direction, WirelessNic, WnicServiceResult
from repro.units import Bytes, Seconds

#: what a device hands back for one serviced request.
ServiceOutcome = DiskServiceResult | WnicServiceResult


class DeviceService(Protocol):
    """One storage backend the router can move an extent on."""

    def transfer(self, when: Seconds, nbytes: Bytes, *, inode: int,
                 offset: int, npages: int,
                 direction: Direction) -> ServiceOutcome:
        """Move ``nbytes`` of ``inode`` starting at byte ``offset``.

        ``npages`` is the extent's page count (the disk's block count);
        ``direction`` is the radio direction for network backends (disk
        backends ignore it).  Returns the device's service record, whose
        ``completion``/``energy``/``failed`` fields the router consumes.
        """
        ...


class DiskService:
    """The local hard disk behind the :class:`DeviceService` protocol."""

    def __init__(self, disk: HardDisk, layout: DiskLayout) -> None:
        self.disk = disk
        self.layout = layout

    def transfer(self, when: Seconds, nbytes: Bytes, *, inode: int,
                 offset: int, npages: int,
                 direction: Direction) -> DiskServiceResult:
        block = self.layout.block_of(inode, offset)
        return self.disk.service(when, nbytes, block=block,
                                 block_count=npages)


class WnicService:
    """The wireless NIC behind the :class:`DeviceService` protocol."""

    def __init__(self, wnic: WirelessNic) -> None:
        self.wnic = wnic

    def transfer(self, when: Seconds, nbytes: Bytes, *, inode: int,
                 offset: int, npages: int,
                 direction: Direction) -> WnicServiceResult:
        return self.wnic.service(when, nbytes, direction=direction)
