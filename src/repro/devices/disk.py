"""Hard-disk model.

Implements the four-state laptop disk of §1.1 with the paper's
Hitachi DK23DA parameters (Table 1):

* states **active** (transferring, 2.0 W), **idle** (spinning, 1.6 W),
  **standby** (spun down, 0.15 W), and — optionally, the paper's
  experiments never enter it — **sleep** (electronics off, hard reset
  to wake), enabled by setting ``sleep_timeout`` on the spec;
* timeout-driven spin-down after 20 s of inactivity (Linux laptop-mode
  default), costing 2.94 J over 2.3 s;
* demand spin-up on a request arriving in standby, costing 5.0 J over
  1.6 s — this is why a spun-down disk takes "about one second or more"
  to deliver the first byte (§1.1);
* request service = head positioning (average seek + rotation, skipped
  for transfers sequential with the previous one) + transfer at peak
  bandwidth.

The model is shared by the *real* replay simulator and by FlexFetch's
online what-if estimators (via :meth:`~PowerStateMachine.clone`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

from repro.devices.dpm import FixedTimeout, SpindownPolicy
from repro.devices.power import PowerStateMachine, StateSpec, TransitionSpec
from repro.devices.specs import HITACHI_DK23DA, DiskSpec
from repro.sim.clock import seconds_to_transfer
from repro.units import Bytes, Joules, Seconds, Watts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.schedule import FaultSchedule


class DiskState(str, Enum):
    """Disk power states (paper §1.1)."""

    ACTIVE = "active"
    IDLE = "idle"
    STANDBY = "standby"
    SLEEP = "sleep"


# Plain-string aliases for the hot paths: enum member + ``.value``
# access is a descriptor call apiece, measurable at request rates.
_ACTIVE = DiskState.ACTIVE.value
_IDLE = DiskState.IDLE.value
_STANDBY = DiskState.STANDBY.value
_SLEEP = DiskState.SLEEP.value


@dataclass(frozen=True, slots=True)
class DiskServiceResult:
    """Outcome of one disk request.

    ``energy`` is the marginal joules attributable to this request —
    positioning + transfer + any demand spin-up — *excluding* idle energy
    accrued before arrival (that belongs to the inter-request gap).
    """

    arrival: float
    start: float
    first_byte: float
    completion: float
    energy: Joules
    spun_up: bool
    waited_for_spindown: bool
    #: fault injection: the spin-up retry budget was exhausted; no bytes
    #: moved, ``energy`` is the wasted attempts, the caller owns failover.
    failed: bool = False


class HardDisk(PowerStateMachine):
    """Timeout-DPM laptop hard disk.

    Parameters
    ----------
    spec:
        Disk parameters; defaults to the paper's Hitachi DK23DA.
    start_time:
        Simulation time at construction.
    initially_standby:
        Whether the disk starts spun down (the experiments start with a
        cold disk, which is what gives WNIC its §3.3 edge on the first
        small requests).
    spindown_policy:
        Idle-timeout policy; defaults to the paper's fixed threshold
        (``spec.spindown_timeout``).  Pass an
        :class:`~repro.devices.dpm.AdaptiveTimeout` to study FlexFetch
        over an adapting DPM.
    """

    def __init__(self, spec: DiskSpec = HITACHI_DK23DA,
                 start_time: Seconds = 0.0, *,
                 initially_standby: bool = True,
                 spindown_policy: SpindownPolicy | None = None) -> None:
        self.spec = spec
        initial = DiskState.STANDBY if initially_standby else DiskState.IDLE
        super().__init__(
            name="disk",
            states=[
                StateSpec(DiskState.ACTIVE.value, spec.active_power),
                StateSpec(DiskState.IDLE.value, spec.idle_power),
                StateSpec(DiskState.STANDBY.value, spec.standby_power),
                StateSpec(DiskState.SLEEP.value, spec.sleep_power),
            ],
            transitions=[
                TransitionSpec(DiskState.IDLE.value, DiskState.STANDBY.value,
                               spec.spindown_time, spec.spindown_energy),
                TransitionSpec(DiskState.STANDBY.value,
                               DiskState.ACTIVE.value,
                               spec.spinup_time, spec.spinup_energy),
                TransitionSpec(DiskState.ACTIVE.value, DiskState.IDLE.value,
                               0.0, 0.0),
                TransitionSpec(DiskState.IDLE.value, DiskState.ACTIVE.value,
                               0.0, 0.0),
                TransitionSpec(DiskState.STANDBY.value,
                               DiskState.SLEEP.value, 0.0, 0.0),
                TransitionSpec(DiskState.SLEEP.value,
                               DiskState.ACTIVE.value,
                               spec.wake_time, spec.wake_energy),
            ],
            initial_state=initial.value,
            start_time=start_time,
        )
        self._spindown_policy = spindown_policy \
            or FixedTimeout(spec.spindown_timeout)
        #: ending block address of the last transfer, for sequentiality.
        self._head_position: int | None = None
        #: count of demand spin-ups / timeout spin-downs (diagnostics).
        self.spinup_count = 0
        self.spindown_count = 0
        self.sleep_count = 0
        #: completion time of the last spin-down (quiet-period feedback).
        self._quiet_since: float | None = None
        #: injected-fault timeline (None = spin-ups always succeed).
        self._faults: FaultSchedule | None = None
        #: failed spin-up attempts (diagnostics + energy-bound audits).
        self.spinup_failure_count = 0

    def set_fault_schedule(self, faults: FaultSchedule | None) -> None:
        """Attach an injected-fault timeline to this disk."""
        self._faults = faults

    def clone(self) -> HardDisk:
        new = super().clone()
        # Stateful DPM policies must not share mutable state with
        # what-if clones.
        new._spindown_policy = self._spindown_policy.clone()
        # What-if clones are blind to the fault schedule: estimation
        # must neither consume fault state nor foresee failures.
        new._faults = None
        return new

    @property
    def spindown_policy(self) -> SpindownPolicy:
        return self._spindown_policy

    # ------------------------------------------------------------------
    # DPM policy
    # ------------------------------------------------------------------
    def _apply_dpm(self, time: float) -> None:
        """Fire timeout transitions occurring within (last, time]:
        idle -> standby, and (when enabled) standby -> sleep."""
        if self._state == _IDLE:
            deadline = max(self._last_activity, self._busy_until) \
                + self._spindown_policy.timeout()
            if time >= deadline:
                self.meter.advance(deadline)
                done = self.transition(deadline, _STANDBY,
                                       bucket="disk.spindown")
                self.spindown_count += 1
                self._quiet_since = done
        if self._state == _STANDBY \
                and self.spec.sleep_timeout is not None:
            entered = max(self.busy_until, self.last_activity)
            deadline = entered + self.spec.sleep_timeout
            if time >= deadline:
                self.meter.advance(deadline)
                self.transition(deadline, _SLEEP, bucket="disk.to-sleep")
                self.sleep_count += 1

    def _note_quiet_period_end(self, spinup_time: Seconds) -> None:
        """Feed the quiet-period length back to the spin-down policy."""
        if self._quiet_since is not None:
            quiet = max(0.0, spinup_time - self._quiet_since)
            self._spindown_policy.observe_quiet_period(
                quiet, self.spec.breakeven_time)
            self._quiet_since = None

    def spindown_deadline(self) -> float | None:
        """Absolute time the DPM will spin down, or None if not idle."""
        if self.state != DiskState.IDLE.value:
            return None
        return max(self.last_activity, self.busy_until) \
            + self._spindown_policy.timeout()

    # ------------------------------------------------------------------
    # request service
    # ------------------------------------------------------------------
    #: hops of at most this many 4 KB blocks count as short seeks.
    NEAR_SEEK_BLOCKS = 64

    def positioning_time(self, block: int | None) -> Seconds:
        """Head-positioning cost to reach ``block`` from the current head.

        Distance-dependent, the standard concave seek model:

        * contiguous with the previous transfer -> free (the §2.1
          sequential-burst assumption);
        * within :data:`NEAR_SEEK_BLOCKS` -> track-to-track time only
          (streaming continues within the cylinder group, no rotational
          re-sync) — this is what lets a near-sequential scan over many
          small files finish "in a few seconds" (§3.3.1);
        * otherwise ``t2t + k*sqrt(d/D) + rotation`` with ``k`` chosen
          so a uniformly random hop averages the datasheet seek time
          (E[sqrt(U)] = 2/3).

        ``None`` (unknown location) charges the full average.
        """
        if block is None or self._head_position is None:
            return self.spec.access_time
        distance = abs(block - self._head_position)
        if distance == 0:
            return 0.0
        if distance <= self.NEAR_SEEK_BLOCKS:
            return self.spec.track_to_track_time
        total_blocks = max(1, self.spec.capacity_bytes // 4096)
        frac = min(1.0, distance / total_blocks)
        k = (self.spec.avg_seek_time - self.spec.track_to_track_time) * 1.5
        seek = self.spec.track_to_track_time + k * frac ** 0.5
        return seek + self.spec.avg_rotation_time

    def service(self, time: float, size_bytes: Bytes, *,
                block: int | None = None,
                block_count: int | None = None) -> DiskServiceResult:
        """Service a ``size_bytes`` request arriving at ``time``.

        ``block``/``block_count`` locate the transfer on the platter (in
        512-byte sectors or any consistent unit) purely for sequentiality
        accounting; they do not scale the transfer time, which is
        ``size_bytes / bandwidth``.
        """
        if size_bytes < 0:
            raise ValueError("negative request size")
        self.advance_to(time)
        meter = self.meter
        spec = self.spec
        # sum(energy.values()) inlines meter.total(): with no `upto` the
        # tail term is zero and the sums are bit-identical.
        e0 = sum(meter._energy.values())
        busy = self._busy_until
        waited = busy > time and self._state == _STANDBY
        start = time if time >= busy else busy
        meter.advance(start)
        e_pre = sum(meter._energy.values())

        spun_up = False
        state = self._state
        if state == _SLEEP:
            self._note_quiet_period_end(start)
            start = self.transition(start, _ACTIVE, bucket="disk.wake")
            self.spinup_count += 1
            spun_up = True
        elif state == _STANDBY:
            self._note_quiet_period_end(start)
            if self._faults is not None and self._faults.affects_disk:
                start, gave_up = self._attempt_spinup(start)
                if gave_up:
                    e1 = meter.total()
                    energy = e1 - e_pre if not waited else e1 - e0
                    return DiskServiceResult(
                        arrival=time, start=start, first_byte=start,
                        completion=start, energy=energy, spun_up=False,
                        waited_for_spindown=waited, failed=True)
            else:
                start = self.transition(start, _ACTIVE,
                                        bucket="disk.spinup")
                self.spinup_count += 1
            spun_up = True
        elif state == _IDLE:
            self.transition(start, _ACTIVE)

        position = self.positioning_time(block)
        first_byte = start + position
        # size >= 0 and the spec validates bandwidth > 0, so the plain
        # division is exactly seconds_to_transfer without the calls.
        completion = first_byte + size_bytes / spec.bandwidth_bps
        meter.set_power(start, spec.active_power, "disk.active")
        meter.advance(completion)
        # Request done: platters keep spinning (idle) until the DPM timer.
        self.transition(completion, _IDLE)
        self.note_activity(completion)
        self.mark_busy_until(completion)
        if block is not None:
            self._head_position = block + (block_count or 0)
        e1 = sum(meter._energy.values())
        # Idle-wait before start belongs to the gap, not the request.
        energy = e1 - e_pre if not waited else e1 - e0
        return DiskServiceResult(
            arrival=time, start=start, first_byte=first_byte,
            completion=completion, energy=energy, spun_up=spun_up,
            waited_for_spindown=waited)

    def _attempt_spinup(self, t: float) -> tuple[float, bool]:
        """Demand spin-up under an injected failure schedule.

        Bounded retry with exponential backoff: each failed attempt runs
        the motor for a full ``spinup_time`` window, burns the full
        ``spinup_energy``, and leaves the platters in standby; after
        ``spinup_retries`` retries the disk gives up and reports the
        failure.  Returns ``(time, gave_up)`` — on success ``time`` is
        when the disk reaches active, on give-up it is when the final
        attempt ended.
        """
        assert self._faults is not None
        spec = self._faults.spec
        attempts = 0
        while True:
            if not self._faults.next_spinup_fails():
                done = self.transition(t, DiskState.ACTIVE.value,
                                       bucket="disk.spinup")
                self.spinup_count += 1
                return done, False
            # The motor ran the whole spin-up window and never reached
            # speed: the datasheet energy is burned as an impulse, no
            # supplemental draw during the window (as for a successful
            # transition), and the state stays standby.
            self.meter.advance(t)
            self.meter.add_impulse(self.spec.spinup_energy,
                                   "disk.spinup-failed")
            self.meter.set_power(t, 0.0, "disk.spinup-failed")
            failed_at = t + self.spec.spinup_time
            self.meter.advance(failed_at)
            self.set_state_power(failed_at)
            self.note_activity(failed_at)
            self.mark_busy_until(failed_at)
            self.spinup_failure_count += 1
            attempts += 1
            if attempts > spec.spinup_retries:
                return failed_at, True
            t = failed_at + spec.spinup_backoff * (2 ** (attempts - 1))
            self.meter.advance(t)

    def force_spinup(self, time: float) -> float:
        """Spin the disk up without a transfer (BlueFS ghost hint).

        Returns the time the disk reaches the idle (spinning) state; a
        no-op if the disk is already spinning.
        """
        self.advance_to(time)
        if self.state not in (DiskState.STANDBY.value,
                              DiskState.SLEEP.value):
            return time
        # Clamp to the busy horizon exactly as service() does: a hint can
        # arrive timestamped before an in-flight transition (e.g. a failed
        # demand spin-up) has finished, and starting the transition inside
        # that window would let the timeline disagree with the (clamping)
        # energy meter.
        start = max(time, self.busy_until)
        self._note_quiet_period_end(start)
        bucket = ("disk.wake" if self.state == DiskState.SLEEP.value
                  else "disk.spinup")
        ready = self.transition(start, DiskState.ACTIVE.value,
                                bucket=bucket)
        self.spinup_count += 1
        self.transition(ready, DiskState.IDLE.value)
        self.note_activity(ready)
        return ready

    # ------------------------------------------------------------------
    # what-if estimation helpers (FlexFetch §2.2 / BlueFS cost model)
    # ------------------------------------------------------------------
    def estimate_service(self, size_bytes: Bytes, *,
                         sequential: bool = False,
                         from_state: str | None = None) -> tuple[float, float]:
        """Pure estimate ``(time, energy)`` of servicing a request.

        Does not mutate the machine.  ``from_state`` defaults to the
        current state; sequential requests skip the positioning charge.
        """
        state = from_state or self._state
        spec = self.spec
        t = 0.0
        e = 0.0
        if state == _SLEEP:
            t += spec.wake_time
            e += spec.wake_energy
        elif state == _STANDBY:
            t += spec.spinup_time
            e += spec.spinup_energy
        position = 0.0 if sequential else spec.access_time
        transfer = seconds_to_transfer(size_bytes, spec.bandwidth_bps)
        t += position + transfer
        e += (position + transfer) * spec.active_power
        return t, e

    def keep_alive_power(self) -> Watts:
        """Watts to hold the disk spinning but idle (opportunity cost)."""
        return self.spec.idle_power
