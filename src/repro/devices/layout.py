"""Disk layout: mapping traced files onto block addresses.

Per §3.2, "the blocks of the traced files are sequentially mapped to the
local hard disk with a small random distance between files to simulate a
real layout of files on the disk".  The layout is what makes same-file
sequential runs free of positioning cost while cross-file hops pay the
average seek + rotation, and it is what the C-SCAN scheduler sorts on.

Blocks here are page-sized (4 KB) to match the kernel path; the unit only
needs to be consistent, since transfer times scale with byte counts, not
block counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import make_rng
from repro.units import Bytes

#: Block size used throughout the kernel path (Linux page size).
BLOCK_SIZE: int = 4096


def bytes_to_blocks(size_bytes: Bytes) -> int:
    """Number of whole blocks covering ``size_bytes`` (ceil division)."""
    if size_bytes < 0:
        raise ValueError("negative size")
    return -(-size_bytes // BLOCK_SIZE)


@dataclass(frozen=True, slots=True)
class FileExtentMap:
    """Placement of one file: ``nblocks`` starting at ``start_block``."""

    inode: int
    start_block: int
    nblocks: int

    @property
    def end_block(self) -> int:
        """One past the last block of the file."""
        return self.start_block + self.nblocks

    def block_of(self, offset: int) -> int:
        """Absolute block containing byte ``offset`` of the file."""
        if offset < 0:
            raise ValueError("negative offset")
        rel = offset // BLOCK_SIZE
        if rel >= self.nblocks:
            raise ValueError(
                f"offset {offset} beyond file of {self.nblocks} blocks")
        return self.start_block + rel


class DiskLayout:
    """Sequential per-file placement with small random inter-file gaps.

    Files are laid out in the order they are registered (which the trace
    generators do in creation order), matching how a freshly hoarded data
    set lands on a laptop disk.  The gap between consecutive files is
    uniform in ``[0, max_gap_blocks]``.
    """

    def __init__(self, seed: int = 0, *, max_gap_blocks: int = 16,
                 capacity_blocks: int | None = None) -> None:
        if max_gap_blocks < 0:
            raise ValueError("negative gap")
        self._rng = make_rng(seed, "disk-layout")
        self._max_gap = int(max_gap_blocks)
        self._capacity = capacity_blocks
        self._next_block = 0
        self._files: dict[int, FileExtentMap] = {}

    def add_file(self, inode: int, size_bytes: Bytes) -> FileExtentMap:
        """Place a file; re-registering the same inode must match size."""
        if inode in self._files:
            existing = self._files[inode]
            if existing.nblocks != bytes_to_blocks(size_bytes):
                raise ValueError(
                    f"inode {inode} re-registered with different size")
            return existing
        nblocks = max(1, bytes_to_blocks(size_bytes))
        gap = int(self._rng.integers(0, self._max_gap + 1)) \
            if self._files else 0
        start = self._next_block + gap
        if self._capacity is not None and start + nblocks > self._capacity:
            raise ValueError("disk layout capacity exceeded")
        extent = FileExtentMap(inode=inode, start_block=start,
                               nblocks=nblocks)
        self._files[inode] = extent
        self._next_block = start + nblocks
        return extent

    def get(self, inode: int) -> FileExtentMap:
        """Extent map for ``inode`` (KeyError if unknown)."""
        return self._files[inode]

    def __contains__(self, inode: int) -> bool:
        return inode in self._files

    def __len__(self) -> int:
        return len(self._files)

    @property
    def used_blocks(self) -> int:
        """High-water block mark of the layout."""
        return self._next_block

    def block_of(self, inode: int, offset: int) -> int:
        """Absolute block of byte ``offset`` in file ``inode``."""
        return self.get(inode).block_of(offset)

    def span(self) -> np.ndarray:
        """(N, 3) array of ``inode, start_block, nblocks`` rows, sorted
        by start block — handy for layout statistics and tests."""
        rows = sorted((f.start_block, f.inode, f.nblocks)
                      for f in self._files.values())
        return np.array([(i, s, n) for s, i, n in rows], dtype=np.int64) \
            if rows else np.empty((0, 3), dtype=np.int64)
