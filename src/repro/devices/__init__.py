"""Device power and performance models.

* :mod:`repro.devices.specs` — parameter records for the Hitachi DK23DA
  disk (paper Table 1) and Cisco Aironet 350 WNIC (paper Table 2).
* :mod:`repro.devices.power` — a generic timed power-state machine with
  energy integration.
* :mod:`repro.devices.disk` — the hard-disk model (seek + rotation +
  transfer, timeout spin-down dynamic power management).
* :mod:`repro.devices.wnic` — the 802.11b wireless NIC model (CAM/PSM,
  adaptive mode switching, latency + bandwidth service).
* :mod:`repro.devices.layout` — mapping of traced files onto disk blocks
  ("sequential with a small random distance between files", §3.2).
"""

from repro.devices.disk import DiskState, HardDisk
from repro.devices.dpm import AdaptiveTimeout, FixedTimeout, SpindownPolicy
from repro.devices.layout import DiskLayout, FileExtentMap
from repro.devices.power import PowerStateMachine, StateSpec, TransitionSpec
from repro.devices.specs import (
    AIRONET_350,
    HITACHI_DK23DA,
    WNIC_RATES_BPS,
    DiskSpec,
    WnicSpec,
)
from repro.devices.wnic import WnicMode, WirelessNic

__all__ = [
    "DiskState",
    "HardDisk",
    "AdaptiveTimeout",
    "FixedTimeout",
    "SpindownPolicy",
    "DiskLayout",
    "FileExtentMap",
    "PowerStateMachine",
    "StateSpec",
    "TransitionSpec",
    "AIRONET_350",
    "HITACHI_DK23DA",
    "WNIC_RATES_BPS",
    "DiskSpec",
    "WnicSpec",
    "WnicMode",
    "WirelessNic",
]
