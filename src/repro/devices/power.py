"""Generic timed power-state machine.

Both device models share the same skeleton: a set of named states each
drawing constant power, and transitions that take wall time and burn a
lump of energy.  :class:`PowerStateMachine` owns that skeleton plus the
energy meter and state timeline; :class:`~repro.devices.disk.HardDisk` and
:class:`~repro.devices.wnic.WirelessNic` layer their DPM policies and
service-time models on top.

The machine is *pull-based*: callers advance it to an absolute time with
:meth:`advance_to` (during which the owner's ``_apply_dpm`` hook may fire
timeout transitions), then query or mutate state.  This matches how the
replay simulator uses devices — they only need to be accurate at request
boundaries — and it is also what lets FlexFetch clone a device cheaply for
its online what-if estimation (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.metrics import EnergyMeter, StateTimeline
from repro.units import ABS_TOLERANCE, Joules, Seconds, Watts

_TOL = ABS_TOLERANCE


@dataclass(frozen=True, slots=True)
class StateSpec:
    """A named power state drawing ``power`` watts while resident."""

    name: str
    power: Watts

    def __post_init__(self) -> None:
        if self.power < 0:
            raise ValueError(f"state {self.name!r} has negative power")


@dataclass(frozen=True, slots=True)
class TransitionSpec:
    """A legal transition taking ``time`` seconds and ``energy`` joules."""

    src: str
    dst: str
    time: float
    energy: Joules

    def __post_init__(self) -> None:
        if self.time < 0 or self.energy < 0:
            raise ValueError(
                f"transition {self.src}->{self.dst} has negative cost")


class PowerStateMachine:
    """Power/energy bookkeeping shared by the device models.

    Subclass responsibilities:

    * override :meth:`_apply_dpm` to fire timeout-driven transitions while
      time advances (e.g. idle -> standby after 20 s);
    * call :meth:`transition` for demand transitions (e.g. spin-up on a
      request), and :meth:`set_busy_power` / :meth:`set_state_power` around
      data transfers.
    """

    def __init__(self, name: str, states: list[StateSpec],
                 transitions: list[TransitionSpec], initial_state: str,
                 start_time: Seconds = 0.0) -> None:
        self.name = name
        self._states = {s.name: s for s in states}
        if len(self._states) != len(states):
            raise ValueError("duplicate state names")
        if initial_state not in self._states:
            raise ValueError(f"unknown initial state {initial_state!r}")
        self._transitions = {(t.src, t.dst): t for t in transitions}
        for t in transitions:
            if t.src not in self._states or t.dst not in self._states:
                raise ValueError(
                    f"transition {t.src}->{t.dst} references unknown state")
        self._state = initial_state
        self._last_activity = start_time
        # Hot-path lookup tables, immutable after construction (clones
        # share them by reference): per-transition
        # (time, energy, default label, destination power and bucket),
        # and per-state nominal power / meter bucket.
        self._state_powers = {s.name: s.power for s in states}
        self._state_buckets = {s.name: f"{name}.{s.name}" for s in states}
        self._transition_info = {
            (t.src, t.dst): (t.time, t.energy, f"{name}.{t.src}->{t.dst}",
                             self._state_powers[t.dst],
                             self._state_buckets[t.dst])
            for t in transitions}
        self.meter = EnergyMeter(start_time)
        self.meter.set_power(start_time, self._states[initial_state].power,
                             f"{name}.{initial_state}")
        self.timeline = StateTimeline(initial_state, start_time)
        #: time until which the device is committed (transition/transfer).
        self._busy_until = start_time

    # -- cloning for what-if estimation ---------------------------------
    def clone(self) -> PowerStateMachine:
        """Cheap copy for offline what-if simulation (FlexFetch §2.2).

        The clone carries the machine's *current* operating point
        (state, power draw, DPM timers, head position) but a fresh
        meter and timeline — estimation only ever reads energy deltas,
        and copying the full history made cloning O(run length).
        """
        new = object.__new__(type(self))
        for key, value in self.__dict__.items():
            if key not in ("meter", "timeline"):
                new.__dict__[key] = value
        t = self.meter.last_time
        new.meter = EnergyMeter(t)
        new.meter.set_power(t, self.meter.power,
                            f"{self.name}.{self._state}")
        new.timeline = StateTimeline(self._state, t)
        return new

    # -- state accessors -------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    @property
    def busy_until(self) -> Seconds:
        """Absolute time at which the current commitment ends."""
        return self._busy_until

    @property
    def last_activity(self) -> float:
        """Time of the most recent demand activity (for DPM timeouts)."""
        return self._last_activity

    def energy(self, upto: float | None = None) -> Joules:
        """Total joules consumed, optionally extended to time ``upto``."""
        return self.meter.total(upto)

    def residency(self, end_time: Seconds) -> dict[str, float]:
        """Seconds per state from start to ``end_time``."""
        return self.timeline.residency(end_time)

    # -- time advancement -------------------------------------------------
    def advance_to(self, time: float) -> None:
        """Advance the machine to absolute ``time``, applying DPM timeouts.

        Times earlier than the machine's committed horizon are legal —
        a device can be busy past the simulation clock when requests
        queue behind a transfer or a mode transition — and are clamped
        (the machine never rewinds).
        """
        meter = self.meter
        if time <= meter._last_time:
            return
        self._apply_dpm(time)
        # Inlined meter.advance(time): a DPM transition above may have
        # moved the meter, so re-read last_time before integrating.
        last = meter._last_time
        if time > last:
            power = meter._power
            if power > _TOL:
                meter._energy[meter._bucket] += power * (time - last)
            meter._last_time = time

    def _apply_dpm(self, time: float) -> None:
        """Hook: fire timeout transitions occurring in (last, time]."""

    # -- transitions -------------------------------------------------------
    def transition(self, time: float, dst: str, *,
                   bucket: str | None = None) -> float:
        """Perform the ``state -> dst`` transition starting at ``time``.

        Energy cost is added as an impulse; the machine is busy (and in the
        destination state's power draw) until ``time + transition.time``.
        Returns the completion time.
        """
        info = self._transition_info.get((self._state, dst))
        if info is None:
            raise ValueError(
                f"{self.name}: illegal transition {self._state!r}->{dst!r}")
        tr_time, tr_energy, default_label, dst_power, dst_bucket = info
        # Inlined meter sequence (advance / add_impulse / zero-power
        # switching window / destination power).  The datasheet impulse
        # covers the whole switching window, so no supplemental draw is
        # charged during [time, done); the destination state's power
        # applies from completion.  Bit-identical to the method calls:
        # the zero-draw window integrates nothing either way.
        meter = self.meter
        last = meter._last_time
        if time > last:
            power = meter._power
            if power > _TOL:
                meter._energy[meter._bucket] += power * (time - last)
            last = meter._last_time = time
        meter._energy[bucket or default_label] += tr_energy
        done = time + tr_time
        if done > last:
            meter._last_time = done
        meter._power = dst_power
        meter._bucket = dst_bucket
        self._state = dst
        # Inlined timeline.record(time, dst) — same monotonicity check,
        # coalescing, and clamp, minus the call overhead.
        tl = self.timeline
        times = tl._times
        last_t = times[-1]
        if time < last_t - 1e-9:
            raise ValueError(
                f"timeline must be monotonic: {time} < {last_t}")
        states = tl._states
        if dst != states[-1]:
            times.append(time if time > last_t else last_t)
            states.append(dst)
        if done > self._busy_until:
            self._busy_until = done
        return done

    def set_state_power(self, time: float, *, bucket: str | None = None) -> None:
        """Re-assert the current state's nominal power draw at ``time``."""
        state = self._state
        self.meter.set_power(time, self._state_powers[state],
                             bucket or self._state_buckets[state])

    def set_busy_power(self, time: float, watts: Watts, bucket: str) -> None:
        """Draw ``watts`` from ``time`` on (e.g. transfer power)."""
        self.meter.set_power(time, watts, bucket)

    def note_activity(self, time: float) -> None:
        """Record demand activity (resets DPM idle timers)."""
        if time > self._last_activity:
            self._last_activity = time

    def mark_busy_until(self, time: float) -> None:
        """Extend the busy horizon (queueing of back-to-back requests)."""
        if time > self._busy_until:
            self._busy_until = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.name} state={self._state}"
                f" E={self.energy():.2f}J>")
