"""Stage-end audit machinery (§2.3.1, second half).

"At the end of each stage, FlexFetch compares the measured energy
consumption with the estimated consumption if the data were fetched from
the other source."  The counterfactual side of that comparison lives
here: the observed requests of the finished stage are reassembled into a
burst/think structure and replayed on the alternative device through the
shared :class:`~repro.core.costmodel.CostModel`.  The policy itself only
compares the two joule numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.burst import IOBurst, ProfiledRequest
from repro.core.costmodel import CostModel
from repro.core.decision import DataSource
from repro.units import Joules, Seconds

#: one observed request: (request, service start, service end).
ObservedRequest = tuple[ProfiledRequest, float, float]


@dataclass
class StageAccounting:
    """Runtime bookkeeping for the stage in progress."""

    start: float
    source: DataSource
    disk_energy0: float
    wnic_energy0: float
    observed: list[ObservedRequest] = field(default_factory=list)
    #: joules spent on the *other* device on each source's behalf during
    #: fault recovery (failover waste + cross-device service); the audit
    #: charges it to the intended source so its measured energy reflects
    #: what choosing that source actually cost this stage.
    cross_energy: dict[DataSource, float] = field(
        default_factory=lambda: {DataSource.DISK: 0.0,
                                 DataSource.NETWORK: 0.0})

    def observe(self, req: ProfiledRequest, start: float,
                end: float) -> None:
        self.observed.append((req, start, end))


def observed_to_bursts(observed: Sequence[ObservedRequest],
                       threshold: Seconds
                       ) -> tuple[list[IOBurst], list[float]]:
    """Reassemble observed request timings into bursts and thinks.

    Gaps of at least ``threshold`` between one request's completion and
    the next request's start close a burst, mirroring the off-line
    profile extraction; the trailing think is zero (the stage ended).
    """
    bursts: list[IOBurst] = []
    thinks: list[float] = []
    cur: list[ProfiledRequest] = [observed[0][0]]
    cur_start, prev_end = observed[0][1], observed[0][2]
    for req, start, end in observed[1:]:
        gap = start - prev_end
        if gap >= threshold:
            bursts.append(IOBurst(tuple(cur), cur_start, prev_end))
            thinks.append(max(0.0, gap))
            cur = [req]
            cur_start = start
        else:
            cur.append(req)
        prev_end = max(prev_end, end)
    bursts.append(IOBurst(tuple(cur), cur_start, prev_end))
    thinks.append(0.0)
    return bursts, thinks


@dataclass(frozen=True, slots=True)
class AuditOutcome:
    """One stage-end audit's verdict."""

    measured: Joules
    counterfactual: Joules
    #: source to force next stage ("disregarding the profile"), if any.
    override: DataSource | None
    profile_trusted: bool


def audit_stage(cost_model: CostModel, stage: StageAccounting,
                now: Seconds, *, measured: Joules,
                burst_threshold: Seconds, hysteresis: float,
                disk_kept_spinning: bool) -> AuditOutcome | None:
    """Judge a finished stage: did the chosen source beat the other one?

    ``measured`` is the chosen device's metered stage energy (plus any
    cross-device fault-recovery waste charged to it).  Returns ``None``
    when the stage serviced nothing (nothing to learn from); otherwise
    the counterfactual must beat the measured energy by more than the
    ``hysteresis`` margin for the alternative to override the profile.
    """
    alt = stage.source.other
    counterfactual = counterfactual_energy(
        cost_model, stage, alt, now, burst_threshold=burst_threshold,
        disk_kept_spinning=disk_kept_spinning)
    if not stage.observed:
        return None
    if counterfactual < measured * (1.0 - hysteresis):
        # "disk or network, whichever was more energy efficient, will
        # be used in the next stage, disregarding the profile".
        return AuditOutcome(measured, counterfactual, alt, False)
    return AuditOutcome(measured, counterfactual, None, True)


def counterfactual_energy(cost_model: CostModel,
                          stage: StageAccounting,
                          alt: DataSource, now: Seconds, *,
                          burst_threshold: Seconds,
                          disk_kept_spinning: bool) -> Joules:
    """Replay the finished stage's observed requests on ``alt``.

    With ``disk_kept_spinning`` (something else pinned the disk up,
    §2.3.3) a disk counterfactual is "almost free": only the marginal
    service energy above the idle draw counts.  Otherwise the observed
    burst/think structure is replayed on a clone of the alternative
    device.  Cloning from *now* rather than the (unavailable)
    stage-start state yields the same DPM behaviour because the clone's
    state converges after the first burst; the initial-state difference
    is bounded by one mode transition.
    """
    observed = stage.observed
    if not observed:
        return 0.0
    if alt is DataSource.DISK and disk_kept_spinning:
        return cost_model.spinning_disk_marginal_energy(
            req.size for req, _start, _end in observed)
    bursts, thinks = observed_to_bursts(observed, burst_threshold)
    est = cost_model.stage_estimate(
        alt, bursts, thinks, now=now, include_other=False,
        min_duration=max(0.0, now - stage.start))
    return est.energy
