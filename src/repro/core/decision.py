"""The data-source decision rules (§2.2).

Given estimated execution time and energy for servicing a stage from the
disk and from the network, and a user-specified maximum tolerable
performance-loss rate ``m``:

1. if the disk is faster *and* cheaper, use the disk;
2. if the network is faster *and* cheaper, use the network;
3. if the network is cheaper but slower, use it only when the relative
   energy saving is at least the relative slow-down *and* the slow-down
   stays below ``m``; otherwise use the disk.

The paper words rule 3 from the network's perspective; by symmetry the
same trade governs a cheaper-but-slower disk, which the implementation
handles with the mirrored condition so the rule set is total.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

#: Default maximum tolerable performance loss rate (§3.1: 25 %).
LOSS_RATE_DEFAULT: float = 0.25


class DataSource(str, Enum):
    """Where a stage's I/O requests are serviced."""

    DISK = "disk"
    NETWORK = "network"

    @property
    def other(self) -> DataSource:
        return (DataSource.NETWORK if self is DataSource.DISK
                else DataSource.DISK)


@dataclass(frozen=True, slots=True)
class DecisionInputs:
    """Stage estimates feeding the rules."""

    t_disk: float
    e_disk: float
    t_network: float
    e_network: float

    def __post_init__(self) -> None:
        for name in ("t_disk", "e_disk", "t_network", "e_network"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")


def decide(inputs: DecisionInputs, *,
           loss_rate: float = LOSS_RATE_DEFAULT) -> DataSource:
    """Apply the §2.2 rules; ties favour the disk (rule 3's fallback)."""
    if loss_rate < 0:
        raise ValueError("loss rate cannot be negative")
    t_d, e_d = inputs.t_disk, inputs.e_disk
    t_n, e_n = inputs.t_network, inputs.e_network

    if t_d < t_n and e_d < e_n:
        return DataSource.DISK
    if t_n < t_d and e_n < e_d:
        return DataSource.NETWORK

    if e_n < e_d:
        # Network cheaper but not faster: accept bounded slow-down.
        saving = (e_d - e_n) / e_d if e_d > 0 else 0.0
        slowdown = (t_n - t_d) / t_d if t_d > 0 else float("inf")
        if saving >= slowdown and slowdown < loss_rate:
            return DataSource.NETWORK
        return DataSource.DISK
    if e_d < e_n:
        # Mirrored case: disk cheaper but not faster.
        saving = (e_n - e_d) / e_n if e_n > 0 else 0.0
        slowdown = (t_d - t_n) / t_n if t_n > 0 else float("inf")
        if saving >= slowdown and slowdown < loss_rate:
            return DataSource.DISK
        return DataSource.NETWORK
    # Equal energy: take the faster device, disk on a perfect tie.
    return DataSource.NETWORK if t_n < t_d else DataSource.DISK
