"""Per-stage (time, energy) what-if estimation (§2.2) — compat shim.

The estimation machinery moved into the shared
:class:`~repro.core.costmodel.CostModel`; this module keeps the old
function-style surface importable.  ``estimate_stage`` is
:func:`repro.core.costmodel.replay_stage` under its historical name, and
``estimate_both`` is a :meth:`CostModel.stage_pair` over ad-hoc devices.
New code should go through ``env.cost_model`` instead of calling these
free functions with raw devices.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.costmodel import (
    CostModel,
    ResidencyOracle,
    StageEstimate,
    filter_cached,
    replay_stage,
)
from repro.devices.disk import HardDisk
from repro.devices.layout import DiskLayout
from repro.devices.wnic import WirelessNic
from repro.core.burst import IOBurst
from repro.units import Seconds

__all__ = [
    "StageEstimate",
    "estimate_both",
    "estimate_stage",
    "filter_cached",
]

#: old private name for the residency protocol.
_ResidencyOracle = ResidencyOracle

#: historical name of :func:`repro.core.costmodel.replay_stage`.
estimate_stage = replay_stage


def estimate_both(disk: HardDisk, wnic: WirelessNic,
                  bursts: Sequence[IOBurst], thinks: Sequence[float], *,
                  now: Seconds, layout: DiskLayout | None = None,
                  vfs: ResidencyOracle | None = None
                  ) -> tuple[StageEstimate, StageEstimate]:
    """Both scenarios' estimates for one stage, cross-baselines included."""
    return CostModel(disk, wnic, layout).stage_pair(bursts, thinks,
                                                    now=now, vfs=vfs)
