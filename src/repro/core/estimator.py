"""Per-stage (time, energy) what-if estimation (§2.2).

"In order to estimate execution times and energy costs for servicing
I/O requests on various data sources, we need to calculate the length of
period of time when a device stays at each power mode.  To this end, we
maintain an on-line simulator for each device to emulate their power
saving policies."

The on-line simulator here is simply a :meth:`clone` of the live device
model (so the estimate starts from the device's *actual* current power
state) replaying the stage's bursts closed-loop: requests within a burst
go back-to-back, inter-burst think times advance the clone's clock and
let its DPM policy fire — which is precisely what charges Disk-only for
idle watts between sparse bursts and the WNIC for CAM/PSM cycling.

The §2.3.2 buffer-cache filter is applied before estimation: profiled
requests whose data is resident in the page cache are shrunk or dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Protocol

from repro.core.burst import IOBurst, ProfiledRequest
from repro.core.decision import DataSource
from repro.devices.disk import HardDisk
from repro.devices.layout import DiskLayout
from repro.devices.wnic import Direction, WirelessNic
from repro.traces.record import OpType
from repro.units import Bytes, Joules, Seconds


@dataclass(frozen=True, slots=True)
class StageEstimate:
    """Estimated cost of servicing a stage from one data source."""

    source: DataSource
    time: float
    energy: Joules
    nbytes: Bytes
    requests: int


class _ResidencyOracle(Protocol):
    """Anything that can answer 'how much of this range is cached?'."""

    def resident_bytes(self, inode: int, offset: int, size: int) -> Bytes: ...


def filter_cached(bursts: Sequence[IOBurst],
                  vfs: _ResidencyOracle) -> list[list[ProfiledRequest]]:
    """Apply the §2.3.2 cache filter to a stage's bursts.

    Returns, per burst, the requests that would still reach a device:
    fully resident requests vanish, partially resident ones shrink by
    the resident byte count (an approximation that preserves totals).
    Reads only — writes always dirty pages regardless of residency.
    """
    filtered: list[list[ProfiledRequest]] = []
    for burst in bursts:
        keep: list[ProfiledRequest] = []
        for req in burst.requests:
            if req.op is OpType.READ:
                resident = vfs.resident_bytes(req.inode, req.offset,
                                              req.size)
                remaining = req.size - resident
                if remaining <= 0:
                    continue
                keep.append(ProfiledRequest(
                    inode=req.inode, offset=req.offset,
                    size=remaining, op=req.op))
            else:
                keep.append(req)
        filtered.append(keep)
    return filtered


def estimate_stage(source: DataSource,
                   device: HardDisk | WirelessNic,
                   bursts: Sequence[IOBurst],
                   thinks: Sequence[float],
                   *,
                   now: Seconds,
                   layout: DiskLayout | None = None,
                   vfs: _ResidencyOracle | None = None,
                   other_device: HardDisk | WirelessNic | None = None,
                   min_duration: float | None = None) -> StageEstimate:
    """Replay a stage through a clone of ``device`` starting at ``now``.

    ``thinks[i]`` follows ``bursts[i]``; the trailing think is not
    charged (it belongs to the next stage).  The estimate's ``time`` is
    from ``now`` to the completion of the last request plus the enclosed
    thinks; ``energy`` is the clone's consumption over that interval.

    When ``other_device`` is given, its clone is advanced (unused) over
    the same interval and its baseline draw — including any DPM
    transitions its idleness triggers — is added to the estimate.  This
    keeps the disk-vs-network comparison honest: choosing the disk still
    pays the WNIC's PSM idle watts, and choosing the network lets an
    active disk time out and spin down.

    ``min_duration`` extends the measured interval to at least that many
    seconds past ``now`` — the stage-end audit uses it so a stage whose
    requests finished early still charges the serving device's trailing
    idle, exactly as the measured side does.
    """
    if len(bursts) != len(thinks):
        raise ValueError("bursts and thinks must align")
    clone = device.clone()
    clone.advance_to(now)
    e0 = clone.energy(now)

    request_lists = (filter_cached(bursts, vfs) if vfs is not None
                     else [list(b.requests) for b in bursts])

    t = now
    total_bytes = 0
    total_requests = 0
    for i, requests in enumerate(request_lists):
        for req in requests:
            total_bytes += req.size
            total_requests += 1
            if isinstance(clone, HardDisk):
                block = None
                nblocks = None
                if layout is not None and req.inode in layout:
                    # Profiled offsets come from a *prior* run and may
                    # exceed the current file (different data set);
                    # unknown placement falls back to an average seek.
                    ext = layout.get(req.inode)
                    rel = req.offset // 4096
                    if rel < ext.nblocks:
                        block = ext.start_block + rel
                        nblocks = -(-req.size // 4096)
                result = clone.service(t, req.size, block=block,
                                       block_count=nblocks)
            else:
                direction = (Direction.RECV if req.op is OpType.READ
                             else Direction.SEND)
                result = clone.service(t, req.size, direction=direction)
            t = result.completion
        is_last = i == len(request_lists) - 1
        if not is_last:
            t += thinks[i]
            clone.advance_to(t)
    if min_duration is not None:
        t = max(t, now + min_duration)
    clone.advance_to(t)
    e1 = clone.energy(t)
    energy = max(0.0, e1 - e0)
    if other_device is not None:
        other = other_device.clone()
        other.advance_to(now)
        oe0 = other.energy(now)
        other.advance_to(max(t, now))
        energy += max(0.0, other.energy(max(t, now)) - oe0)
    return StageEstimate(source=source, time=max(0.0, t - now),
                         energy=energy,
                         nbytes=total_bytes, requests=total_requests)


def estimate_both(disk: HardDisk, wnic: WirelessNic,
                  bursts: Sequence[IOBurst], thinks: Sequence[float], *,
                  now: Seconds, layout: DiskLayout | None = None,
                  vfs: _ResidencyOracle | None = None
                  ) -> tuple[StageEstimate, StageEstimate]:
    """Both scenarios' estimates for one stage, cross-baselines included."""
    d = estimate_stage(DataSource.DISK, disk, bursts, thinks, now=now,
                       layout=layout, vfs=vfs, other_device=wnic)
    n = estimate_stage(DataSource.NETWORK, wnic, bursts, thinks, now=now,
                       layout=layout, vfs=vfs, other_device=disk)
    return d, n
