"""The simulation facade: one object that wires all five layers.

"We built a simulator that is driven by real-life applications'
execution traces...  It simulates the management of two storage devices
(hard disk and wireless interface card) and the buffer cache in the
memory."  :class:`SimulationSession` is that simulator, assembled from
explicit layers over the :class:`~repro.sim.engine.EventLoop`:

* **workload** (`repro.core.workload`) — closed-loop
  :class:`ProgramDriver`\\ s replaying recorded traces;
* **kernel** (`repro.kernel.path`) — every syscall walks the
  cache/readahead/write-back path; only misses reach a device;
* **device services** (`repro.devices.service`) — disk and WNIC behind
  one protocol, owning spin-up/PSM accounting and fault paths;
* **policy routing** (`repro.core.routing`) — the policy under test
  routes each miss extent, with retry/failover recovery under faults;
* **telemetry** (`repro.core.telemetry`) — pluggable metrics sinks and
  the final :class:`RunResult`.

Use it constructor-style::

    result = SimulationSession([ProgramSpec(trace)], policy,
                               seed=7).run()

or builder-style::

    result = (SimulationSession()
              .with_programs(ProgramSpec(trace))
              .with_policy(FlexFetchPolicy(profile))
              .with_seed(7)
              .add_sink(RecordingSink())
              .run())

Replay semantics (unchanged from the original monolithic simulator):
non-profiled, disk-pinned background programs share the disk and the
cache and are reported to the policy as external disk activity;
laptop-mode write-back flushes piggy-back on an active disk and are
asynchronous (they cost device time and energy but never delay the
program).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.policies import Policy, RequestContext
from repro.core.routing import RequestRouter
from repro.core.system import MobileSystem
from repro.core.telemetry import (
    MetricsSink,
    RunResult,
    SinkSet,
    build_run_result,
)
from repro.core.workload import ProgramDriver, ProgramSpec
from repro.devices.dpm import SpindownPolicy
from repro.devices.specs import AIRONET_350, HITACHI_DK23DA, DiskSpec, WnicSpec
from repro.faults.invariants import InvariantChecker
from repro.faults.schedule import FaultSchedule
from repro.sim.clock import MB
from repro.sim.engine import EventLoop, SimulationError
from repro.traces.record import OpType
from repro.units import Bytes


class SimulationSession:
    """Builder-style facade over the layered replay simulator."""

    def __init__(self, programs: Sequence[ProgramSpec] | None = None,
                 policy: Policy | None = None, *,
                 disk_spec: DiskSpec = HITACHI_DK23DA,
                 wnic_spec: WnicSpec = AIRONET_350,
                 memory_bytes: Bytes = 64 * MB,
                 seed: int = 0,
                 spindown_policy: SpindownPolicy | None = None,
                 faults: FaultSchedule | None = None,
                 strict: bool = False,
                 sinks: Iterable[MetricsSink] = ()) -> None:
        self._program_specs: list[ProgramSpec] = list(programs or ())
        self._policy = policy
        self._disk_spec = disk_spec
        self._wnic_spec = wnic_spec
        self._memory_bytes = memory_bytes
        self._seed = seed
        self._spindown_policy = spindown_policy
        self._faults = faults
        self._strict = strict
        self.sinks = SinkSet(tuple(sinks))
        self._request_count = 0
        self._materialised = False
        self._ran = False

    # ------------------------------------------------------------------
    # builder surface
    # ------------------------------------------------------------------
    def _configure(self) -> None:
        if self._materialised:
            raise SimulationError(
                "session already materialised; configure before run()"
                " or env/policy access")

    def with_programs(self, *programs: ProgramSpec) -> SimulationSession:
        """Add programs to the replay (order is the scheduling order)."""
        self._configure()
        self._program_specs.extend(programs)
        return self

    def with_policy(self, policy: Policy) -> SimulationSession:
        """Set the data-source selection policy under test."""
        self._configure()
        self._policy = policy
        return self

    def with_devices(self, *, disk_spec: DiskSpec | None = None,
                     wnic_spec: WnicSpec | None = None
                     ) -> SimulationSession:
        """Override the disk and/or WNIC hardware specs."""
        self._configure()
        if disk_spec is not None:
            self._disk_spec = disk_spec
        if wnic_spec is not None:
            self._wnic_spec = wnic_spec
        return self

    def with_memory(self, memory_bytes: Bytes) -> SimulationSession:
        """Set the buffer-cache size."""
        self._configure()
        self._memory_bytes = memory_bytes
        return self

    def with_seed(self, seed: int) -> SimulationSession:
        """Set the experiment seed (disk layout placement)."""
        self._configure()
        self._seed = seed
        return self

    def with_spindown_policy(self, policy: SpindownPolicy
                             ) -> SimulationSession:
        """Override the disk's DPM spin-down policy."""
        self._configure()
        self._spindown_policy = policy
        return self

    def with_faults(self, faults: FaultSchedule | None,
                    *, strict: bool | None = None) -> SimulationSession:
        """Attach a fault schedule (and optionally strict checking)."""
        self._configure()
        self._faults = faults
        if strict is not None:
            self._strict = strict
        return self

    def with_strict(self, strict: bool = True) -> SimulationSession:
        """Toggle runtime invariant checking (fail loudly)."""
        self._configure()
        self._strict = strict
        return self

    def add_sink(self, sink: MetricsSink) -> SimulationSession:
        """Attach a telemetry sink (any number may ride along)."""
        if self._ran:
            raise SimulationError(
                "session already ran; attach sinks before run()")
        self.sinks.add(sink)
        return self

    @property
    def sink_errors(self) -> list[tuple[str, str, str]]:
        """(sink type, hook, message) for every sink disabled mid-run."""
        return list(self.sinks.errors)

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def _materialise(self) -> None:
        """Build and wire the layers (idempotent)."""
        if self._materialised:
            return
        if not self._program_specs:
            raise ValueError("need at least one program")
        if self._policy is None:
            raise ValueError("need a policy (with_policy or constructor)")
        self.env = MobileSystem(
            disk_spec=self._disk_spec, wnic_spec=self._wnic_spec,
            memory_bytes=self._memory_bytes, seed=self._seed,
            spindown_policy=self._spindown_policy)
        # Compile-once: record-level specs are lowered here (memoised
        # per trace object), so repeated sessions over the same trace
        # share one CompiledTrace and construction is O(1) in its size.
        self._program_specs = [spec.prepared()
                               for spec in self._program_specs]
        for spec in self._program_specs:
            self.env.register_trace(spec.trace)
        self.policy = self._policy
        self.programs = [ProgramDriver(s) for s in self._program_specs]
        self.loop = EventLoop()
        # A schedule with nothing scheduled must be a strict no-op: the
        # devices never see it and every float path stays byte-identical.
        self.faults = self._faults \
            if self._faults is not None and self._faults.enabled else None
        if self.faults is not None:
            self.env.disk.set_fault_schedule(self.faults)
            self.env.wnic.set_fault_schedule(self.faults)
        self._checker = InvariantChecker() if self._strict else None
        self.router = RequestRouter(self.env, self.policy,
                                    faults=self.faults,
                                    checker=self._checker)
        self._materialised = True

    # ------------------------------------------------------------------
    # syscall processing
    # ------------------------------------------------------------------
    def _process(self, prog: ProgramDriver) -> None:
        now = self.loop.now
        rec = prog.current
        self._request_count += 1
        if self._checker is not None:
            self._checker.on_clock(now, self.env)
            self._checker.on_record(prog.name, prog.index, rec.size)
        self.env.advance(now)
        self.policy.on_tick(now)

        if rec.op is OpType.READ:
            extents = self.env.kernel.read(rec.pid, rec.inode, rec.offset,
                                           rec.size, now)
            completion = now
            for extent in extents:
                _source, result = self.router.service(
                    prog, extent, completion, OpType.READ)
                completion = result.completion
                self.sinks.on_service(prog.name, _source.value,
                                      extent.nbytes, result.energy,
                                      result.completion)
        else:
            forced = self.env.kernel.write(rec.pid, rec.inode, rec.offset,
                                           rec.size, now)
            completion = now  # async write-back: write() returns at once
            for extent in forced:
                # Forced evictions must hit a device immediately; they
                # run asynchronously and do not delay the program.
                source, result = self.router.service(
                    prog, extent, now, OpType.WRITE)
                self.sinks.on_service(prog.name, source.value,
                                      extent.nbytes, result.energy,
                                      result.completion)

        # Laptop-mode opportunistic flush.
        flush = self.env.kernel.plan_writeback(
            completion, disk_active=self.env.disk_active)
        for extent in flush:
            source, result = self.router.service(
                prog, extent, completion, OpType.WRITE)
            self.sinks.on_service(prog.name, source.value,
                                  extent.nbytes, result.energy,
                                  result.completion)

        if prog.spec.profiled and rec.size > 0:
            # Demand-level observation (§2.1): every data-moving call,
            # cached or not, with the application's byte count.
            self.policy.on_syscall(RequestContext(
                now=now, program=prog.name, profiled=True,
                disk_pinned=prog.spec.disk_pinned, inode=rec.inode,
                offset=rec.offset, nbytes=rec.size, op=rec.op),
                now, completion)
            self.sinks.on_syscall(prog.name, rec.op.value, rec.size, now)

        prog.last_completion = completion
        think = prog.advance()
        if think is None:
            return
        self.loop.schedule_at(completion + think,
                              lambda p=prog: self._process(p),
                              label=f"{prog.name}[{prog.index}]")

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Replay everything; returns the accounting."""
        if self._ran:
            raise SimulationError(
                "session already ran; build a fresh SimulationSession"
                " (policies and devices are stateful)")
        self._materialise()
        self._ran = True
        self.policy.attach(self.env)
        self.policy.begin_run(0.0)
        self.sinks.on_run_begin(self.policy.name, 0.0)
        for prog in self.programs:
            if not prog.done:
                self.loop.schedule_at(prog.start_time,
                                      lambda p=prog: self._process(p),
                                      label=f"{prog.name}[0]")
        self.loop.run()
        end_time = max((p.last_completion for p in self.programs),
                       default=0.0)
        # Asynchronous flushes and in-flight transitions can commit the
        # devices past the last program completion; the run ends (and
        # energy/residency are measured) once all I/O has settled, so
        # the books balance exactly.
        end_time = max(end_time, self.env.disk.busy_until,
                       self.env.wnic.busy_until)
        self.env.advance(end_time)
        self.policy.end_run(end_time)

        fg_time = max((p.last_completion for p in self.programs
                       if p.spec.profiled), default=0.0)
        result = build_run_result(
            self.env, policy_name=self.policy.name,
            routed_requests={k.value: v for k, v
                             in self.policy.routed_requests.items()},
            routed_bytes={k.value: v for k, v
                          in self.policy.routed_bytes.items()},
            end_time=end_time, foreground_time=fg_time,
            requests=self._request_count,
            fault_retries=self.router.fault_retries,
            fault_failovers=self.router.fault_failovers,
            fault_wasted_energy=self.router.fault_wasted)
        if self._checker is not None:
            expected = {
                p.name: (p.record_count, p.total_bytes)
                for p in self.programs}
            self._checker.on_end(result, expected,
                                 disk_spec=self.env.disk.spec,
                                 wnic_spec=self.env.wnic.spec)
        self.sinks.on_run_end(result)
        return result
