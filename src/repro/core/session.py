"""The simulation facade: one object that wires all five layers.

"We built a simulator that is driven by real-life applications'
execution traces...  It simulates the management of two storage devices
(hard disk and wireless interface card) and the buffer cache in the
memory."  :class:`SimulationSession` is that simulator, assembled from
explicit layers over the :class:`~repro.sim.engine.EventLoop`:

* **workload** (`repro.core.workload`) — closed-loop
  :class:`ProgramDriver`\\ s replaying recorded traces;
* **kernel** (`repro.kernel.path`) — every syscall walks the
  cache/readahead/write-back path; only misses reach a device;
* **device services** (`repro.devices.service`) — disk and WNIC behind
  one protocol, owning spin-up/PSM accounting and fault paths;
* **policy routing** (`repro.core.routing`) — the policy under test
  routes each miss extent, with retry/failover recovery under faults;
* **telemetry** (`repro.core.telemetry`) — pluggable metrics sinks and
  the final :class:`RunResult`.

Use it constructor-style::

    result = SimulationSession([ProgramSpec(trace)], policy,
                               seed=7).run()

or builder-style::

    result = (SimulationSession()
              .with_programs(ProgramSpec(trace))
              .with_policy(FlexFetchPolicy(profile))
              .with_seed(7)
              .add_sink(RecordingSink())
              .run())

Replay semantics (unchanged from the original monolithic simulator):
non-profiled, disk-pinned background programs share the disk and the
cache and are reported to the policy as external disk activity;
laptop-mode write-back flushes piggy-back on an active disk and are
asynchronous (they cost device time and energy but never delay the
program).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.policies import Policy, RequestContext
from repro.core.routing import RequestRouter
from repro.core.system import MobileSystem
from repro.core.telemetry import (
    MetricsSink,
    RunResult,
    SinkSet,
    build_run_result,
)
from repro.core.workload import ProgramDriver, ProgramSpec
from repro.devices.dpm import SpindownPolicy
from repro.devices.specs import AIRONET_350, HITACHI_DK23DA, DiskSpec, WnicSpec
from repro.faults.invariants import InvariantChecker
from repro.faults.schedule import FaultSchedule
from repro.sim.clock import MB, TIME_EPSILON
from repro.sim.engine import EventLoop, SimulationError
from repro.sim.plan import PlanCursor, plan_for
from repro.traces.compile import OPS_BY_CODE
from repro.traces.record import OpType
from repro.units import Bytes


class SimulationSession:
    """Builder-style facade over the layered replay simulator."""

    def __init__(self, programs: Sequence[ProgramSpec] | None = None,
                 policy: Policy | None = None, *,
                 disk_spec: DiskSpec = HITACHI_DK23DA,
                 wnic_spec: WnicSpec = AIRONET_350,
                 memory_bytes: Bytes = 64 * MB,
                 seed: int = 0,
                 spindown_policy: SpindownPolicy | None = None,
                 faults: FaultSchedule | None = None,
                 strict: bool = False,
                 sinks: Iterable[MetricsSink] = ()) -> None:
        self._program_specs: list[ProgramSpec] = list(programs or ())
        self._policy = policy
        self._disk_spec = disk_spec
        self._wnic_spec = wnic_spec
        self._memory_bytes = memory_bytes
        self._seed = seed
        self._spindown_policy = spindown_policy
        self._faults = faults
        self._strict = strict
        self.sinks = SinkSet(tuple(sinks))
        self._request_count = 0
        self._materialised = False
        self._ran = False
        #: the sink set when any sink is attached, else None.  Dispatch
        #: into an empty set still costs a fan-out call per extent, so
        #: the replay loops skip it entirely; resolved once at run()
        #: (sinks cannot be added mid-run, only disabled).
        self._sinks_hot: SinkSet | None = None
        self._fast_path = True
        #: set by :meth:`run`: True when the replay consumed a
        #: :class:`~repro.sim.plan.BurstPlan` instead of the event loop.
        self.used_fast_path = False

    # ------------------------------------------------------------------
    # builder surface
    # ------------------------------------------------------------------
    def _configure(self) -> None:
        if self._materialised:
            raise SimulationError(
                "session already materialised; configure before run()"
                " or env/policy access")

    def with_programs(self, *programs: ProgramSpec) -> SimulationSession:
        """Add programs to the replay (order is the scheduling order)."""
        self._configure()
        self._program_specs.extend(programs)
        return self

    def with_policy(self, policy: Policy) -> SimulationSession:
        """Set the data-source selection policy under test."""
        self._configure()
        self._policy = policy
        return self

    def with_devices(self, *, disk_spec: DiskSpec | None = None,
                     wnic_spec: WnicSpec | None = None
                     ) -> SimulationSession:
        """Override the disk and/or WNIC hardware specs."""
        self._configure()
        if disk_spec is not None:
            self._disk_spec = disk_spec
        if wnic_spec is not None:
            self._wnic_spec = wnic_spec
        return self

    def with_memory(self, memory_bytes: Bytes) -> SimulationSession:
        """Set the buffer-cache size."""
        self._configure()
        self._memory_bytes = memory_bytes
        return self

    def with_seed(self, seed: int) -> SimulationSession:
        """Set the experiment seed (disk layout placement)."""
        self._configure()
        self._seed = seed
        return self

    def with_spindown_policy(self, policy: SpindownPolicy
                             ) -> SimulationSession:
        """Override the disk's DPM spin-down policy."""
        self._configure()
        self._spindown_policy = policy
        return self

    def with_faults(self, faults: FaultSchedule | None,
                    *, strict: bool | None = None) -> SimulationSession:
        """Attach a fault schedule (and optionally strict checking)."""
        self._configure()
        self._faults = faults
        if strict is not None:
            self._strict = strict
        return self

    def with_strict(self, strict: bool = True) -> SimulationSession:
        """Toggle runtime invariant checking (fail loudly)."""
        self._configure()
        self._strict = strict
        return self

    def with_fast_path(self, enabled: bool = True) -> SimulationSession:
        """Toggle the BurstPlan fast path (on by default).

        The fast path replays a precomputed kernel-path plan with a
        flat clock instead of driving the event loop; it engages only
        when the replay is plan-shaped (one all-READ program, no
        faults, no strict checking) and is bit-identical when it does.
        Turning it off forces the event loop — parity tests do.
        """
        self._configure()
        self._fast_path = enabled
        return self

    def add_sink(self, sink: MetricsSink) -> SimulationSession:
        """Attach a telemetry sink (any number may ride along)."""
        if self._ran:
            raise SimulationError(
                "session already ran; attach sinks before run()")
        self.sinks.add(sink)
        return self

    @property
    def sink_errors(self) -> list[tuple[str, str, str]]:
        """(sink type, hook, message) for every sink disabled mid-run."""
        return list(self.sinks.errors)

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def _materialise(self) -> None:
        """Build and wire the layers (idempotent)."""
        if self._materialised:
            return
        if not self._program_specs:
            raise ValueError("need at least one program")
        if self._policy is None:
            raise ValueError("need a policy (with_policy or constructor)")
        self.env = MobileSystem(
            disk_spec=self._disk_spec, wnic_spec=self._wnic_spec,
            memory_bytes=self._memory_bytes, seed=self._seed,
            spindown_policy=self._spindown_policy)
        # Compile-once: record-level specs are lowered here (memoised
        # per trace object), so repeated sessions over the same trace
        # share one CompiledTrace and construction is O(1) in its size.
        self._program_specs = [spec.prepared()
                               for spec in self._program_specs]
        for spec in self._program_specs:
            self.env.register_trace(spec.trace)
        self.policy = self._policy
        self.programs = [ProgramDriver(s) for s in self._program_specs]
        self.loop = EventLoop()
        # A schedule with nothing scheduled must be a strict no-op: the
        # devices never see it and every float path stays byte-identical.
        self.faults = self._faults \
            if self._faults is not None and self._faults.enabled else None
        if self.faults is not None:
            self.env.disk.set_fault_schedule(self.faults)
            self.env.wnic.set_fault_schedule(self.faults)
        self._checker = InvariantChecker() if self._strict else None
        self.router = RequestRouter(self.env, self.policy,
                                    faults=self.faults,
                                    checker=self._checker)
        self._materialised = True

    # ------------------------------------------------------------------
    # syscall processing
    # ------------------------------------------------------------------
    def _process(self, prog: ProgramDriver) -> None:
        now = self.loop.now
        completion = self._service_record(prog, now)
        think = prog.advance()
        if think is None:
            return
        self.loop.schedule_at(completion + think,
                              lambda p=prog: self._process(p),
                              label=f"{prog.name}[{prog.index}]")

    def _service_record(self, prog: ProgramDriver,
                        now: Seconds) -> float:
        """Service one record at ``now``; returns its completion time.

        The single body both replay modes share: the event loop calls
        it from :meth:`_process`, the BurstPlan fast path from its flat
        clock loop (with the kernel surface swapped for a
        :class:`~repro.sim.plan.PlanCursor`).
        """
        # Index the compiled columns directly — same fields a ReplayOp
        # would carry, minus one object allocation per record.
        i = prog.index
        pid = prog.pids[i]
        inode = prog.inodes[i]
        offset = prog.offsets[i]
        size = prog.sizes[i]
        op = OPS_BY_CODE[prog.ops[i]]
        self._request_count += 1
        if self._checker is not None:
            self._checker.on_clock(now, self.env)
            self._checker.on_record(prog.name, prog.index, size)
        env = self.env
        kernel = env.kernel
        policy = self.policy
        service = self.router.service
        sinks = self._sinks_hot
        # Inlined env.advance(now): one frame per record adds up.
        env.disk.advance_to(now)
        env.wnic.advance_to(now)
        policy.on_tick(now)

        if op is OpType.READ:
            extents = kernel.read(pid, inode, offset, size, now)
            completion = now
            for extent in extents:
                _source, result = service(
                    prog, extent, completion, OpType.READ)
                completion = result.completion
                if sinks is not None:
                    sinks.on_service(prog.name, _source.value,
                                     extent.nbytes, result.energy,
                                     result.completion)
        else:
            forced = kernel.write(pid, inode, offset, size, now)
            completion = now  # async write-back: write() returns at once
            for extent in forced:
                # Forced evictions must hit a device immediately; they
                # run asynchronously and do not delay the program.
                source, result = service(prog, extent, now, OpType.WRITE)
                if sinks is not None:
                    sinks.on_service(prog.name, source.value,
                                     extent.nbytes, result.energy,
                                     result.completion)

        # Laptop-mode opportunistic flush.
        flush = kernel.plan_writeback(
            completion, disk_active=env.disk_active)
        for extent in flush:
            source, result = service(prog, extent, completion,
                                     OpType.WRITE)
            if sinks is not None:
                sinks.on_service(prog.name, source.value,
                                 extent.nbytes, result.energy,
                                 result.completion)

        if prog.spec.profiled and size > 0:
            # Demand-level observation (§2.1): every data-moving call,
            # cached or not, with the application's byte count.
            policy.on_syscall(RequestContext(
                now=now, program=prog.name, profiled=True,
                disk_pinned=prog.spec.disk_pinned, inode=inode,
                offset=offset, nbytes=size, op=op),
                now, completion)
            if sinks is not None:
                sinks.on_syscall(prog.name, op.value, size, now)

        prog.last_completion = completion
        return completion

    # ------------------------------------------------------------------
    # BurstPlan fast path
    # ------------------------------------------------------------------
    def _burst_plan(self):
        """The fast path's plan, or None when it must disengage.

        Event-granular replay stays in charge whenever dynamic state
        the plan cannot capture is present: multiple programs
        interleave on the shared cache and disk, a fault schedule
        perturbs device behaviour mid-run, or strict invariant checking
        wants to observe the event clock.  Writes disqualify a trace
        inside :func:`~repro.sim.plan.plan_for` itself.
        """
        if (len(self.programs) != 1 or self.faults is not None
                or self._checker is not None):
            return None
        return plan_for(self._program_specs[0].trace,
                        self._memory_bytes, self._seed)

    def _replay_plan(self, prog: ProgramDriver) -> None:
        """Flat-clock replay of one program over its BurstPlan.

        Clock semantics mirror the event loop exactly: the first record
        fires at ``max(start_time, 0.0)`` and each next record at
        ``max(completion + think, now)`` — the same clamp
        ``schedule_at`` applies when it pins an event time.
        """
        if prog.done:
            return
        if prog.start_time < -TIME_EPSILON:
            raise SimulationError(
                f"cannot schedule at {prog.start_time} before now 0.0")
        now = max(prog.start_time, 0.0)
        while True:
            completion = self._service_record(prog, now)
            think = prog.advance()
            if think is None:
                return
            t = completion + think
            if t > now:
                now = t

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Replay everything; returns the accounting."""
        if self._ran:
            raise SimulationError(
                "session already ran; build a fresh SimulationSession"
                " (policies and devices are stateful)")
        self._materialise()
        self._ran = True
        plan = self._burst_plan() if self._fast_path else None
        self.used_fast_path = plan is not None
        if plan is not None:
            # Swap the kernel surface for the plan replayer before the
            # policy attaches — every residency query and extent fetch
            # from here on is answered from the frozen plan.
            cursor = PlanCursor(plan)
            self.env.kernel = cursor
            self.env.vfs = cursor
        self.policy.attach(self.env)
        self.policy.begin_run(0.0)
        self.sinks.on_run_begin(self.policy.name, 0.0)
        self._sinks_hot = self.sinks if len(self.sinks) else None
        if plan is not None:
            self._replay_plan(self.programs[0])
        else:
            for prog in self.programs:
                if not prog.done:
                    self.loop.schedule_at(prog.start_time,
                                          lambda p=prog: self._process(p),
                                          label=f"{prog.name}[0]")
            self.loop.run()
        end_time = max((p.last_completion for p in self.programs),
                       default=0.0)
        # Asynchronous flushes and in-flight transitions can commit the
        # devices past the last program completion; the run ends (and
        # energy/residency are measured) once all I/O has settled, so
        # the books balance exactly.
        end_time = max(end_time, self.env.disk.busy_until,
                       self.env.wnic.busy_until)
        self.env.advance(end_time)
        self.policy.end_run(end_time)

        fg_time = max((p.last_completion for p in self.programs
                       if p.spec.profiled), default=0.0)
        result = build_run_result(
            self.env, policy_name=self.policy.name,
            routed_requests={k.value: v for k, v
                             in self.policy.routed_requests.items()},
            routed_bytes={k.value: v for k, v
                          in self.policy.routed_bytes.items()},
            end_time=end_time, foreground_time=fg_time,
            requests=self._request_count,
            fault_retries=self.router.fault_retries,
            fault_failovers=self.router.fault_failovers,
            fault_wasted_energy=self.router.fault_wasted)
        if self._checker is not None:
            expected = {
                p.name: (p.record_count, p.total_bytes)
                for p in self.programs}
            self._checker.on_end(result, expected,
                                 disk_spec=self.env.disk.spec,
                                 wnic_spec=self.env.wnic.spec)
        self.sinks.on_run_end(result)
        return result
