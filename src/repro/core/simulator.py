"""Trace-driven closed-loop replay (§3.1).

"We built a simulator that is driven by real-life applications'
execution traces...  It simulates the management of two storage devices
(hard disk and wireless interface card) and the buffer cache in the
memory."  This module is that simulator:

* each program replays **closed-loop**: request *i+1* issues one
  recorded think time after request *i* completes, so slow devices
  stretch the run (and the performance-loss rule has teeth);
* every syscall walks the kernel path (cache -> readahead -> miss
  extents); only misses reach a device;
* the policy under test routes each miss extent to the disk or the
  WNIC; devices integrate energy continuously, including DPM timeouts
  firing inside think gaps;
* non-profiled, disk-pinned background programs (xmms in §3.3.4) share
  the disk and the cache and are reported to the policy as external
  disk activity;
* laptop-mode write-back flushes piggy-back on an active disk and are
  asynchronous (they cost device time and energy but never delay the
  program).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.decision import DataSource
from repro.core.policies import Policy, RequestContext
from repro.devices.disk import DiskState, HardDisk
from repro.devices.dpm import SpindownPolicy
from repro.devices.layout import BLOCK_SIZE, DiskLayout
from repro.devices.specs import HITACHI_DK23DA, AIRONET_350, DiskSpec, WnicSpec
from repro.devices.wnic import Direction, WirelessNic, WnicMode
from repro.kernel.page import Extent
from repro.kernel.scheduler import CScanScheduler, DiskExtent
from repro.kernel.vfs import VirtualFileSystem
from repro.sim.clock import MB
from repro.sim.engine import EventLoop
from repro.traces.record import OpType, SyscallRecord
from repro.traces.trace import Trace


@dataclass(frozen=True, slots=True)
class ProgramSpec:
    """One program participating in a replay.

    ``profiled`` — FlexFetch has (or builds) a profile for it;
    ``disk_pinned`` — its data exists only on the local disk (no remote
    replica), so every request must go to the disk.
    """

    trace: Trace
    profiled: bool = True
    disk_pinned: bool = False


@dataclass
class RunResult:
    """Everything a replay produces."""

    policy: str
    end_time: float
    foreground_time: float
    disk_energy: float
    wnic_energy: float
    requests: int
    device_requests: dict[str, int]
    device_bytes: dict[str, int]
    cache_hit_ratio: float
    disk_spinups: int
    disk_spindowns: int
    wnic_wakeups: int
    disk_breakdown: dict[str, float] = field(default_factory=dict)
    wnic_breakdown: dict[str, float] = field(default_factory=dict)
    disk_residency: dict[str, float] = field(default_factory=dict)
    wnic_residency: dict[str, float] = field(default_factory=dict)

    @property
    def total_energy(self) -> float:
        """Total I/O energy: disk plus WNIC (the paper's y-axis)."""
        return self.disk_energy + self.wnic_energy

    def summary(self) -> str:
        """One-line human-readable result."""
        return (f"{self.policy:18s} E={self.total_energy:8.1f} J"
                f" (disk {self.disk_energy:7.1f} / wnic"
                f" {self.wnic_energy:7.1f})  T={self.end_time:8.1f} s")


class MobileSystem:
    """Shared environment: devices, kernel path, and disk layout."""

    def __init__(self, *, disk_spec: DiskSpec = HITACHI_DK23DA,
                 wnic_spec: WnicSpec = AIRONET_350,
                 memory_bytes: int = 64 * MB,
                 seed: int = 0,
                 spindown_policy: SpindownPolicy | None = None) -> None:
        self.disk = HardDisk(disk_spec, spindown_policy=spindown_policy)
        self.wnic = WirelessNic(wnic_spec)
        self.vfs = VirtualFileSystem(memory_bytes)
        self.layout = DiskLayout(seed)
        self.scheduler = CScanScheduler()

    def register_trace(self, trace: Trace) -> None:
        """Make a trace's files known to the VFS and the disk layout."""
        for info in sorted(trace.files.values(), key=lambda f: f.inode):
            self.vfs.register_file(info.inode, info.size_bytes)
            self.layout.add_file(info.inode, max(info.size_bytes, 1))

    @property
    def disk_active(self) -> bool:
        """Disk spinning (idle or active)?"""
        return self.disk.state != DiskState.STANDBY.value

    def advance(self, now: float) -> None:
        """Advance both devices (DPM timers fire as needed)."""
        self.disk.advance_to(now)
        self.wnic.advance_to(now)


class _ProgramState:
    """Replay cursor of one program."""

    def __init__(self, spec: ProgramSpec) -> None:
        self.spec = spec
        self.records: list[SyscallRecord] = spec.trace.data_records()
        # Closed-loop think times: gap between call i's return and call
        # i+1's entry in the recording.
        self.thinks: list[float] = [
            max(0.0, nxt.timestamp - cur.end_time)
            for cur, nxt in zip(self.records, self.records[1:])
        ]
        self.index = 0
        self.last_completion = 0.0
        self.done = not self.records

    @property
    def name(self) -> str:
        return self.spec.trace.name


class ReplaySimulator:
    """Replays programs under a policy and accounts the energy."""

    def __init__(self, programs: list[ProgramSpec], policy: Policy, *,
                 disk_spec: DiskSpec = HITACHI_DK23DA,
                 wnic_spec: WnicSpec = AIRONET_350,
                 memory_bytes: int = 64 * MB,
                 seed: int = 0,
                 spindown_policy: SpindownPolicy | None = None) -> None:
        if not programs:
            raise ValueError("need at least one program")
        self.env = MobileSystem(disk_spec=disk_spec, wnic_spec=wnic_spec,
                                memory_bytes=memory_bytes, seed=seed,
                                spindown_policy=spindown_policy)
        for spec in programs:
            self.env.register_trace(spec.trace)
        self.policy = policy
        self.programs = [_ProgramState(s) for s in programs]
        self.loop = EventLoop()
        self._request_count = 0

    # ------------------------------------------------------------------
    # device service
    # ------------------------------------------------------------------
    def _service_extent(self, extent: Extent, source: DataSource,
                        when: float, op: OpType):
        """Move one extent on the chosen device, returning its result."""
        if source is DataSource.DISK:
            block = self.env.layout.block_of(extent.inode,
                                             extent.start * BLOCK_SIZE)
            return self.env.disk.service(when, extent.nbytes, block=block,
                                         block_count=extent.npages)
        direction = Direction.RECV if op is OpType.READ else Direction.SEND
        return self.env.wnic.service(when, extent.nbytes,
                                     direction=direction)

    def _route_and_service(self, prog: _ProgramState, extent: Extent,
                           when: float, op: OpType) -> float:
        """Policy-route one extent; returns its completion time."""
        ctx = RequestContext(
            now=when, program=prog.name, profiled=prog.spec.profiled,
            disk_pinned=prog.spec.disk_pinned, inode=extent.inode,
            offset=extent.start * BLOCK_SIZE, nbytes=extent.nbytes, op=op)
        source = self.policy.route(ctx)
        result = self._service_extent(extent, source, when, op)
        if op is OpType.READ:
            self.env.vfs.complete_fetch(extent, result.completion)
        if not prog.spec.profiled and source is DataSource.DISK:
            self.policy.on_external_disk_request(when)
        self.policy.on_serviced(ctx, source, result)
        return result.completion

    def _order_for_disk(self, extents: list[Extent]) -> list[Extent]:
        """C-SCAN-order a batch of extents by their disk placement."""
        if len(extents) <= 1:
            return extents
        requests = [
            DiskExtent(extent=e,
                       start_block=self.env.layout.block_of(
                           e.inode, e.start * BLOCK_SIZE))
            for e in extents
        ]
        return [r.extent for r in self.env.scheduler.order(requests)]

    # ------------------------------------------------------------------
    # syscall processing
    # ------------------------------------------------------------------
    def _process(self, prog: _ProgramState) -> None:
        now = self.loop.now
        rec = prog.records[prog.index]
        self._request_count += 1
        self.env.advance(now)
        self.policy.on_tick(now)

        if rec.op is OpType.READ:
            plan = self.env.vfs.read(rec.pid, rec.inode, rec.offset,
                                     rec.size, now)
            completion = now
            extents = self._order_for_disk(list(plan.fetch_extents))
            for extent in extents:
                completion = self._route_and_service(
                    prog, extent, completion, OpType.READ)
        else:
            forced = self.env.vfs.write(rec.pid, rec.inode, rec.offset,
                                        rec.size, now)
            completion = now  # async write-back: write() returns at once
            for extent in forced:
                # Forced evictions must hit a device immediately; they
                # run asynchronously and do not delay the program.
                self._route_and_service(prog, extent, now, OpType.WRITE)

        # Laptop-mode opportunistic flush.
        flush = self.env.vfs.plan_writeback(
            completion, disk_active=self.env.disk_active)
        for extent in flush:
            self._route_and_service(prog, extent, completion, OpType.WRITE)

        if prog.spec.profiled and rec.size > 0:
            # Demand-level observation (§2.1): every data-moving call,
            # cached or not, with the application's byte count.
            self.policy.on_syscall(RequestContext(
                now=now, program=prog.name, profiled=True,
                disk_pinned=prog.spec.disk_pinned, inode=rec.inode,
                offset=rec.offset, nbytes=rec.size, op=rec.op),
                now, completion)

        prog.last_completion = completion
        prog.index += 1
        if prog.index >= len(prog.records):
            prog.done = True
            return
        think = prog.thinks[prog.index - 1]
        self.loop.schedule_at(completion + think,
                              lambda p=prog: self._process(p),
                              label=f"{prog.name}[{prog.index}]")

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Replay everything; returns the accounting."""
        self.policy.attach(self.env)
        self.policy.begin_run(0.0)
        for prog in self.programs:
            if not prog.done:
                first = prog.records[0]
                self.loop.schedule_at(first.timestamp,
                                      lambda p=prog: self._process(p),
                                      label=f"{prog.name}[0]")
        self.loop.run()
        end_time = max((p.last_completion for p in self.programs),
                       default=0.0)
        # Asynchronous flushes and in-flight transitions can commit the
        # devices past the last program completion; the run ends (and
        # energy/residency are measured) once all I/O has settled, so
        # the books balance exactly.
        end_time = max(end_time, self.env.disk.busy_until,
                       self.env.wnic.busy_until)
        self.env.advance(end_time)
        self.policy.end_run(end_time)

        fg_time = max((p.last_completion for p in self.programs
                       if p.spec.profiled), default=0.0)
        disk_e = self.env.disk.energy(end_time)
        wnic_e = self.env.wnic.energy(end_time)
        return RunResult(
            policy=self.policy.name,
            end_time=end_time,
            foreground_time=fg_time,
            disk_energy=disk_e,
            wnic_energy=wnic_e,
            requests=self._request_count,
            device_requests={k.value: v for k, v
                             in self.policy.routed_requests.items()},
            device_bytes={k.value: v for k, v
                          in self.policy.routed_bytes.items()},
            cache_hit_ratio=self.env.vfs.cache.stats.hit_ratio,
            disk_spinups=self.env.disk.spinup_count,
            disk_spindowns=self.env.disk.spindown_count,
            wnic_wakeups=self.env.wnic.wakeup_count,
            disk_breakdown=self.env.disk.meter.breakdown(),
            wnic_breakdown=self.env.wnic.meter.breakdown(),
            disk_residency=self.env.disk.residency(end_time),
            wnic_residency=self.env.wnic.residency(end_time),
        )
