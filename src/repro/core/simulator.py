"""Deprecated home of the replay simulator (use the session facade).

The monolithic ``ReplaySimulator`` was decomposed into explicit layers:

* workload drivers   -> :mod:`repro.core.workload`
* kernel path        -> :mod:`repro.kernel.path`
* device services    -> :mod:`repro.devices.service`
* policy routing     -> :mod:`repro.core.routing`
* telemetry / result -> :mod:`repro.core.telemetry`
* the wiring         -> :class:`repro.core.session.SimulationSession`

New code should construct a :class:`~repro.core.session.SimulationSession`
directly.  This module keeps the old names importable —
``ReplaySimulator``, ``ProgramSpec``, ``RunResult``, ``MobileSystem`` —
with identical behaviour (bit-for-bit identical results for identical
seeds), as a thin shim over the session.
"""

from __future__ import annotations

import warnings

from repro.core.policies import Policy
from repro.core.session import SimulationSession
from repro.core.system import MobileSystem
from repro.core.telemetry import RunResult
from repro.core.workload import ProgramDriver, ProgramSpec
from repro.devices.dpm import SpindownPolicy
from repro.devices.specs import AIRONET_350, HITACHI_DK23DA, DiskSpec, WnicSpec
from repro.faults.schedule import FaultSchedule
from repro.sim.clock import MB
from repro.units import Bytes

__all__ = [
    "MobileSystem",
    "ProgramSpec",
    "ReplaySimulator",
    "RunResult",
]

#: old private name, kept for introspection-heavy callers.
_ProgramState = ProgramDriver


class ReplaySimulator(SimulationSession):
    """Deprecated alias of :class:`SimulationSession`.

    Unlike the lazily materialised session, the legacy constructor built
    the whole environment eagerly (``sim.env``, ``sim.programs`` were
    inspectable before ``run()``, and an empty program list raised at
    construction).  The shim preserves that by materialising in
    ``__init__``.
    """

    def __init__(self, programs: list[ProgramSpec], policy: Policy, *,
                 disk_spec: DiskSpec = HITACHI_DK23DA,
                 wnic_spec: WnicSpec = AIRONET_350,
                 memory_bytes: Bytes = 64 * MB,
                 seed: int = 0,
                 spindown_policy: SpindownPolicy | None = None,
                 faults: FaultSchedule | None = None,
                 strict: bool = False) -> None:
        # stacklevel=2: report the *caller's* construction site, not
        # this __init__, so the warning is actionable from the console.
        warnings.warn(
            "ReplaySimulator is deprecated; construct"
            " repro.core.session.SimulationSession instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(programs, policy, disk_spec=disk_spec,
                         wnic_spec=wnic_spec, memory_bytes=memory_bytes,
                         seed=seed, spindown_policy=spindown_policy,
                         faults=faults, strict=strict)
        self._materialise()
