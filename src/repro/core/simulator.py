"""Trace-driven closed-loop replay (§3.1).

"We built a simulator that is driven by real-life applications'
execution traces...  It simulates the management of two storage devices
(hard disk and wireless interface card) and the buffer cache in the
memory."  This module is that simulator:

* each program replays **closed-loop**: request *i+1* issues one
  recorded think time after request *i* completes, so slow devices
  stretch the run (and the performance-loss rule has teeth);
* every syscall walks the kernel path (cache -> readahead -> miss
  extents); only misses reach a device;
* the policy under test routes each miss extent to the disk or the
  WNIC; devices integrate energy continuously, including DPM timeouts
  firing inside think gaps;
* non-profiled, disk-pinned background programs (xmms in §3.3.4) share
  the disk and the cache and are reported to the policy as external
  disk activity;
* laptop-mode write-back flushes piggy-back on an active disk and are
  asynchronous (they cost device time and energy but never delay the
  program).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.decision import DataSource
from repro.core.policies import Policy, RequestContext
from repro.devices.disk import DiskServiceResult, DiskState, HardDisk
from repro.devices.dpm import SpindownPolicy
from repro.devices.layout import BLOCK_SIZE, DiskLayout
from repro.devices.specs import HITACHI_DK23DA, AIRONET_350, DiskSpec, WnicSpec
from repro.devices.wnic import Direction, WirelessNic, WnicServiceResult
from repro.faults.invariants import InvariantChecker
from repro.faults.schedule import FaultSchedule
from repro.kernel.page import Extent
from repro.kernel.scheduler import CScanScheduler, DiskExtent
from repro.kernel.vfs import VirtualFileSystem
from repro.sim.clock import MB
from repro.sim.engine import EventLoop, SimulationError
from repro.traces.record import OpType, SyscallRecord
from repro.traces.trace import Trace
from repro.units import Bytes, Joules, Seconds


@dataclass(frozen=True, slots=True)
class ProgramSpec:
    """One program participating in a replay.

    ``profiled`` — FlexFetch has (or builds) a profile for it;
    ``disk_pinned`` — its data exists only on the local disk (no remote
    replica), so every request must go to the disk.
    """

    trace: Trace
    profiled: bool = True
    disk_pinned: bool = False


@dataclass
class RunResult:
    """Everything a replay produces."""

    policy: str
    end_time: Seconds
    foreground_time: Seconds
    disk_energy: Joules
    wnic_energy: Joules
    requests: int
    device_requests: dict[str, int]
    device_bytes: dict[str, int]
    cache_hit_ratio: float
    disk_spinups: int
    disk_spindowns: int
    wnic_wakeups: int
    disk_breakdown: dict[str, float] = field(default_factory=dict)
    wnic_breakdown: dict[str, float] = field(default_factory=dict)
    disk_residency: dict[str, float] = field(default_factory=dict)
    wnic_residency: dict[str, float] = field(default_factory=dict)
    #: fault-injection accounting (all zero without a fault schedule).
    disk_spinup_failures: int = 0
    fault_retries: dict[str, int] = field(default_factory=dict)
    fault_failovers: dict[str, int] = field(default_factory=dict)
    fault_wasted_energy: dict[str, float] = field(default_factory=dict)

    @property
    def total_energy(self) -> Joules:
        """Total I/O energy: disk plus WNIC (the paper's y-axis)."""
        return self.disk_energy + self.wnic_energy

    def summary(self) -> str:
        """One-line human-readable result."""
        return (f"{self.policy:18s} E={self.total_energy:8.1f} J"
                f" (disk {self.disk_energy:7.1f} / wnic"
                f" {self.wnic_energy:7.1f})  T={self.end_time:8.1f} s")


class MobileSystem:
    """Shared environment: devices, kernel path, and disk layout."""

    def __init__(self, *, disk_spec: DiskSpec = HITACHI_DK23DA,
                 wnic_spec: WnicSpec = AIRONET_350,
                 memory_bytes: Bytes = 64 * MB,
                 seed: int = 0,
                 spindown_policy: SpindownPolicy | None = None) -> None:
        self.disk = HardDisk(disk_spec, spindown_policy=spindown_policy)
        self.wnic = WirelessNic(wnic_spec)
        self.vfs = VirtualFileSystem(memory_bytes)
        self.layout = DiskLayout(seed)
        self.scheduler = CScanScheduler()

    def register_trace(self, trace: Trace) -> None:
        """Make a trace's files known to the VFS and the disk layout."""
        for info in sorted(trace.files.values(), key=lambda f: f.inode):
            self.vfs.register_file(info.inode, info.size_bytes)
            self.layout.add_file(info.inode, max(info.size_bytes, 1))

    @property
    def disk_active(self) -> bool:
        """Disk spinning (idle or active)?"""
        return self.disk.state != DiskState.STANDBY.value

    def advance(self, now: Seconds) -> None:
        """Advance both devices (DPM timers fire as needed)."""
        self.disk.advance_to(now)
        self.wnic.advance_to(now)


class _ProgramState:
    """Replay cursor of one program."""

    def __init__(self, spec: ProgramSpec) -> None:
        self.spec = spec
        self.records: list[SyscallRecord] = spec.trace.data_records()
        # Closed-loop think times: gap between call i's return and call
        # i+1's entry in the recording.
        self.thinks: list[float] = [
            max(0.0, nxt.timestamp - cur.end_time)
            for cur, nxt in zip(self.records, self.records[1:], strict=False)
        ]
        self.index = 0
        self.last_completion = 0.0
        self.done = not self.records

    @property
    def name(self) -> str:
        return self.spec.trace.name


class ReplaySimulator:
    """Replays programs under a policy and accounts the energy."""

    #: circuit breaker on one request's fault-recovery chain; pathological
    #: hand-built schedules aside, the consecutive-spin-up-failure cap in
    #: :class:`FaultSchedule` guarantees success far below this.
    MAX_FAULT_ATTEMPTS = 32

    def __init__(self, programs: list[ProgramSpec], policy: Policy, *,
                 disk_spec: DiskSpec = HITACHI_DK23DA,
                 wnic_spec: WnicSpec = AIRONET_350,
                 memory_bytes: Bytes = 64 * MB,
                 seed: int = 0,
                 spindown_policy: SpindownPolicy | None = None,
                 faults: FaultSchedule | None = None,
                 strict: bool = False) -> None:
        if not programs:
            raise ValueError("need at least one program")
        self.env = MobileSystem(disk_spec=disk_spec, wnic_spec=wnic_spec,
                                memory_bytes=memory_bytes, seed=seed,
                                spindown_policy=spindown_policy)
        for spec in programs:
            self.env.register_trace(spec.trace)
        self.policy = policy
        self.programs = [_ProgramState(s) for s in programs]
        self.loop = EventLoop()
        self._request_count = 0
        # A schedule with nothing scheduled must be a strict no-op: the
        # devices never see it and every float path stays byte-identical.
        self.faults = faults if faults is not None and faults.enabled \
            else None
        if self.faults is not None:
            self.env.disk.set_fault_schedule(self.faults)
            self.env.wnic.set_fault_schedule(self.faults)
        self._checker = InvariantChecker() if strict else None
        self._avoid_until = {DataSource.DISK: float("-inf"),
                             DataSource.NETWORK: float("-inf")}
        self._fault_retries: dict[str, int] = {}
        self._fault_failovers: dict[str, int] = {}
        self._fault_wasted: dict[str, float] = {}

    # ------------------------------------------------------------------
    # device service
    # ------------------------------------------------------------------
    def _service_extent(
            self, extent: Extent, source: DataSource, when: Seconds,
            op: OpType) -> DiskServiceResult | WnicServiceResult:
        """Move one extent on the chosen device, returning its result."""
        if source is DataSource.DISK:
            block = self.env.layout.block_of(extent.inode,
                                             extent.start * BLOCK_SIZE)
            return self.env.disk.service(when, extent.nbytes, block=block,
                                         block_count=extent.npages)
        direction = Direction.RECV if op is OpType.READ else Direction.SEND
        return self.env.wnic.service(when, extent.nbytes,
                                     direction=direction)

    def _route_and_service(self, prog: _ProgramState, extent: Extent,
                           when: Seconds, op: OpType) -> float:
        """Policy-route one extent; returns its completion time."""
        ctx = RequestContext(
            now=when, program=prog.name, profiled=prog.spec.profiled,
            disk_pinned=prog.spec.disk_pinned, inode=extent.inode,
            offset=extent.start * BLOCK_SIZE, nbytes=extent.nbytes, op=op)
        source = self.policy.route(ctx)
        if self.faults is None:
            result = self._service_extent(extent, source, when, op)
        else:
            source, result = self._service_with_recovery(
                prog, extent, source, when, op, ctx)
        if op is OpType.READ:
            self.env.vfs.complete_fetch(extent, result.completion)
        if not prog.spec.profiled and source is DataSource.DISK:
            self.policy.on_external_disk_request(when)
        self.policy.on_serviced(ctx, source, result)
        if self._checker is not None:
            self._checker.on_service(result, program=prog.name,
                                     source=source.value)
        return result.completion

    # ------------------------------------------------------------------
    # fault recovery
    # ------------------------------------------------------------------
    def _effective_source(self, intended: DataSource,
                          ctx: RequestContext) -> DataSource:
        """Honour failover cooldowns: avoid a recently failed device."""
        if ctx.disk_pinned:
            return DataSource.DISK
        other = (DataSource.NETWORK if intended is DataSource.DISK
                 else DataSource.DISK)
        if (ctx.now < self._avoid_until[intended]
                and ctx.now >= self._avoid_until[other]):
            return other
        return intended

    def _service_with_recovery(
            self, prog: _ProgramState, extent: Extent,
            intended: DataSource, when: Seconds, op: OpType,
            ctx: RequestContext,
    ) -> tuple[DataSource, DiskServiceResult | WnicServiceResult]:
        """Service under faults: timeout -> backoff retries -> failover.

        A network fetch that hits an outage times out after
        ``spec.network_timeout`` and is retried with exponential backoff;
        once the retry budget is spent the request fails over mid-stage
        to the disk.  Symmetrically a disk whose spin-up retries are
        exhausted (the device retries internally) fails over to the
        WNIC.  Disk-pinned data has no replica, so it can only back off
        and retry the disk.  Returns ``(actual_source, result)``.
        """
        spec = self.faults.spec
        current = self._effective_source(intended, ctx)
        t = when
        attempts_on = {DataSource.DISK: 0, DataSource.NETWORK: 0}
        total_attempts = 0
        cross_energy = 0.0
        while True:
            result = self._service_extent(extent, current, t, op)
            if current is not intended:
                cross_energy += result.energy
            if not getattr(result, "failed", False):
                break
            total_attempts += 1
            attempts_on[current] += 1
            self._fault_retries[current.value] = \
                self._fault_retries.get(current.value, 0) + 1
            self._fault_wasted[current.value] = \
                self._fault_wasted.get(current.value, 0.0) + result.energy
            if total_attempts >= self.MAX_FAULT_ATTEMPTS:
                raise SimulationError(
                    f"fault recovery for {prog.name!r} exceeded"
                    f" {self.MAX_FAULT_ATTEMPTS} attempts at"
                    f" t={result.completion:.3f}")
            t = result.completion
            # The disk retries spin-up internally (bounded backoff), so a
            # failed disk service has already spent its budget.
            budget = (spec.network_retries
                      if current is DataSource.NETWORK else 0)
            if attempts_on[current] > budget and not ctx.disk_pinned:
                fallback = (DataSource.DISK
                            if current is DataSource.NETWORK
                            else DataSource.NETWORK)
                self._avoid_until[current] = t + spec.failover_cooldown
                self._fault_failovers[current.value] = \
                    self._fault_failovers.get(current.value, 0) + 1
                self.policy.on_failover(t, current, fallback)
                current = fallback
                attempts_on[current] = 0
            else:
                t += spec.retry_backoff * 2 ** (attempts_on[current] - 1)
        if total_attempts or cross_energy:
            # Tell the policy so its stage-end audit can attribute the
            # retry waste / cross-device service to the intended source.
            self.policy.on_fault(result.completion, intended,
                                 cross_energy, total_attempts)
        if current is not intended:
            # The route() tally charged the intended device; move it.
            self.policy.routed_requests[intended] -= 1
            self.policy.routed_bytes[intended] -= ctx.nbytes
            self.policy.routed_requests[current] += 1
            self.policy.routed_bytes[current] += ctx.nbytes
        return current, result

    def _order_for_disk(self, extents: list[Extent]) -> list[Extent]:
        """C-SCAN-order a batch of extents by their disk placement."""
        if len(extents) <= 1:
            return extents
        requests = [
            DiskExtent(extent=e,
                       start_block=self.env.layout.block_of(
                           e.inode, e.start * BLOCK_SIZE))
            for e in extents
        ]
        return [r.extent for r in self.env.scheduler.order(requests)]

    # ------------------------------------------------------------------
    # syscall processing
    # ------------------------------------------------------------------
    def _process(self, prog: _ProgramState) -> None:
        now = self.loop.now
        rec = prog.records[prog.index]
        self._request_count += 1
        if self._checker is not None:
            self._checker.on_clock(now, self.env)
            self._checker.on_record(prog.name, prog.index, rec.size)
        self.env.advance(now)
        self.policy.on_tick(now)

        if rec.op is OpType.READ:
            plan = self.env.vfs.read(rec.pid, rec.inode, rec.offset,
                                     rec.size, now)
            completion = now
            extents = self._order_for_disk(list(plan.fetch_extents))
            for extent in extents:
                completion = self._route_and_service(
                    prog, extent, completion, OpType.READ)
        else:
            forced = self.env.vfs.write(rec.pid, rec.inode, rec.offset,
                                        rec.size, now)
            completion = now  # async write-back: write() returns at once
            for extent in forced:
                # Forced evictions must hit a device immediately; they
                # run asynchronously and do not delay the program.
                self._route_and_service(prog, extent, now, OpType.WRITE)

        # Laptop-mode opportunistic flush.
        flush = self.env.vfs.plan_writeback(
            completion, disk_active=self.env.disk_active)
        for extent in flush:
            self._route_and_service(prog, extent, completion, OpType.WRITE)

        if prog.spec.profiled and rec.size > 0:
            # Demand-level observation (§2.1): every data-moving call,
            # cached or not, with the application's byte count.
            self.policy.on_syscall(RequestContext(
                now=now, program=prog.name, profiled=True,
                disk_pinned=prog.spec.disk_pinned, inode=rec.inode,
                offset=rec.offset, nbytes=rec.size, op=rec.op),
                now, completion)

        prog.last_completion = completion
        prog.index += 1
        if prog.index >= len(prog.records):
            prog.done = True
            return
        think = prog.thinks[prog.index - 1]
        self.loop.schedule_at(completion + think,
                              lambda p=prog: self._process(p),
                              label=f"{prog.name}[{prog.index}]")

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Replay everything; returns the accounting."""
        self.policy.attach(self.env)
        self.policy.begin_run(0.0)
        for prog in self.programs:
            if not prog.done:
                first = prog.records[0]
                self.loop.schedule_at(first.timestamp,
                                      lambda p=prog: self._process(p),
                                      label=f"{prog.name}[0]")
        self.loop.run()
        end_time = max((p.last_completion for p in self.programs),
                       default=0.0)
        # Asynchronous flushes and in-flight transitions can commit the
        # devices past the last program completion; the run ends (and
        # energy/residency are measured) once all I/O has settled, so
        # the books balance exactly.
        end_time = max(end_time, self.env.disk.busy_until,
                       self.env.wnic.busy_until)
        self.env.advance(end_time)
        self.policy.end_run(end_time)

        fg_time = max((p.last_completion for p in self.programs
                       if p.spec.profiled), default=0.0)
        disk_e = self.env.disk.energy(end_time)
        wnic_e = self.env.wnic.energy(end_time)
        result = RunResult(
            policy=self.policy.name,
            end_time=end_time,
            foreground_time=fg_time,
            disk_energy=disk_e,
            wnic_energy=wnic_e,
            requests=self._request_count,
            device_requests={k.value: v for k, v
                             in self.policy.routed_requests.items()},
            device_bytes={k.value: v for k, v
                          in self.policy.routed_bytes.items()},
            cache_hit_ratio=self.env.vfs.cache.stats.hit_ratio,
            disk_spinups=self.env.disk.spinup_count,
            disk_spindowns=self.env.disk.spindown_count,
            wnic_wakeups=self.env.wnic.wakeup_count,
            disk_breakdown=self.env.disk.meter.breakdown(),
            wnic_breakdown=self.env.wnic.meter.breakdown(),
            disk_residency=self.env.disk.residency(end_time),
            wnic_residency=self.env.wnic.residency(end_time),
            disk_spinup_failures=self.env.disk.spinup_failure_count,
            fault_retries=dict(self._fault_retries),
            fault_failovers=dict(self._fault_failovers),
            fault_wasted_energy=dict(self._fault_wasted),
        )
        if self._checker is not None:
            expected = {
                p.name: (len(p.records), sum(r.size for r in p.records))
                for p in self.programs}
            self._checker.on_end(result, expected,
                                 disk_spec=self.env.disk.spec,
                                 wnic_spec=self.env.wnic.spec)
        return result
