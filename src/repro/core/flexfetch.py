"""The FlexFetch policy (§2) and its static ablation.

FlexFetch proactively picks the data source for each *evaluation stage*
from a recorded execution profile (§2.2: the upcoming profile slice is
replayed through clones of both devices and the three decision rules
pick with the user's loss rate), then keeps the decision honest against
runtime dynamics (§2.3): splice re-evaluation as observed bursts close
(§2.3.1), the stage-end audit against a counterfactual replay on the
alternative device (§2.3.1, see :mod:`repro.core.audit`), the
buffer-cache filter (§2.3.2), and free-riding on an externally
kept-alive disk (§2.3.3).

All device arithmetic goes through the system's shared
:class:`~repro.core.costmodel.CostModel`; this module holds only the
decision machinery.  ``FlexFetchConfig(adaptive=False)`` yields
**FlexFetch-static**, the §3.3.4 ablation with profile-driven decisions
but none of the runtime adaptation (its tunables live in
:mod:`repro.core.flexfetch_config`).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.core.audit import StageAccounting, audit_stage
from repro.core.burst import OnlineBurstTracker, ProfiledRequest
from repro.core.decision import DataSource, DecisionInputs, decide
from repro.core.flexfetch_config import FlexFetchConfig
from repro.core.policies import Policy, RequestContext
from repro.core.profile import ExecutionProfile
from repro.units import Joules, Seconds

__all__ = ["FlexFetchConfig", "FlexFetchPolicy"]

#: old private name, kept importable for introspection-heavy callers.
_StageAccounting = StageAccounting


class FlexFetchPolicy(Policy):
    """History-aware, environment-adaptive data-source selection.

    Parameters
    ----------
    profile:
        The recorded :class:`ExecutionProfile` of a prior run ("the
        profile that has been recorded for the program", §2.2).  For the
        §3.3.5 invalid-profile experiment this intentionally differs
        from the trace being replayed.
    config:
        Tunables; ``FlexFetchConfig(adaptive=False)`` = FlexFetch-static.
    """

    name = "FlexFetch"

    @classmethod
    def for_programs(cls, profiles: list[ExecutionProfile],
                     config: FlexFetchConfig | None = None
                     ) -> FlexFetchPolicy:
        """Build a policy for concurrently running profiled programs.

        §2.3.4: "When multiple programs concurrently issue I/O requests,
        FlexFetch merges these programs' profiles and forms evaluation
        stage on the aggregate profile."  The profiles are interleaved
        on their recorded timelines and the result drives one shared
        policy instance (the runtime tracker already aggregates all
        profiled programs' syscalls).
        """
        if not profiles:
            raise ValueError("need at least one profile")
        merged = profiles[0]
        for other in profiles[1:]:
            merged = merged.merged_with(other)
        return cls(merged, config)

    def __init__(self, profile: ExecutionProfile,
                 config: FlexFetchConfig | None = None) -> None:
        super().__init__()
        self.profile = profile
        self.config = config or FlexFetchConfig()
        if not self.config.adaptive:
            self.name = "FlexFetch-static"
        self.tracker = OnlineBurstTracker(
            threshold=self.config.burst_threshold)
        self.current_source = DataSource.DISK
        self.profile_trusted = True
        self.audit_override: DataSource | None = None
        self._stage: StageAccounting | None = None
        self._external_times: deque[float] = deque(maxlen=8)
        # diagnostics
        self.decision_log: list[tuple[float, DataSource, str]] = []
        self.audit_log: list[tuple[float, float, float, DataSource]] = []
        self.free_rides = 0
        self.splice_flips = 0
        self.fault_failovers = 0
        #: old-profile burst index the observed byte count has reached;
        #: crossing it triggers the §2.3.1 re-evaluation.
        self._boundary_seen = 0
        self._last_reevaluation = float("-inf")

    # ------------------------------------------------------------------
    # profile positioning
    # ------------------------------------------------------------------
    def _assembled_profile(self) -> ExecutionProfile:
        """Old profile with the observed prefix spliced in (§2.3.1)."""
        bursts, thinks = self.tracker.snapshot()
        if not bursts or not self.config.feature("splice_reevaluation"):
            return self.profile
        return self.profile.spliced(bursts, thinks)

    # ------------------------------------------------------------------
    # decision machinery
    # ------------------------------------------------------------------
    def _decide_from_profile(self, now: Seconds, *, reason: str
                             ) -> DataSource:
        """Run the §2.2 rules on the upcoming profile slice.

        A switch away from the current source must clear the configured
        hysteresis margin in estimated energy; near-break-even stages
        keep the incumbent to avoid paying transition costs for noise.
        """
        assert self.env is not None
        profile = self._assembled_profile()
        bursts, thinks = profile.upcoming_slice(
            self.tracker.total_bytes,
            self.config.stage_length * self.config.decision_horizon_stages)
        if not bursts:
            # Nothing known ahead: keep the current source.
            return self.current_source
        vfs = self.env.vfs if self.config.feature("cache_filter") else None
        if self.config.adaptive:
            # Live device states: the §2.2 on-line simulators start from
            # where the real devices are right now.
            disk, wnic = None, None
        else:
            # FlexFetch-static decides "solely based on the profile"
            # (§3.3.4): its what-if devices are pristine (disk spun
            # down, WNIC dozing), blind to the runtime environment.
            from repro.devices.disk import HardDisk
            from repro.devices.wnic import WirelessNic
            disk = HardDisk(self.env.disk.spec, start_time=now)
            wnic = WirelessNic(self.env.wnic.spec, start_time=now)
        d, n = self.env.cost_model.stage_pair(bursts, thinks, now=now,
                                              vfs=vfs, disk=disk,
                                              wnic=wnic)
        source = decide(DecisionInputs(t_disk=d.time, e_disk=d.energy,
                                       t_network=n.time,
                                       e_network=n.energy),
                        loss_rate=self.config.loss_rate)
        if source != self.current_source and reason != "initial":
            cur_e = d.energy if self.current_source is DataSource.DISK \
                else n.energy
            new_e = d.energy if source is DataSource.DISK else n.energy
            if new_e >= cur_e * (1.0 - self.config.switch_hysteresis):
                source = self.current_source
        self.decision_log.append((now, source, reason))
        return source

    def _begin_stage(self, now: Seconds, source: DataSource) -> None:
        assert self.env is not None
        self.current_source = source
        self._stage = StageAccounting(
            start=now, source=source,
            disk_energy0=self.env.disk.energy(now),
            wnic_energy0=self.env.wnic.energy(now))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin_run(self, now: Seconds) -> None:
        source = self._decide_from_profile(now, reason="initial")
        self._begin_stage(now, source)

    def end_run(self, now: Seconds) -> None:
        self.tracker.flush()

    # ------------------------------------------------------------------
    # stage audit (§2.3.1 second half)
    # ------------------------------------------------------------------
    def _external_keepalive(self, now: Seconds) -> bool:
        """Is something else keeping the disk spun up (§2.3.3)?"""
        if not self.config.feature("free_rider"):
            return False
        assert self.env is not None
        timeout = self.env.disk.spec.spindown_timeout
        t = self._external_times
        return (len(t) >= 2
                and (t[-1] - t[-2]) < timeout
                and (now - t[-1]) < timeout)

    def _audit_stage(self, now: Seconds) -> None:
        """Compare measured stage energy against the alternative."""
        assert self.env is not None and self._stage is not None
        stage = self._stage
        chosen = stage.source
        if chosen is DataSource.DISK:
            measured = self.env.disk.energy(now) - stage.disk_energy0
        else:
            measured = self.env.wnic.energy(now) - stage.wnic_energy0
        # Cross-device energy spent recovering the chosen source's
        # requests (mid-stage failovers) is part of what that choice
        # cost, so the next stage's decision learns from the failure.
        measured += stage.cross_energy[chosen]
        outcome = audit_stage(
            self.env.cost_model, stage, now, measured=measured,
            burst_threshold=self.config.burst_threshold,
            hysteresis=self.config.switch_hysteresis,
            disk_kept_spinning=(chosen.other is DataSource.DISK
                                and self._external_keepalive(now)))
        if outcome is None:
            return
        self.audit_log.append((now, outcome.measured,
                               outcome.counterfactual, chosen))
        self.audit_override = outcome.override
        self.profile_trusted = outcome.profile_trusted

    # ------------------------------------------------------------------
    # runtime hooks
    # ------------------------------------------------------------------
    def on_tick(self, now: Seconds) -> None:
        if self._stage is None:
            self._begin_stage(now, self.current_source)
            return
        if now - self._stage.start < self.config.stage_length:
            return
        # Stage boundary: audit, then decide the next stage.
        if self.config.feature("stage_audit"):
            self._audit_stage(now)
        if self.audit_override is not None and not self.profile_trusted:
            source = self.audit_override
            self.decision_log.append((now, source, "audit-override"))
        else:
            source = self._decide_from_profile(now, reason="stage")
        self._begin_stage(now, source)

    def choose(self, ctx: RequestContext) -> DataSource:
        source = self.current_source
        if (source is DataSource.NETWORK
                and self._external_keepalive(ctx.now)):
            self.free_rides += 1
            return DataSource.DISK
        return source

    def on_serviced(self, ctx: RequestContext, source: DataSource,
                    result: Any) -> None:
        """Device-level observation: feeds the stage audit's replay."""
        if not ctx.profiled:
            return
        start = float(getattr(result, "arrival", ctx.now))
        end = float(getattr(result, "completion", ctx.now))
        req = ProfiledRequest(inode=ctx.inode, offset=ctx.offset,
                              size=max(1, ctx.nbytes), op=ctx.op)
        if self._stage is not None:
            self._stage.observe(req, start, end)

    def on_syscall(self, ctx: RequestContext, start: float,
                   end: float) -> None:
        """Demand-level observation: profile building and positioning.

        Tracking system calls (not device transfers) keeps the byte
        position aligned with the old profile, which also counts
        syscall bytes — readahead overshoot and cache absorption would
        otherwise drift the position off the profile's burst grid.
        """
        closed = self.tracker.observe(ctx.inode, ctx.offset, ctx.nbytes,
                                      ctx.op, start, end)
        # §2.3.1: re-evaluate "whenever the amount just exceeds the
        # amount of data requested in the first N I/O bursts" of the old
        # profile — i.e. on crossing an old-profile burst boundary — and
        # also when an observed burst closes (fresh think-time evidence).
        boundary = self.profile.burst_index_for_bytes(
            self.tracker.total_bytes)
        crossed = boundary > self._boundary_seen
        self._boundary_seen = max(self._boundary_seen, boundary)
        due = end - self._last_reevaluation \
            >= self.config.reevaluation_min_interval
        if (closed is not None or crossed) and due \
                and self.config.feature("splice_reevaluation") \
                and self.profile_trusted:
            self._last_reevaluation = end
            new_source = self._decide_from_profile(end, reason="splice")
            if new_source != self.current_source:
                self.splice_flips += 1
                self.current_source = new_source

    def on_external_disk_request(self, now: Seconds) -> None:
        self._external_times.append(now)

    # -- fault-injection hooks ---------------------------------------------
    def on_fault(self, now: Seconds, intended: DataSource,
                 cross_energy: Joules, attempts: int) -> None:
        """Charge fault-recovery waste to the stage audit (§2.3.1)."""
        if self._stage is not None and cross_energy > 0.0:
            self._stage.cross_energy[intended] += cross_energy

    def on_failover(self, now: Seconds, source: DataSource,
                    fallback: DataSource) -> None:
        """Mid-stage failover: follow the simulator onto the fallback
        device so subsequent requests don't keep hitting the failed one
        (the stage-end audit then re-decides with the waste priced in).
        """
        self.fault_failovers += 1
        if self.current_source is source:
            self.current_source = fallback
        self.decision_log.append((now, fallback, "fault-failover"))
