"""The FlexFetch policy (§2) and its static ablation.

FlexFetch proactively picks the data source for each *evaluation stage*
from a recorded execution profile, then keeps the decision honest
against runtime dynamics (§2.3):

* **profile-driven stage decisions** (§2.2) — at each stage boundary the
  upcoming slice of the (assembled) profile is replayed through clones
  of both devices from their *current* states; the three decision rules
  with the user's loss rate pick the source;
* **splice re-evaluation** (§2.3.1) — as the current run's bursts close,
  the observed prefix replaces the old profile's first N bursts and the
  rule is re-run for the remainder of the stage, so a drifting run can
  flip the source before the stage ends;
* **stage-end audit** (§2.3.1) — measured energy of the chosen device is
  compared against a counterfactual replay of the *observed* stage on
  the alternative device; if the profile's choice lost, the winner is
  used next stage and the profile is distrusted until it proves itself;
* **buffer-cache filter** (§2.3.2) — profiled requests resident in the
  page cache are dropped from the estimates;
* **free-riding** (§2.3.3) — when non-profiled programs keep the disk
  spun up (inter-arrival below the spin-down timeout), requests ride the
  disk for free regardless of the profile decision.

``FlexFetchConfig(adaptive=False)`` yields **FlexFetch-static**, the
§3.3.4 ablation with profile-driven decisions but none of the runtime
adaptation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core.burst import (
    BURST_THRESHOLD_DEFAULT,
    IOBurst,
    OnlineBurstTracker,
    ProfiledRequest,
)
from repro.core.decision import (
    LOSS_RATE_DEFAULT,
    DataSource,
    DecisionInputs,
    decide,
)
from repro.core.estimator import estimate_stage
from repro.core.policies import Policy, RequestContext
from repro.core.profile import (
    STAGE_LENGTH_DEFAULT,
    ExecutionProfile,
)
from repro.units import Joules, Seconds


@dataclass(frozen=True, slots=True)
class FlexFetchConfig:
    """FlexFetch tunables (defaults = §3.1 experimental settings)."""

    loss_rate: float = LOSS_RATE_DEFAULT
    stage_length: float = STAGE_LENGTH_DEFAULT
    burst_threshold: float = BURST_THRESHOLD_DEFAULT
    adaptive: bool = True
    #: how many stage-lengths of profile the decision rule looks ahead.
    #: One stage is myopic: a one-time cost like the active disk's
    #: spin-down tail dominates and the policy clings to the incumbent
    #: device; two stages amortise such transients correctly.
    decision_horizon_stages: float = 2.0
    #: relative energy advantage a source-switch must show before the
    #: policy acts on it.  Damps thrashing when the two devices are
    #: near break-even (mid-size think times), where estimate noise
    #: would otherwise flip the source every stage and pay a spin-up or
    #: mode-switch each time.
    switch_hysteresis: float = 0.10
    #: minimum simulated seconds between §2.3.1 re-evaluations.  The
    #: paper re-evaluates "constantly"; bounding the cadence keeps the
    #: on-line simulators' overhead negligible (the paper's own design
    #: goal: "such simulation causes minimal overhead") without
    #: affecting any stage-scale decision.
    reevaluation_min_interval: float = 5.0
    #: individually togglable adaptation features (for ablations);
    #: ignored (all off) when ``adaptive`` is False.
    use_splice_reevaluation: bool = True
    use_stage_audit: bool = True
    use_cache_filter: bool = True
    use_free_rider: bool = True

    def __post_init__(self) -> None:
        if self.loss_rate < 0:
            raise ValueError("loss rate cannot be negative")
        if self.stage_length <= 0:
            raise ValueError("stage length must be positive")
        if self.burst_threshold <= 0:
            raise ValueError("burst threshold must be positive")
        if self.switch_hysteresis < 0:
            raise ValueError("hysteresis cannot be negative")
        if self.decision_horizon_stages <= 0:
            raise ValueError("decision horizon must be positive")
        if self.reevaluation_min_interval < 0:
            raise ValueError("re-evaluation interval cannot be negative")

    def feature(self, name: str) -> bool:
        """Whether an adaptation feature is effectively enabled.

        The three *runtime* adaptations (splice re-evaluation, stage
        audit, free-riding) are gated by ``adaptive`` — they are what
        FlexFetch-static lacks (§3.3.4: it "does not have the capability
        to adapt to the run-time dynamics").  The §2.3.2 cache filter is
        part of the estimation itself and applies to both variants;
        toggle ``use_cache_filter`` directly to ablate it.
        """
        if name == "cache_filter":
            return self.use_cache_filter
        return self.adaptive and bool(getattr(self, f"use_{name}"))


@dataclass
class _StageAccounting:
    """Runtime bookkeeping for the stage in progress."""

    start: float
    source: DataSource
    disk_energy0: float
    wnic_energy0: float
    observed: list[tuple[ProfiledRequest, float, float]] = \
        field(default_factory=list)  # (request, start, end)
    #: joules spent on the *other* device on each source's behalf during
    #: fault recovery (failover waste + cross-device service); the audit
    #: charges it to the intended source so its measured energy reflects
    #: what choosing that source actually cost this stage.
    cross_energy: dict[DataSource, float] = field(
        default_factory=lambda: {DataSource.DISK: 0.0,
                                 DataSource.NETWORK: 0.0})

    def observe(self, req: ProfiledRequest, start: float,
                end: float) -> None:
        self.observed.append((req, start, end))


class FlexFetchPolicy(Policy):
    """History-aware, environment-adaptive data-source selection.

    Parameters
    ----------
    profile:
        The recorded :class:`ExecutionProfile` of a prior run ("the
        profile that has been recorded for the program", §2.2).  For the
        §3.3.5 invalid-profile experiment this intentionally differs
        from the trace being replayed.
    config:
        Tunables; ``FlexFetchConfig(adaptive=False)`` = FlexFetch-static.
    """

    name = "FlexFetch"

    @classmethod
    def for_programs(cls, profiles: list[ExecutionProfile],
                     config: FlexFetchConfig | None = None
                     ) -> FlexFetchPolicy:
        """Build a policy for concurrently running profiled programs.

        §2.3.4: "When multiple programs concurrently issue I/O requests,
        FlexFetch merges these programs' profiles and forms evaluation
        stage on the aggregate profile."  The profiles are interleaved
        on their recorded timelines and the result drives one shared
        policy instance (the runtime tracker already aggregates all
        profiled programs' syscalls).
        """
        if not profiles:
            raise ValueError("need at least one profile")
        merged = profiles[0]
        for other in profiles[1:]:
            merged = merged.merged_with(other)
        return cls(merged, config)

    def __init__(self, profile: ExecutionProfile,
                 config: FlexFetchConfig | None = None) -> None:
        super().__init__()
        self.profile = profile
        self.config = config or FlexFetchConfig()
        if not self.config.adaptive:
            self.name = "FlexFetch-static"
        self.tracker = OnlineBurstTracker(
            threshold=self.config.burst_threshold)
        self.current_source = DataSource.DISK
        self.profile_trusted = True
        self.audit_override: DataSource | None = None
        self._stage: _StageAccounting | None = None
        self._external_times: deque[float] = deque(maxlen=8)
        # diagnostics
        self.decision_log: list[tuple[float, DataSource, str]] = []
        self.audit_log: list[tuple[float, float, float, DataSource]] = []
        self.free_rides = 0
        self.splice_flips = 0
        self.fault_failovers = 0
        #: old-profile burst index the observed byte count has reached;
        #: crossing it triggers the §2.3.1 re-evaluation.
        self._boundary_seen = 0
        self._last_reevaluation = float("-inf")

    # ------------------------------------------------------------------
    # profile positioning
    # ------------------------------------------------------------------
    def _assembled_profile(self) -> ExecutionProfile:
        """Old profile with the observed prefix spliced in (§2.3.1)."""
        bursts, thinks = self.tracker.snapshot()
        if not bursts or not self.config.feature("splice_reevaluation"):
            return self.profile
        return self.profile.spliced(bursts, thinks)

    def _upcoming_slice(self, profile: ExecutionProfile
                        ) -> tuple[list[IOBurst], list[float]]:
        """The next ~stage_length worth of profile after current bytes."""
        start = profile.burst_index_for_bytes(self.tracker.total_bytes)
        horizon = self.config.stage_length \
            * self.config.decision_horizon_stages
        bursts: list[IOBurst] = []
        thinks: list[float] = []
        acc = 0.0
        for i in range(start, len(profile.bursts)):
            bursts.append(profile.bursts[i])
            thinks.append(profile.thinks[i])
            acc += profile.bursts[i].duration + profile.thinks[i]
            if acc > horizon:
                break
        return bursts, thinks

    # ------------------------------------------------------------------
    # decision machinery
    # ------------------------------------------------------------------
    def _decide_from_profile(self, now: Seconds, *, reason: str
                             ) -> DataSource:
        """Run the §2.2 rules on the upcoming profile slice.

        A switch away from the current source must clear the configured
        hysteresis margin in estimated energy; near-break-even stages
        keep the incumbent to avoid paying transition costs for noise.
        """
        assert self.env is not None
        profile = self._assembled_profile()
        bursts, thinks = self._upcoming_slice(profile)
        if not bursts:
            # Nothing known ahead: keep the current source.
            return self.current_source
        vfs = self.env.vfs if self.config.feature("cache_filter") else None
        if self.config.adaptive:
            # Live device states: the §2.2 on-line simulators start from
            # where the real devices are right now.
            disk, wnic = self.env.disk, self.env.wnic
        else:
            # FlexFetch-static decides "solely based on the profile"
            # (§3.3.4): its what-if devices are pristine (disk spun
            # down, WNIC dozing), blind to the runtime environment.
            from repro.devices.disk import HardDisk
            from repro.devices.wnic import WirelessNic
            disk = HardDisk(self.env.disk.spec, start_time=now)
            wnic = WirelessNic(self.env.wnic.spec, start_time=now)
        d = estimate_stage(DataSource.DISK, disk, bursts, thinks,
                           now=now, layout=self.env.layout, vfs=vfs,
                           other_device=wnic)
        n = estimate_stage(DataSource.NETWORK, wnic, bursts,
                           thinks, now=now, layout=self.env.layout,
                           vfs=vfs, other_device=disk)
        source = decide(DecisionInputs(t_disk=d.time, e_disk=d.energy,
                                       t_network=n.time,
                                       e_network=n.energy),
                        loss_rate=self.config.loss_rate)
        if source != self.current_source and reason != "initial":
            cur_e = d.energy if self.current_source is DataSource.DISK \
                else n.energy
            new_e = d.energy if source is DataSource.DISK else n.energy
            if new_e >= cur_e * (1.0 - self.config.switch_hysteresis):
                source = self.current_source
        self.decision_log.append((now, source, reason))
        return source

    def _begin_stage(self, now: Seconds, source: DataSource) -> None:
        assert self.env is not None
        self.current_source = source
        self._stage = _StageAccounting(
            start=now, source=source,
            disk_energy0=self.env.disk.energy(now),
            wnic_energy0=self.env.wnic.energy(now))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin_run(self, now: Seconds) -> None:
        source = self._decide_from_profile(now, reason="initial")
        self._begin_stage(now, source)

    def end_run(self, now: Seconds) -> None:
        self.tracker.flush()

    # ------------------------------------------------------------------
    # stage audit (§2.3.1 second half)
    # ------------------------------------------------------------------
    def _external_keepalive(self, now: Seconds) -> bool:
        """Is something else keeping the disk spun up (§2.3.3)?"""
        if not self.config.feature("free_rider"):
            return False
        assert self.env is not None
        timeout = self.env.disk.spec.spindown_timeout
        t = self._external_times
        return (len(t) >= 2
                and (t[-1] - t[-2]) < timeout
                and (now - t[-1]) < timeout)

    def _counterfactual_energy(self, now: Seconds,
                               alt: DataSource) -> Joules:
        """Replay the observed stage on the alternative device."""
        assert self.env is not None and self._stage is not None
        observed = self._stage.observed
        if not observed:
            return 0.0
        if alt is DataSource.DISK and self._external_keepalive(now):
            # The disk is up anyway; only the marginal service energy
            # above the idle draw counts (§2.3.3: "almost free").
            spec = self.env.disk.spec
            marginal = 0.0
            for req, _start, _end in observed:
                svc = spec.access_time + req.size / spec.bandwidth_bps
                marginal += svc * (spec.active_power - spec.idle_power)
            return marginal
        # Build burst/think structure from the observed request timings.
        bursts: list[IOBurst] = []
        thinks: list[float] = []
        cur: list[ProfiledRequest] = [observed[0][0]]
        cur_start, prev_end = observed[0][1], observed[0][2]
        for req, start, end in observed[1:]:
            gap = start - prev_end
            if gap >= self.config.burst_threshold:
                bursts.append(IOBurst(tuple(cur), cur_start, prev_end))
                thinks.append(max(0.0, gap))
                cur = [req]
                cur_start = start
            else:
                cur.append(req)
            prev_end = max(prev_end, end)
        bursts.append(IOBurst(tuple(cur), cur_start, prev_end))
        thinks.append(0.0)
        device = (self.env.disk if alt is DataSource.DISK
                  else self.env.wnic)
        # Clone from the stage-start state is unavailable (devices moved
        # on); cloning from *now* and replaying the stage's burst/think
        # structure yields the same DPM behaviour because the clone's
        # state converges after the first burst.  The initial-state
        # difference is bounded by one mode transition.
        est = estimate_stage(alt, device, bursts, thinks, now=now,
                             layout=self.env.layout,
                             min_duration=max(0.0, now - self._stage.start))
        return est.energy

    def _audit_stage(self, now: Seconds) -> None:
        """Compare measured stage energy against the alternative."""
        assert self.env is not None and self._stage is not None
        stage = self._stage
        chosen = stage.source
        if chosen is DataSource.DISK:
            measured = self.env.disk.energy(now) - stage.disk_energy0
        else:
            measured = self.env.wnic.energy(now) - stage.wnic_energy0
        # Cross-device energy spent recovering the chosen source's
        # requests (mid-stage failovers) is part of what that choice
        # cost, so the next stage's decision learns from the failure.
        measured += stage.cross_energy[chosen]
        alt = chosen.other
        counterfactual = self._counterfactual_energy(now, alt)
        if not stage.observed:
            return
        self.audit_log.append((now, measured, counterfactual, chosen))
        if counterfactual < measured * (1.0 - self.config.switch_hysteresis):
            # "disk or network, whichever was more energy efficient,
            # will be used in the next stage, disregarding the profile".
            self.audit_override = alt
            self.profile_trusted = False
        else:
            self.audit_override = None
            self.profile_trusted = True

    # ------------------------------------------------------------------
    # runtime hooks
    # ------------------------------------------------------------------
    def on_tick(self, now: Seconds) -> None:
        if self._stage is None:
            self._begin_stage(now, self.current_source)
            return
        if now - self._stage.start < self.config.stage_length:
            return
        # Stage boundary: audit, then decide the next stage.
        if self.config.feature("stage_audit"):
            self._audit_stage(now)
        if self.audit_override is not None and not self.profile_trusted:
            source = self.audit_override
            self.decision_log.append((now, source, "audit-override"))
        else:
            source = self._decide_from_profile(now, reason="stage")
        self._begin_stage(now, source)

    def choose(self, ctx: RequestContext) -> DataSource:
        source = self.current_source
        if (source is DataSource.NETWORK
                and self._external_keepalive(ctx.now)):
            self.free_rides += 1
            return DataSource.DISK
        return source

    def on_serviced(self, ctx: RequestContext, source: DataSource,
                    result: Any) -> None:
        """Device-level observation: feeds the stage audit's replay."""
        if not ctx.profiled:
            return
        start = float(getattr(result, "arrival", ctx.now))
        end = float(getattr(result, "completion", ctx.now))
        req = ProfiledRequest(inode=ctx.inode, offset=ctx.offset,
                              size=max(1, ctx.nbytes), op=ctx.op)
        if self._stage is not None:
            self._stage.observe(req, start, end)

    def on_syscall(self, ctx: RequestContext, start: float,
                   end: float) -> None:
        """Demand-level observation: profile building and positioning.

        Tracking system calls (not device transfers) keeps the byte
        position aligned with the old profile, which also counts
        syscall bytes — readahead overshoot and cache absorption would
        otherwise drift the position off the profile's burst grid.
        """
        closed = self.tracker.observe(ctx.inode, ctx.offset, ctx.nbytes,
                                      ctx.op, start, end)
        # §2.3.1: re-evaluate "whenever the amount just exceeds the
        # amount of data requested in the first N I/O bursts" of the old
        # profile — i.e. on crossing an old-profile burst boundary — and
        # also when an observed burst closes (fresh think-time evidence).
        boundary = self.profile.burst_index_for_bytes(
            self.tracker.total_bytes)
        crossed = boundary > self._boundary_seen
        self._boundary_seen = max(self._boundary_seen, boundary)
        due = end - self._last_reevaluation \
            >= self.config.reevaluation_min_interval
        if (closed is not None or crossed) and due \
                and self.config.feature("splice_reevaluation") \
                and self.profile_trusted:
            self._last_reevaluation = end
            new_source = self._decide_from_profile(end, reason="splice")
            if new_source != self.current_source:
                self.splice_flips += 1
                self.current_source = new_source

    def on_external_disk_request(self, now: Seconds) -> None:
        self._external_times.append(now)

    # -- fault-injection hooks ---------------------------------------------
    def on_fault(self, now: Seconds, intended: DataSource,
                 cross_energy: Joules, attempts: int) -> None:
        """Charge fault-recovery waste to the stage audit (§2.3.1)."""
        if self._stage is not None and cross_energy > 0.0:
            self._stage.cross_energy[intended] += cross_energy

    def on_failover(self, now: Seconds, source: DataSource,
                    fallback: DataSource) -> None:
        """Mid-stage failover: follow the simulator onto the fallback
        device so subsequent requests don't keep hitting the failed one
        (the stage-end audit then re-decides with the waste priced in).
        """
        self.fault_failovers += 1
        if self.current_source is source:
            self.current_source = fallback
        self.decision_log.append((now, fallback, "fault-failover"))
