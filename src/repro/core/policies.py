"""Policy interface and the fixed-source baselines (§3.1).

A *policy* answers one question per device-bound request: disk or
network?  The replay simulator asks via :meth:`Policy.choose` and feeds
back what actually happened via the observation hooks, which is all the
adaptive policies (BlueFS, FlexFetch) need to do their accounting.

The two fixed baselines — **Disk-only** and **WNIC-only** — are what the
paper plots alongside FlexFetch and BlueFS in every figure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, NamedTuple

from repro.core.decision import DataSource
from repro.traces.record import OpType
from repro.units import Bytes, Joules, Seconds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import MobileSystem


class RequestContext(NamedTuple):
    """Everything a policy may inspect about one device-bound request.

    ``profiled`` distinguishes foreground programs FlexFetch has a
    profile for from background programs (xmms in §3.3.4);
    ``disk_pinned`` marks data that exists *only* on the local disk and
    therefore gives the policy no choice.  A NamedTuple rather than a
    frozen dataclass: still immutable, but one is built per routed
    extent, and tuple construction is less than half the cost.
    """

    now: Seconds
    program: str
    profiled: bool
    disk_pinned: bool
    inode: int
    offset: int
    nbytes: Bytes
    op: OpType


class Policy(ABC):
    """Data-source selection policy."""

    name: str = "policy"

    def __init__(self) -> None:
        self.env: MobileSystem | None = None
        #: per-source request/byte tallies for reporting.
        self.routed_requests = {DataSource.DISK: 0, DataSource.NETWORK: 0}
        self.routed_bytes = {DataSource.DISK: 0, DataSource.NETWORK: 0}

    # ------------------------------------------------------------------
    def attach(self, env: MobileSystem) -> None:
        """Called once by the simulator before the run starts."""
        self.env = env

    def begin_run(self, now: Seconds) -> None:
        """Called at simulation start (after attach)."""

    def end_run(self, now: Seconds) -> None:
        """Called after the last request completes."""

    # ------------------------------------------------------------------
    @abstractmethod
    def choose(self, ctx: RequestContext) -> DataSource:
        """Route one request.  Must be side-effect-light and fast."""

    def route(self, ctx: RequestContext) -> DataSource:
        """Wrapper the simulator calls: applies pinning + tallies."""
        source = DataSource.DISK if ctx.disk_pinned else self.choose(ctx)
        self.routed_requests[source] += 1
        self.routed_bytes[source] += ctx.nbytes
        return source

    # -- observation hooks -------------------------------------------------
    def on_serviced(self, ctx: RequestContext, source: DataSource,
                    result: Any) -> None:
        """A request finished; ``result`` is the device service record."""

    def on_syscall(self, ctx: RequestContext, start: float,
                   end: float) -> None:
        """A profiled program's read/write *system call* completed.

        This is the demand-level stream the paper's profiler records
        (§2.1) — it fires for every data-moving call, including ones
        fully absorbed by the page cache, with the byte count the
        application asked for (not what devices moved).  FlexFetch
        builds its current-run profile and tracks its position in the
        old profile from this stream.
        """

    def on_tick(self, now: Seconds) -> None:
        """Called before each syscall is processed (time advances)."""

    def on_external_disk_request(self, now: Seconds) -> None:
        """A non-profiled program touched the disk (§2.3.3 free-rider)."""

    # -- fault-injection hooks ---------------------------------------------
    def on_fault(self, now: Seconds, intended: DataSource,
                 cross_energy: Joules, attempts: int) -> None:
        """A request routed to ``intended`` needed fault recovery.

        ``attempts`` counts the failed device attempts in the chain and
        ``cross_energy`` is the joules ultimately spent on the *other*
        device on ``intended``'s behalf (failover waste + service).
        FlexFetch charges this to its stage audit so the next stage's
        decision learns from the failure.
        """

    def on_failover(self, now: Seconds, source: DataSource,
                    fallback: DataSource) -> None:
        """The simulator abandoned ``source`` mid-request for
        ``fallback`` (retry budget exhausted)."""


class DiskOnlyPolicy(Policy):
    """Always the local hard disk — the hoarding status quo."""

    name = "Disk-only"

    def choose(self, ctx: RequestContext) -> DataSource:
        return DataSource.DISK


class WnicOnlyPolicy(Policy):
    """Always the remote server via the WNIC.

    Requests for disk-pinned data still go to the disk (handled by
    :meth:`Policy.route`), since that data has no remote replica.
    """

    name = "WNIC-only"

    def choose(self, ctx: RequestContext) -> DataSource:
        return DataSource.NETWORK
