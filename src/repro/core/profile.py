"""Execution profiles and evaluation stages (§2.1-§2.2).

An :class:`ExecutionProfile` is the device-independent record FlexFetch
keeps for a program: alternating I/O bursts and think times.  For
decision making it is segmented into *evaluation stages* — "continuous
I/O bursts, including think times between them, whose length just
exceeds a pre-determined threshold, say 40 seconds" — so the decision
can be re-examined at stage granularity.

The profile also supports the §2.3.1 *splice*: replacing its first N
bursts with the bursts observed in the current run once the observed
byte count passes them, producing the assembled profile on which the
decision rule is re-run.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.burst import (
    BURST_THRESHOLD_DEFAULT,
    IOBurst,
    extract_bursts,
)
from repro.traces.trace import Trace
from repro.units import Bytes, Seconds

#: Default evaluation-stage length (§2.2/§3.1: "40 seconds").
STAGE_LENGTH_DEFAULT: float = 40.0


@dataclass(frozen=True, slots=True)
class Stage:
    """One evaluation stage: a slice of the profile's bursts.

    ``index`` is the stage ordinal; ``first``/``last`` are burst indices
    (inclusive); ``duration`` is the recorded wall length (bursts +
    enclosed thinks); ``nbytes`` the total bytes requested.
    """

    index: int
    first: int
    last: int
    duration: Seconds
    nbytes: Bytes

    @property
    def burst_count(self) -> int:
        return self.last - self.first + 1


class ExecutionProfile:
    """Bursts + think times of one (or several merged) program runs.

    Parameters
    ----------
    bursts / thinks:
        As produced by :func:`~repro.core.burst.extract_bursts`;
        ``thinks[i]`` follows ``bursts[i]`` and the lists match in length.
    name:
        Provenance label (program name).
    """

    def __init__(self, bursts: Sequence[IOBurst], thinks: Sequence[float],
                 *, name: str = "profile") -> None:
        if len(bursts) != len(thinks):
            raise ValueError("bursts and thinks must align")
        self.name = name
        self.bursts: tuple[IOBurst, ...] = tuple(bursts)
        self.thinks: tuple[float, ...] = tuple(thinks)
        # Cumulative requested bytes after each burst, for position lookup.
        cum = []
        total = 0
        for b in self.bursts:
            total += b.nbytes
            cum.append(total)
        self._cum_bytes: list[int] = cum

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.bursts)

    @property
    def total_bytes(self) -> Bytes:
        return self._cum_bytes[-1] if self._cum_bytes else 0

    @property
    def total_duration(self) -> Seconds:
        """Recorded wall length: bursts plus inter-burst thinks."""
        return (sum(b.duration for b in self.bursts)
                + sum(self.thinks[:-1] if self.thinks else ()))

    def bytes_through(self, burst_index: int) -> int:
        """Cumulative bytes of bursts ``0..burst_index`` inclusive."""
        if not 0 <= burst_index < len(self.bursts):
            raise IndexError(burst_index)
        return self._cum_bytes[burst_index]

    def burst_index_for_bytes(self, nbytes: Bytes) -> Bytes:
        """Index of the first burst whose cumulative bytes reach ``nbytes``.

        Returns ``len(self)`` when ``nbytes`` exceeds the whole profile.
        """
        return bisect.bisect_left(self._cum_bytes, max(0, nbytes) + 1) \
            if nbytes >= 0 else 0

    # ------------------------------------------------------------------
    def stages(self, stage_length: float = STAGE_LENGTH_DEFAULT
               ) -> list[Stage]:
        """Segment into evaluation stages of about ``stage_length`` seconds.

        Bursts (with their trailing thinks) accumulate until the running
        length *just exceeds* the threshold, then a stage closes.  The
        final stage takes whatever remains.
        """
        if stage_length <= 0:
            raise ValueError("stage length must be positive")
        stages: list[Stage] = []
        first = 0
        acc = 0.0
        nbytes = 0
        for i, burst in enumerate(self.bursts):
            acc += burst.duration
            nbytes += burst.nbytes
            is_last = i == len(self.bursts) - 1
            if not is_last:
                acc += self.thinks[i]
            if acc > stage_length or is_last:
                stages.append(Stage(index=len(stages), first=first, last=i,
                                    duration=acc, nbytes=nbytes))
                first = i + 1
                acc = 0.0
                nbytes = 0
        return stages

    def stage_slice(self, stage: Stage) -> tuple[tuple[IOBurst, ...],
                                                 tuple[float, ...]]:
        """The bursts and thinks belonging to one stage."""
        bursts = self.bursts[stage.first:stage.last + 1]
        thinks = self.thinks[stage.first:stage.last + 1]
        return bursts, thinks

    def upcoming_slice(self, nbytes_seen: Bytes, horizon: Seconds
                       ) -> tuple[list[IOBurst], list[float]]:
        """The next ~``horizon`` seconds of profile after ``nbytes_seen``.

        The decision rules replay this slice through the device clones.
        A one-stage horizon is myopic — a one-time cost like the active
        disk's spin-down tail dominates and pins the choice to the
        incumbent device — so callers typically look a couple of stage
        lengths ahead.
        """
        start = self.burst_index_for_bytes(nbytes_seen)
        bursts: list[IOBurst] = []
        thinks: list[float] = []
        acc = 0.0
        for i in range(start, len(self.bursts)):
            bursts.append(self.bursts[i])
            thinks.append(self.thinks[i])
            acc += self.bursts[i].duration + self.thinks[i]
            if acc > horizon:
                break
        return bursts, thinks

    # ------------------------------------------------------------------
    def spliced(self, observed_bursts: Sequence[IOBurst],
                observed_thinks: Sequence[float]) -> ExecutionProfile:
        """The §2.3.1 assembled profile.

        The observed (current-run) bursts replace the first N old bursts,
        where N is chosen so the replaced bursts cover at least the
        observed byte count: "whenever the amount just exceeds the amount
        of data requested in the first N I/O bursts, we use the new
        profile for this run to replace the N I/O bursts in the old
        profile".
        """
        if len(observed_bursts) != len(observed_thinks):
            raise ValueError("observed bursts and thinks must align")
        observed_bytes = sum(b.nbytes for b in observed_bursts)
        n = self.burst_index_for_bytes(observed_bytes)
        bursts = list(observed_bursts) + list(self.bursts[n:])
        thinks = list(observed_thinks) + list(self.thinks[n:])
        if thinks and list(observed_thinks):
            # The think after the last observed burst bridges into the
            # old tail; keep the observed value (it is the live one).
            pass
        return ExecutionProfile(bursts, thinks,
                                name=f"{self.name}+observed")

    def merged_with(self, other: ExecutionProfile) -> ExecutionProfile:
        """Aggregate profile of concurrently running programs (§2.3.4).

        Bursts are interleaved on their recorded timestamps and think
        times recomputed from the merged timeline.
        """
        events = sorted(list(self.bursts) + list(other.bursts),
                        key=lambda b: b.start)
        thinks: list[float] = []
        for cur, nxt in zip(events, events[1:], strict=False):
            thinks.append(max(0.0, nxt.start - cur.end))
        if events:
            thinks.append(0.0)
        return ExecutionProfile(events, thinks,
                                name=f"{self.name}|{other.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ExecutionProfile {self.name!r} bursts={len(self.bursts)}"
                f" bytes={self.total_bytes}"
                f" duration={self.total_duration:.1f}s>")


def profile_from_trace(trace: Trace, *,
                       threshold: float = BURST_THRESHOLD_DEFAULT
                       ) -> ExecutionProfile:
    """Extract an execution profile from a recorded trace (§2.1)."""
    bursts, thinks = extract_bursts(trace.data_records(),
                                    threshold=threshold)
    return ExecutionProfile(bursts, thinks, name=trace.name)
