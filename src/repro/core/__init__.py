"""FlexFetch core: profiling, decision, policies, and the replay simulator.

* :mod:`repro.core.burst` — I/O-burst extraction from syscall traces (§2.1).
* :mod:`repro.core.profile` — execution profiles and evaluation stages (§2.2).
* :mod:`repro.core.estimator` — per-stage (time, energy) what-if estimation
  using cloned device simulators (§2.2).
* :mod:`repro.core.decision` — the three data-source rules with the
  user-specified loss rate (§2.2).
* :mod:`repro.core.policies` — the policy interface plus the Disk-only and
  WNIC-only baselines (§3.1).
* :mod:`repro.core.bluefs` — the BlueFS-style reactive policy with ghost
  hints (§1.2, §3.3).
* :mod:`repro.core.flexfetch` — FlexFetch and FlexFetch-static (§2).
* :mod:`repro.core.simulator` — the trace-driven closed-loop replay that
  produces every number in the evaluation (§3.1).
"""

from repro.core.burst import (
    BURST_THRESHOLD_DEFAULT,
    IOBurst,
    ProfiledRequest,
    extract_bursts,
)
from repro.core.decision import DataSource, DecisionInputs, decide
from repro.core.estimator import StageEstimate, estimate_stage
from repro.core.flexfetch import FlexFetchConfig, FlexFetchPolicy
from repro.core.oracle import ClairvoyantStagePolicy
from repro.core.bluefs import BlueFSConfig, BlueFSPolicy
from repro.core.policies import DiskOnlyPolicy, Policy, RequestContext, WnicOnlyPolicy
from repro.core.profile import ExecutionProfile, Stage, profile_from_trace
from repro.core.simulator import MobileSystem, ProgramSpec, ReplaySimulator, RunResult

__all__ = [
    "BURST_THRESHOLD_DEFAULT",
    "IOBurst",
    "ProfiledRequest",
    "extract_bursts",
    "DataSource",
    "DecisionInputs",
    "decide",
    "StageEstimate",
    "estimate_stage",
    "FlexFetchConfig",
    "FlexFetchPolicy",
    "ClairvoyantStagePolicy",
    "BlueFSConfig",
    "BlueFSPolicy",
    "DiskOnlyPolicy",
    "Policy",
    "RequestContext",
    "WnicOnlyPolicy",
    "ExecutionProfile",
    "Stage",
    "profile_from_trace",
    "MobileSystem",
    "ProgramSpec",
    "ReplaySimulator",
    "RunResult",
]
