"""FlexFetch core: profiling, decision, policies, and the layered replay.

* :mod:`repro.core.burst` — I/O-burst extraction from syscall traces (§2.1).
* :mod:`repro.core.profile` — execution profiles and evaluation stages (§2.2).
* :mod:`repro.core.costmodel` — the shared device cost model every policy
  estimates with (§2.2); :mod:`repro.core.estimator` is its compat shim.
* :mod:`repro.core.decision` — the three data-source rules with the
  user-specified loss rate (§2.2).
* :mod:`repro.core.policies` — the policy interface plus the Disk-only and
  WNIC-only baselines (§3.1).
* :mod:`repro.core.bluefs` — the BlueFS-style reactive policy with ghost
  hints (§1.2, §3.3).
* :mod:`repro.core.flexfetch` — FlexFetch and FlexFetch-static (§2), with
  its tunables in :mod:`repro.core.flexfetch_config` and the stage-end
  audit in :mod:`repro.core.audit`.
* the replay itself is layered: :mod:`repro.core.workload` drivers over
  :mod:`repro.kernel.path` and :mod:`repro.devices.service`, routed by
  :mod:`repro.core.routing`, observed by :mod:`repro.core.telemetry`,
  wired together by :class:`repro.core.session.SimulationSession`
  (:mod:`repro.core.simulator` remains as a deprecated shim).
"""

from repro.core.burst import (
    BURST_THRESHOLD_DEFAULT,
    IOBurst,
    ProfiledRequest,
    extract_bursts,
)
from repro.core.costmodel import CostModel, MarginalCost
from repro.core.decision import DataSource, DecisionInputs, decide
from repro.core.estimator import StageEstimate, estimate_stage
from repro.core.flexfetch import FlexFetchConfig, FlexFetchPolicy
from repro.core.oracle import ClairvoyantStagePolicy
from repro.core.bluefs import BlueFSConfig, BlueFSPolicy
from repro.core.policies import DiskOnlyPolicy, Policy, RequestContext, WnicOnlyPolicy
from repro.core.profile import ExecutionProfile, Stage, profile_from_trace
from repro.core.session import SimulationSession
from repro.core.simulator import MobileSystem, ProgramSpec, ReplaySimulator, RunResult
from repro.core.telemetry import MetricsSink, NullSink, RecordingSink

__all__ = [
    "BURST_THRESHOLD_DEFAULT",
    "IOBurst",
    "ProfiledRequest",
    "extract_bursts",
    "CostModel",
    "MarginalCost",
    "DataSource",
    "DecisionInputs",
    "decide",
    "StageEstimate",
    "estimate_stage",
    "FlexFetchConfig",
    "FlexFetchPolicy",
    "ClairvoyantStagePolicy",
    "BlueFSConfig",
    "BlueFSPolicy",
    "DiskOnlyPolicy",
    "Policy",
    "RequestContext",
    "WnicOnlyPolicy",
    "ExecutionProfile",
    "Stage",
    "profile_from_trace",
    "MetricsSink",
    "MobileSystem",
    "NullSink",
    "ProgramSpec",
    "RecordingSink",
    "ReplaySimulator",
    "RunResult",
    "SimulationSession",
]
