"""Workload layer: closed-loop program drivers replaying traces.

"We built a simulator that is driven by real-life applications'
execution traces."  Each :class:`ProgramDriver` replays one recorded
program **closed-loop**: request *i+1* issues one recorded think time
after request *i* completes, so slow devices stretch the run (and the
performance-loss rule has teeth).  The driver owns only the replay
cursor — what happens to each syscall (kernel path, routing, devices)
is the session's wiring of the layers below.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.traces.record import SyscallRecord
from repro.traces.trace import Trace


@dataclass(frozen=True, slots=True)
class ProgramSpec:
    """One program participating in a replay.

    ``profiled`` — FlexFetch has (or builds) a profile for it;
    ``disk_pinned`` — its data exists only on the local disk (no remote
    replica), so every request must go to the disk.
    """

    trace: Trace
    profiled: bool = True
    disk_pinned: bool = False


class ProgramDriver:
    """Replay cursor of one program."""

    def __init__(self, spec: ProgramSpec) -> None:
        self.spec = spec
        self.records: list[SyscallRecord] = spec.trace.data_records()
        # Closed-loop think times: gap between call i's return and call
        # i+1's entry in the recording.
        self.thinks: list[float] = [
            max(0.0, nxt.timestamp - cur.end_time)
            for cur, nxt in zip(self.records, self.records[1:],
                                strict=False)
        ]
        self.index = 0
        self.last_completion = 0.0
        self.done = not self.records

    @property
    def name(self) -> str:
        return self.spec.trace.name

    @property
    def current(self) -> SyscallRecord:
        """The record the replay cursor points at."""
        return self.records[self.index]

    def advance(self) -> float | None:
        """Move past the current record; returns the recorded think
        time before the next one, or None when the program is done."""
        self.index += 1
        if self.index >= len(self.records):
            self.done = True
            return None
        return self.thinks[self.index - 1]
