"""Workload layer: closed-loop program drivers replaying traces.

"We built a simulator that is driven by real-life applications'
execution traces."  Each :class:`ProgramDriver` replays one recorded
program **closed-loop**: request *i+1* issues one recorded think time
after request *i* completes, so slow devices stretch the run (and the
performance-loss rule has teeth).  The driver owns only the replay
cursor — what happens to each syscall (kernel path, routing, devices)
is the session's wiring of the layers below.

Replay is compile-once / simulate-many: a :class:`ProgramSpec` holds
either a record-level :class:`~repro.traces.trace.Trace` (convenient to
construct) or its **prepared** form, a
:class:`~repro.traces.compile.CompiledTrace` whose data records, think
times and file table were lowered once into immutable columnar arrays.
Drivers read the compiled columns through zero-copy ``memoryview``\\ s,
so building a driver — and therefore a
:class:`~repro.core.session.SimulationSession` — is O(1) in trace
length.  A record-level spec is compiled on first use (memoised per
trace object), so both forms replay bit-identically.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from repro.traces.compile import OPS_BY_CODE, CompiledTrace, compile_trace
from repro.traces.record import OpType
from repro.traces.trace import Trace
from repro.units import Bytes, Seconds

#: module-level warn-once latch for deprecated record-level specs
#: crossing the sweep/cache boundary (see :func:`prepare_specs`).
_warned_auto_compile = False


@dataclass(frozen=True, slots=True)
class ProgramSpec:
    """One program participating in a replay.

    ``trace`` is either a record-level :class:`Trace` or a
    :class:`CompiledTrace`; :meth:`prepared` returns the spec in
    compiled form.  ``profiled`` — FlexFetch has (or builds) a profile
    for it; ``disk_pinned`` — its data exists only on the local disk
    (no remote replica), so every request must go to the disk.
    """

    trace: Trace | CompiledTrace
    profiled: bool = True
    disk_pinned: bool = False

    @property
    def is_prepared(self) -> bool:
        """Whether the trace is already in compiled form."""
        return isinstance(self.trace, CompiledTrace)

    def prepared(self) -> ProgramSpec:
        """This spec with its trace compiled (self if already so)."""
        if self.is_prepared:
            return self
        return replace(self, trace=compile_trace(self.trace))

    @property
    def compiled(self) -> CompiledTrace:
        """The compiled trace (compiling on the fly if record-level)."""
        return compile_trace(self.trace)


def prepare_specs(specs: tuple[ProgramSpec, ...] | list[ProgramSpec],
                  ) -> tuple[ProgramSpec, ...]:
    """Compiled forms of ``specs``, warning once on record-level input.

    The sweep pipeline (parallel executor, run cache) keys and ships
    traces by compiled digest; record-level specs reaching it are
    deprecated and auto-compiled here with a once-per-process warning.
    """
    global _warned_auto_compile
    if any(not spec.is_prepared for spec in specs) \
            and not _warned_auto_compile:
        _warned_auto_compile = True
        warnings.warn(
            "record-level ProgramSpec auto-compiled on the fly;"
            " pass ProgramSpec.prepared() (a CompiledTrace) to sweep"
            " and cache APIs to compile once up front",
            DeprecationWarning, stacklevel=3)
    return tuple(spec.prepared() for spec in specs)


class ReplayOp:
    """One data-moving call, viewed from the compiled columns.

    A lightweight cursor value — exactly the fields the replay loop
    reads (no fd, no recorded duration: those never reach simulation).
    """

    __slots__ = ("pid", "inode", "offset", "size", "op")

    def __init__(self, pid: int, inode: int, offset: int, size: int,
                 op: OpType) -> None:
        self.pid = pid
        self.inode = inode
        self.offset = offset
        self.size = size
        self.op = op


class ProgramDriver:
    """Replay cursor of one program, reading compiled columns."""

    def __init__(self, spec: ProgramSpec) -> None:
        self.spec = spec if spec.is_prepared else spec.prepared()
        compiled = self.spec.trace
        assert isinstance(compiled, CompiledTrace)
        self.compiled = compiled
        #: raw compiled columns; the replay loop indexes them directly
        #: instead of materialising a ReplayOp per record.
        self.ops = compiled.ops
        self.pids = memoryview(compiled.pids).cast("q")
        self.inodes = memoryview(compiled.inodes).cast("q")
        self.offsets = memoryview(compiled.offsets).cast("q")
        self.sizes = memoryview(compiled.sizes).cast("q")
        #: closed-loop think times, precomputed at compile time.
        self.thinks = memoryview(compiled.thinks).cast("d")
        self.index = 0
        self.last_completion = 0.0
        self.done = compiled.record_count == 0

    @property
    def name(self) -> str:
        return self.compiled.name

    @property
    def record_count(self) -> int:
        """Number of data-moving records being replayed."""
        return self.compiled.record_count

    @property
    def total_bytes(self) -> Bytes:
        """Total bytes the replayed records move."""
        return self.compiled.total_bytes

    @property
    def start_time(self) -> Seconds:
        """Recorded timestamp of the first data record."""
        return self.compiled.start_time

    @property
    def current(self) -> ReplayOp:
        """The record the replay cursor points at."""
        i = self.index
        return ReplayOp(self.pids[i], self.inodes[i], self.offsets[i],
                        self.sizes[i], OPS_BY_CODE[self.ops[i]])

    def advance(self) -> float | None:
        """Move past the current record; returns the recorded think
        time before the next one, or None when the program is done."""
        self.index += 1
        if self.index >= self.compiled.record_count:
            self.done = True
            return None
        return self.thinks[self.index - 1]
