"""Clairvoyant reference policy.

Neither the paper nor any practical system can see the future, but an
evaluation harness should know how much headroom is left above
FlexFetch.  :class:`ClairvoyantStagePolicy` decides each evaluation
stage with a *perfect* profile of the run being replayed — the exact
bursts and think times that are about to happen — using the same
estimators, decision rules, and switch hysteresis as FlexFetch, with no
need for auditing (nothing to correct).  The hysteresis matters even
with perfect information: an interesting finding of this harness is
that *greedy* per-stage clairvoyance oscillates on near-break-even
workloads — each switch is justified over its own horizon yet the
sequence of switches is globally wasteful — and a damping term fixes
it.

It is an upper bound for *stage-granular* source selection, which is
the granularity FlexFetch operates at; a finer-grained oracle could do
marginally better by splitting stages.  The gap

    E(FlexFetch) - E(Clairvoyant)

measures what FlexFetch loses to profile error, hysteresis, and
exploration, and is reported by ``benchmarks/test_oracle.py``.
"""

from __future__ import annotations

from repro.core.decision import (
    LOSS_RATE_DEFAULT,
    DataSource,
    DecisionInputs,
    decide,
)
from repro.core.policies import Policy, RequestContext
from repro.core.profile import (
    STAGE_LENGTH_DEFAULT,
    ExecutionProfile,
    profile_from_trace,
)
from repro.traces.trace import Trace
from repro.units import Seconds


class ClairvoyantStagePolicy(Policy):
    """Stage-granular source selection with a perfect profile.

    Parameters
    ----------
    trace:
        The very trace that will be replayed.  The policy extracts its
        true burst/think structure and decides each stage with it.
    loss_rate / stage_length:
        Same semantics as FlexFetch's (§2.2); defaults are the paper's.
    """

    name = "Clairvoyant"

    def __init__(self, trace: Trace, *,
                 loss_rate: float = LOSS_RATE_DEFAULT,
                 stage_length: float = STAGE_LENGTH_DEFAULT,
                 horizon_stages: float = 2.0,
                 hysteresis: float = 0.10) -> None:
        super().__init__()
        if loss_rate < 0:
            raise ValueError("loss rate cannot be negative")
        if stage_length <= 0:
            raise ValueError("stage length must be positive")
        if horizon_stages <= 0:
            raise ValueError("horizon must be positive")
        if hysteresis < 0:
            raise ValueError("hysteresis cannot be negative")
        self.horizon_stages = horizon_stages
        self.hysteresis = hysteresis
        self.profile: ExecutionProfile = profile_from_trace(trace)
        self.loss_rate = loss_rate
        self.stage_length = stage_length
        self.current_source = DataSource.DISK
        self._bytes_seen = 0
        self._stage_start = 0.0
        self._started = False
        self.decision_log: list[tuple[float, DataSource]] = []

    # ------------------------------------------------------------------
    def _decide(self, now: Seconds) -> None:
        assert self.env is not None
        bursts, thinks = self.profile.upcoming_slice(
            self._bytes_seen, self.stage_length * self.horizon_stages)
        if not bursts:
            return
        d, n = self.env.cost_model.stage_pair(bursts, thinks, now=now,
                                              vfs=self.env.vfs)
        source = decide(
            DecisionInputs(t_disk=d.time, e_disk=d.energy,
                           t_network=n.time, e_network=n.energy),
            loss_rate=self.loss_rate)
        if source != self.current_source and self._started:
            cur_e = d.energy if self.current_source is DataSource.DISK \
                else n.energy
            new_e = d.energy if source is DataSource.DISK else n.energy
            if new_e >= cur_e * (1.0 - self.hysteresis):
                source = self.current_source
        self.current_source = source
        self.decision_log.append((now, self.current_source))
        self._stage_start = now

    # ------------------------------------------------------------------
    def begin_run(self, now: Seconds) -> None:
        self._decide(now)
        self._started = True

    def on_tick(self, now: Seconds) -> None:
        if self._started and now - self._stage_start >= self.stage_length:
            self._decide(now)

    def on_syscall(self, ctx: RequestContext, start: float,
                   end: float) -> None:
        self._bytes_seen += ctx.nbytes

    def choose(self, ctx: RequestContext) -> DataSource:
        return self.current_source
