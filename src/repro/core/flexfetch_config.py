"""FlexFetch tunables (defaults = the paper's §3.1 settings).

Split from :mod:`repro.core.flexfetch` so the policy module holds only
decision logic; ``FlexFetchConfig(adaptive=False)`` still yields
**FlexFetch-static**, the §3.3.4 ablation with profile-driven decisions
but none of the runtime adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.burst import BURST_THRESHOLD_DEFAULT
from repro.core.decision import LOSS_RATE_DEFAULT
from repro.core.profile import STAGE_LENGTH_DEFAULT


@dataclass(frozen=True, slots=True)
class FlexFetchConfig:
    """FlexFetch tunables (defaults = §3.1 experimental settings)."""

    loss_rate: float = LOSS_RATE_DEFAULT
    stage_length: float = STAGE_LENGTH_DEFAULT
    burst_threshold: float = BURST_THRESHOLD_DEFAULT
    adaptive: bool = True
    #: how many stage-lengths of profile the decision rule looks ahead.
    #: One stage is myopic: a one-time cost like the active disk's
    #: spin-down tail dominates and the policy clings to the incumbent
    #: device; two stages amortise such transients correctly.
    decision_horizon_stages: float = 2.0
    #: relative energy advantage a source-switch must show before the
    #: policy acts on it.  Damps thrashing when the two devices are
    #: near break-even (mid-size think times), where estimate noise
    #: would otherwise flip the source every stage and pay a spin-up or
    #: mode-switch each time.
    switch_hysteresis: float = 0.10
    #: minimum simulated seconds between §2.3.1 re-evaluations.  The
    #: paper re-evaluates "constantly"; bounding the cadence keeps the
    #: on-line simulators' overhead negligible (the paper's own design
    #: goal: "such simulation causes minimal overhead") without
    #: affecting any stage-scale decision.
    reevaluation_min_interval: float = 5.0
    #: individually togglable adaptation features (for ablations);
    #: ignored (all off) when ``adaptive`` is False.
    use_splice_reevaluation: bool = True
    use_stage_audit: bool = True
    use_cache_filter: bool = True
    use_free_rider: bool = True

    def __post_init__(self) -> None:
        if self.loss_rate < 0:
            raise ValueError("loss rate cannot be negative")
        if self.stage_length <= 0:
            raise ValueError("stage length must be positive")
        if self.burst_threshold <= 0:
            raise ValueError("burst threshold must be positive")
        if self.switch_hysteresis < 0:
            raise ValueError("hysteresis cannot be negative")
        if self.decision_horizon_stages <= 0:
            raise ValueError("decision horizon must be positive")
        if self.reevaluation_min_interval < 0:
            raise ValueError("re-evaluation interval cannot be negative")

    def feature(self, name: str) -> bool:
        """Whether an adaptation feature is effectively enabled.

        The three *runtime* adaptations (splice re-evaluation, stage
        audit, free-riding) are gated by ``adaptive`` — they are what
        FlexFetch-static lacks (§3.3.4: it "does not have the capability
        to adapt to the run-time dynamics").  The §2.3.2 cache filter is
        part of the estimation itself and applies to both variants;
        toggle ``use_cache_filter`` directly to ablate it.
        """
        if name == "cache_filter":
            return self.use_cache_filter
        return self.adaptive and bool(getattr(self, f"use_{name}"))
