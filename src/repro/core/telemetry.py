"""Telemetry layer: run accounting and pluggable metrics sinks.

:class:`RunResult` is everything a replay produces — the numbers every
figure, table and benchmark consumes.  It is *built* here (from the
devices' meters and the policy's tallies) rather than inside the
simulation loop, so the loop stays pure orchestration.

:class:`MetricsSink` is the observation seam: sinks see the run begin,
every device service and profiled syscall, and the finished
:class:`RunResult`.  Sinks are strictly read-only passengers —
:class:`SinkSet` isolates them so a raising sink is disabled and
reported, never allowed to perturb simulation state or determinism.
Future tracing/streaming-telemetry backends plug in here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.units import Bytes, Joules, Seconds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import MobileSystem


@dataclass
class RunResult:
    """Everything a replay produces."""

    policy: str
    end_time: Seconds
    foreground_time: Seconds
    disk_energy: Joules
    wnic_energy: Joules
    requests: int
    device_requests: dict[str, int]
    device_bytes: dict[str, int]
    cache_hit_ratio: float
    disk_spinups: int
    disk_spindowns: int
    wnic_wakeups: int
    disk_breakdown: dict[str, float] = field(default_factory=dict)
    wnic_breakdown: dict[str, float] = field(default_factory=dict)
    disk_residency: dict[str, float] = field(default_factory=dict)
    wnic_residency: dict[str, float] = field(default_factory=dict)
    #: fault-injection accounting (all zero without a fault schedule).
    disk_spinup_failures: int = 0
    fault_retries: dict[str, int] = field(default_factory=dict)
    fault_failovers: dict[str, int] = field(default_factory=dict)
    fault_wasted_energy: dict[str, float] = field(default_factory=dict)

    @property
    def total_energy(self) -> Joules:
        """Total I/O energy: disk plus WNIC (the paper's y-axis)."""
        return self.disk_energy + self.wnic_energy

    def summary(self) -> str:
        """One-line human-readable result."""
        return (f"{self.policy:18s} E={self.total_energy:8.1f} J"
                f" (disk {self.disk_energy:7.1f} / wnic"
                f" {self.wnic_energy:7.1f})  T={self.end_time:8.1f} s")


class MetricsSink(Protocol):
    """Observer of one replay.  Implementations must be read-only.

    Every hook receives plain values (never live simulation objects), so
    even a misbehaving sink has nothing to mutate; :class:`SinkSet`
    additionally fences exceptions.
    """

    def on_run_begin(self, policy: str, now: Seconds) -> None: ...

    def on_service(self, program: str, source: str, nbytes: Bytes,
                   energy: Joules, completion: Seconds) -> None: ...

    def on_syscall(self, program: str, op: str, nbytes: Bytes,
                   now: Seconds) -> None: ...

    def on_run_end(self, result: RunResult) -> None: ...


class NullSink:
    """A sink that ignores everything (the do-nothing baseline)."""

    def on_run_begin(self, policy: str, now: Seconds) -> None:
        return None

    def on_service(self, program: str, source: str, nbytes: Bytes,
                   energy: Joules, completion: Seconds) -> None:
        return None

    def on_syscall(self, program: str, op: str, nbytes: Bytes,
                   now: Seconds) -> None:
        return None

    def on_run_end(self, result: RunResult) -> None:
        return None


class RecordingSink:
    """A sink that appends every event to in-memory lists (for tests
    and ad-hoc inspection)."""

    def __init__(self) -> None:
        self.begins: list[tuple[str, float]] = []
        self.services: list[tuple[str, str, int, float, float]] = []
        self.syscalls: list[tuple[str, str, int, float]] = []
        self.results: list[RunResult] = []

    def on_run_begin(self, policy: str, now: Seconds) -> None:
        self.begins.append((policy, now))

    def on_service(self, program: str, source: str, nbytes: Bytes,
                   energy: Joules, completion: Seconds) -> None:
        self.services.append((program, source, nbytes, energy,
                              completion))

    def on_syscall(self, program: str, op: str, nbytes: Bytes,
                   now: Seconds) -> None:
        self.syscalls.append((program, op, nbytes, now))

    def on_run_end(self, result: RunResult) -> None:
        self.results.append(result)


class SinkSet:
    """Fan-out to the attached sinks with error isolation.

    A sink that raises is disabled for the rest of the run and the
    ``(sink, hook, message)`` triple is recorded in :attr:`errors`; the
    simulation itself never observes sink failures, so results are
    bit-identical with or without broken sinks.
    """

    def __init__(self, sinks: tuple[MetricsSink, ...] = ()) -> None:
        self._sinks: list[MetricsSink] = list(sinks)
        self.errors: list[tuple[str, str, str]] = []

    def __len__(self) -> int:
        return len(self._sinks)

    def add(self, sink: MetricsSink) -> None:
        self._sinks.append(sink)

    def _dispatch(self, hook: str, *args: object) -> None:
        for sink in list(self._sinks):
            try:
                getattr(sink, hook)(*args)
            except Exception as exc:
                self._sinks.remove(sink)
                self.errors.append(
                    (type(sink).__name__, hook, str(exc)))

    # -- fan-out hooks --------------------------------------------------
    def on_run_begin(self, policy: str, now: Seconds) -> None:
        self._dispatch("on_run_begin", policy, now)

    def on_service(self, program: str, source: str, nbytes: Bytes,
                   energy: Joules, completion: Seconds) -> None:
        self._dispatch("on_service", program, source, nbytes, energy,
                       completion)

    def on_syscall(self, program: str, op: str, nbytes: Bytes,
                   now: Seconds) -> None:
        self._dispatch("on_syscall", program, op, nbytes, now)

    def on_run_end(self, result: RunResult) -> None:
        self._dispatch("on_run_end", result)


def build_run_result(env: MobileSystem, *, policy_name: str,
                     routed_requests: dict[str, int],
                     routed_bytes: dict[str, int],
                     end_time: Seconds, foreground_time: Seconds,
                     requests: int,
                     fault_retries: dict[str, int],
                     fault_failovers: dict[str, int],
                     fault_wasted_energy: dict[str, float]) -> RunResult:
    """Assemble the accounting of a finished replay.

    ``env`` must already be advanced to ``end_time`` so the devices'
    meters and residencies are settled; the books then balance exactly.
    """
    return RunResult(
        policy=policy_name,
        end_time=end_time,
        foreground_time=foreground_time,
        disk_energy=env.disk.energy(end_time),
        wnic_energy=env.wnic.energy(end_time),
        requests=requests,
        device_requests=dict(routed_requests),
        device_bytes=dict(routed_bytes),
        cache_hit_ratio=env.vfs.cache.stats.hit_ratio,
        disk_spinups=env.disk.spinup_count,
        disk_spindowns=env.disk.spindown_count,
        wnic_wakeups=env.wnic.wakeup_count,
        disk_breakdown=env.disk.meter.breakdown(),
        wnic_breakdown=env.wnic.meter.breakdown(),
        disk_residency=env.disk.residency(end_time),
        wnic_residency=env.wnic.residency(end_time),
        disk_spinup_failures=env.disk.spinup_failure_count,
        fault_retries=dict(fault_retries),
        fault_failovers=dict(fault_failovers),
        fault_wasted_energy=dict(fault_wasted_energy),
    )
