"""Telemetry layer: run accounting and pluggable metrics sinks.

:class:`RunResult` is everything a replay produces — the numbers every
figure, table and benchmark consumes.  It is *built* here (from the
devices' meters and the policy's tallies) rather than inside the
simulation loop, so the loop stays pure orchestration.

:class:`MetricsSink` is the observation seam: sinks see the run begin,
every device service and profiled syscall, and the finished
:class:`RunResult`.  Sinks are strictly read-only passengers —
:class:`SinkSet` isolates them so a raising sink is disabled and
reported, never allowed to perturb simulation state or determinism.

:class:`StreamingStat` / :class:`P2Quantile` are the out-of-core
aggregation primitives: count/sum/min/max plus P² streaming
percentiles in O(1) memory, so a sweep can fold thousands of cells
without retaining every :class:`RunResult` (see
:class:`~repro.experiments.runner.SweepAggregate`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.units import Bytes, Joules, Seconds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import MobileSystem


@dataclass
class RunResult:
    """Everything a replay produces."""

    policy: str
    end_time: Seconds
    foreground_time: Seconds
    disk_energy: Joules
    wnic_energy: Joules
    requests: int
    device_requests: dict[str, int]
    device_bytes: dict[str, int]
    cache_hit_ratio: float
    disk_spinups: int
    disk_spindowns: int
    wnic_wakeups: int
    disk_breakdown: dict[str, float] = field(default_factory=dict)
    wnic_breakdown: dict[str, float] = field(default_factory=dict)
    disk_residency: dict[str, float] = field(default_factory=dict)
    wnic_residency: dict[str, float] = field(default_factory=dict)
    #: fault-injection accounting (all zero without a fault schedule).
    disk_spinup_failures: int = 0
    fault_retries: dict[str, int] = field(default_factory=dict)
    fault_failovers: dict[str, int] = field(default_factory=dict)
    fault_wasted_energy: dict[str, float] = field(default_factory=dict)

    @property
    def total_energy(self) -> Joules:
        """Total I/O energy: disk plus WNIC (the paper's y-axis)."""
        return self.disk_energy + self.wnic_energy

    def summary(self) -> str:
        """One-line human-readable result."""
        return (f"{self.policy:18s} E={self.total_energy:8.1f} J"
                f" (disk {self.disk_energy:7.1f} / wnic"
                f" {self.wnic_energy:7.1f})  T={self.end_time:8.1f} s")


class MetricsSink(Protocol):
    """Observer of one replay.  Implementations must be read-only.

    Every hook receives plain values (never live simulation objects), so
    even a misbehaving sink has nothing to mutate; :class:`SinkSet`
    additionally fences exceptions.
    """

    def on_run_begin(self, policy: str, now: Seconds) -> None: ...

    def on_service(self, program: str, source: str, nbytes: Bytes,
                   energy: Joules, completion: Seconds) -> None: ...

    def on_syscall(self, program: str, op: str, nbytes: Bytes,
                   now: Seconds) -> None: ...

    def on_run_end(self, result: RunResult) -> None: ...


class NullSink:
    """A sink that ignores everything (the do-nothing baseline)."""

    def on_run_begin(self, policy: str, now: Seconds) -> None:
        return None

    def on_service(self, program: str, source: str, nbytes: Bytes,
                   energy: Joules, completion: Seconds) -> None:
        return None

    def on_syscall(self, program: str, op: str, nbytes: Bytes,
                   now: Seconds) -> None:
        return None

    def on_run_end(self, result: RunResult) -> None:
        return None


class RecordingSink:
    """A sink that appends every event to in-memory lists (for tests
    and ad-hoc inspection)."""

    def __init__(self) -> None:
        self.begins: list[tuple[str, float]] = []
        self.services: list[tuple[str, str, int, float, float]] = []
        self.syscalls: list[tuple[str, str, int, float]] = []
        self.results: list[RunResult] = []

    def on_run_begin(self, policy: str, now: Seconds) -> None:
        self.begins.append((policy, now))

    def on_service(self, program: str, source: str, nbytes: Bytes,
                   energy: Joules, completion: Seconds) -> None:
        self.services.append((program, source, nbytes, energy,
                              completion))

    def on_syscall(self, program: str, op: str, nbytes: Bytes,
                   now: Seconds) -> None:
        self.syscalls.append((program, op, nbytes, now))

    def on_run_end(self, result: RunResult) -> None:
        self.results.append(result)


class SinkSet:
    """Fan-out to the attached sinks with error isolation.

    A sink that raises is disabled for the rest of the run and the
    ``(sink, hook, message)`` triple is recorded in :attr:`errors`; the
    simulation itself never observes sink failures, so results are
    bit-identical with or without broken sinks.
    """

    def __init__(self, sinks: tuple[MetricsSink, ...] = ()) -> None:
        self._sinks: list[MetricsSink] = list(sinks)
        self.errors: list[tuple[str, str, str]] = []

    def __len__(self) -> int:
        return len(self._sinks)

    def add(self, sink: MetricsSink) -> None:
        self._sinks.append(sink)

    def _dispatch(self, hook: str, *args: object) -> None:
        for sink in list(self._sinks):
            try:
                getattr(sink, hook)(*args)
            except Exception as exc:
                self._sinks.remove(sink)
                self.errors.append(
                    (type(sink).__name__, hook, str(exc)))

    # -- fan-out hooks --------------------------------------------------
    def on_run_begin(self, policy: str, now: Seconds) -> None:
        self._dispatch("on_run_begin", policy, now)

    def on_service(self, program: str, source: str, nbytes: Bytes,
                   energy: Joules, completion: Seconds) -> None:
        self._dispatch("on_service", program, source, nbytes, energy,
                       completion)

    def on_syscall(self, program: str, op: str, nbytes: Bytes,
                   now: Seconds) -> None:
        self._dispatch("on_syscall", program, op, nbytes, now)

    def on_run_end(self, result: RunResult) -> None:
        self._dispatch("on_run_end", result)


class P2Quantile:
    """Streaming quantile estimation by the P² algorithm.

    Jain & Chlamtac's piecewise-parabolic estimator: five markers track
    the running quantile in O(1) memory, adjusted per observation.  The
    estimate is **order-sensitive**, which is why the sweep layers fold
    points in sweep-index order (parallel completions are reordered
    first) — the streamed estimate then matches a serial fold
    bit-for-bit.  With fewer than five observations the exact
    nearest-rank value of the buffered samples is returned.
    """

    __slots__ = ("q", "_initial", "_heights", "_n", "_ns", "_dns")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._initial: list[float] = []
        self._heights: list[float] | None = None
        self._n = [0, 1, 2, 3, 4]
        self._ns = [0.0, 2 * q, 4 * q, 2 + 2 * q, 4.0]
        self._dns = [0.0, q / 2, q, (1 + q) / 2, 1.0]

    @property
    def count(self) -> int:
        if self._heights is None:
            return len(self._initial)
        return self._n[4] + 1

    def observe(self, x: float) -> None:
        if self._heights is None:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._heights = sorted(self._initial)
            return
        h, n = self._heights, self._n
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        elif x < h[1]:
            k = 0
        elif x < h[2]:
            k = 1
        elif x < h[3]:
            k = 2
        else:
            k = 3
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            self._ns[i] += self._dns[i]
        for i in range(1, 4):
            excess = self._ns[i] - n[i]
            if (excess >= 1.0 and n[i + 1] - n[i] > 1) or \
                    (excess <= -1.0 and n[i - 1] - n[i] < -1):
                d = 1 if excess >= 0.0 else -1
                candidate = self._parabolic(i, d)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, d)
                n[i] += d

    def _parabolic(self, i: int, d: int) -> float:
        h, n = self._heights, self._n
        assert h is not None
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1])
            / (n[i] - n[i - 1]))

    def _linear(self, i: int, d: int) -> float:
        h, n = self._heights, self._n
        assert h is not None
        return h[i] + d * (h[i + d] - h[i]) / (n[i + d] - n[i])

    def value(self) -> float:
        """The current quantile estimate (NaN with no observations)."""
        if self._heights is not None:
            return self._heights[2]
        if not self._initial:
            return math.nan
        ordered = sorted(self._initial)
        rank = round(self.q * (len(ordered) - 1))
        return ordered[rank]


class StreamingStat:
    """O(1)-memory summary of a value stream.

    Exact count/sum/min/max/mean plus P² percentile estimates.  The
    default percentiles (p50/p90) are what the sweep aggregate reports;
    pass a different ``quantiles`` tuple to track others.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_estimators")

    DEFAULT_QUANTILES = (0.5, 0.9)

    def __init__(self, quantiles: tuple[float, ...] = DEFAULT_QUANTILES
                 ) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._estimators = {float(q): P2Quantile(q) for q in quantiles}

    def observe(self, x: float) -> None:
        self.count += 1
        self.total += x
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x
        for estimator in self._estimators.values():
            estimator.observe(x)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Current estimate of the tracked quantile ``q``."""
        return self._estimators[float(q)].value()

    def as_dict(self) -> dict[str, float]:
        """Plain-value summary (stable keys, exact floats)."""
        summary = {
            "count": float(self.count),
            "sum": self.total,
            "min": self.minimum if self.count else math.nan,
            "max": self.maximum if self.count else math.nan,
            "mean": self.mean,
        }
        for q, estimator in sorted(self._estimators.items()):
            summary[f"p{q * 100:g}"] = estimator.value()
        return summary


def build_run_result(env: MobileSystem, *, policy_name: str,
                     routed_requests: dict[str, int],
                     routed_bytes: dict[str, int],
                     end_time: Seconds, foreground_time: Seconds,
                     requests: int,
                     fault_retries: dict[str, int],
                     fault_failovers: dict[str, int],
                     fault_wasted_energy: dict[str, float]) -> RunResult:
    """Assemble the accounting of a finished replay.

    ``env`` must already be advanced to ``end_time`` so the devices'
    meters and residencies are settled; the books then balance exactly.
    """
    return RunResult(
        policy=policy_name,
        end_time=end_time,
        foreground_time=foreground_time,
        disk_energy=env.disk.energy(end_time),
        wnic_energy=env.wnic.energy(end_time),
        requests=requests,
        device_requests=dict(routed_requests),
        device_bytes=dict(routed_bytes),
        cache_hit_ratio=env.vfs.cache.stats.hit_ratio,
        disk_spinups=env.disk.spinup_count,
        disk_spindowns=env.disk.spindown_count,
        wnic_wakeups=env.wnic.wakeup_count,
        disk_breakdown=env.disk.meter.breakdown(),
        wnic_breakdown=env.wnic.meter.breakdown(),
        disk_residency=env.disk.residency(end_time),
        wnic_residency=env.wnic.residency(end_time),
        disk_spinup_failures=env.disk.spinup_failure_count,
        fault_retries=dict(fault_retries),
        fault_failovers=dict(fault_failovers),
        fault_wasted_energy=dict(fault_wasted_energy),
    )
