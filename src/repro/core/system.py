"""Shared simulation environment: devices, kernel path, cost model.

:class:`MobileSystem` wires the bottom layers together for one replay —
the two storage devices, the disk layout, the kernel path
(cache/readahead/write-back/C-SCAN) and the shared
:class:`~repro.core.costmodel.CostModel` every policy estimates with.
It owns no policy logic and no replay loop; those live in the routing
and session layers above.
"""

from __future__ import annotations

from repro.core.costmodel import CostModel
from repro.core.decision import DataSource
from repro.devices.disk import DiskState, HardDisk
from repro.devices.dpm import SpindownPolicy
from repro.devices.layout import BLOCK_SIZE, DiskLayout
from repro.devices.service import (
    DeviceService,
    DiskService,
    WnicService,
)
from repro.devices.specs import AIRONET_350, HITACHI_DK23DA, DiskSpec, WnicSpec
from repro.devices.wnic import WirelessNic
from repro.kernel.page import Extent
from repro.kernel.path import KernelPath
from repro.kernel.scheduler import CScanScheduler
from repro.kernel.vfs import VirtualFileSystem
from repro.sim.clock import MB
from repro.traces.compile import CompiledTrace
from repro.traces.trace import Trace
from repro.units import Bytes, Seconds

_STANDBY = DiskState.STANDBY.value


class MobileSystem:
    """Shared environment: devices, kernel path, and disk layout."""

    def __init__(self, *, disk_spec: DiskSpec = HITACHI_DK23DA,
                 wnic_spec: WnicSpec = AIRONET_350,
                 memory_bytes: Bytes = 64 * MB,
                 seed: int = 0,
                 spindown_policy: SpindownPolicy | None = None) -> None:
        self.disk = HardDisk(disk_spec, spindown_policy=spindown_policy)
        self.wnic = WirelessNic(wnic_spec)
        self.vfs = VirtualFileSystem(memory_bytes)
        self.layout = DiskLayout(seed)
        self.scheduler = CScanScheduler()
        # -- layer seams over the raw devices --------------------------
        self.kernel = KernelPath(self.vfs, self.scheduler, self._locate)
        self.cost_model = CostModel(self.disk, self.wnic, self.layout)
        self._services: dict[DataSource, DeviceService] = {
            DataSource.DISK: DiskService(self.disk, self.layout),
            DataSource.NETWORK: WnicService(self.wnic),
        }

    def _locate(self, extent: Extent) -> int:
        """Disk start block of an extent (the kernel path's elevator
        and the disk service both key off the same layout)."""
        return self.layout.block_of(extent.inode,
                                    extent.start * BLOCK_SIZE)

    def service_for(self, source: DataSource) -> DeviceService:
        """The device service a request routed to ``source`` runs on."""
        return self._services[source]

    def register_trace(self, trace: Trace | CompiledTrace) -> None:
        """Make a trace's files known to the VFS and the disk layout.

        Registration order is ascending inode either way: the compiled
        file table is stored inode-sorted at compile time, matching the
        sort the record-level path performs here — layout placement
        (and therefore every seek time) depends on that order.
        """
        if isinstance(trace, CompiledTrace):
            inodes, sizes = trace.files_view()
            for inode, size in zip(inodes, sizes, strict=True):
                self.vfs.register_file(inode, size)
                self.layout.add_file(inode, max(size, 1))
            return
        for info in sorted(trace.files.values(), key=lambda f: f.inode):
            self.vfs.register_file(info.inode, info.size_bytes)
            self.layout.add_file(info.inode, max(info.size_bytes, 1))

    @property
    def disk_active(self) -> bool:
        """Disk spinning (idle or active)?"""
        return self.disk._state != _STANDBY

    def advance(self, now: Seconds) -> None:
        """Advance both devices (DPM timers fire as needed)."""
        self.disk.advance_to(now)
        self.wnic.advance_to(now)
