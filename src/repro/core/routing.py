"""Policy routing layer: disk or network, with fault recovery.

:class:`RequestRouter` sits between the workload/kernel layers (which
produce device-bound extents) and the device service layer (which moves
them).  For every extent it asks the policy under test for a source,
runs the transfer on that source's :class:`DeviceService`, and feeds
the outcome back to the policy's observation hooks.

Under an active fault schedule the router also owns the recovery
state machine — timeout, exponential-backoff retries, mid-stage
failover to the other device, and cooldown windows that keep follow-up
requests off a device that just failed — charging every wasted joule
so the policies' audits can learn from failures.
"""

from __future__ import annotations

from repro.core.decision import DataSource
from repro.core.policies import Policy, RequestContext
from repro.core.system import MobileSystem
from repro.core.workload import ProgramDriver
from repro.devices.layout import BLOCK_SIZE
from repro.devices.service import ServiceOutcome
from repro.devices.wnic import Direction
from repro.faults.invariants import InvariantChecker
from repro.faults.schedule import FaultSchedule
from repro.kernel.page import Extent
from repro.sim.engine import SimulationError
from repro.traces.record import OpType
from repro.units import Seconds


class RequestRouter:
    """Routes extents through the policy onto device services."""

    #: circuit breaker on one request's fault-recovery chain; pathological
    #: hand-built schedules aside, the consecutive-spin-up-failure cap in
    #: :class:`FaultSchedule` guarantees success far below this.
    MAX_FAULT_ATTEMPTS = 32

    def __init__(self, env: MobileSystem, policy: Policy, *,
                 faults: FaultSchedule | None = None,
                 checker: InvariantChecker | None = None) -> None:
        self.env = env
        self.policy = policy
        self.faults = faults
        self.checker = checker
        self._disk_service = env.service_for(DataSource.DISK)
        self._wnic_service = env.service_for(DataSource.NETWORK)
        self._avoid_until = {DataSource.DISK: float("-inf"),
                             DataSource.NETWORK: float("-inf")}
        self.fault_retries: dict[str, int] = {}
        self.fault_failovers: dict[str, int] = {}
        self.fault_wasted: dict[str, float] = {}

    # ------------------------------------------------------------------
    # device service
    # ------------------------------------------------------------------
    def _service_extent(self, extent: Extent, source: DataSource,
                        when: Seconds, op: OpType) -> ServiceOutcome:
        """Move one extent on the chosen device, returning its result."""
        direction = Direction.RECV if op is OpType.READ else Direction.SEND
        return self.env.service_for(source).transfer(
            when, extent.nbytes, inode=extent.inode,
            offset=extent.start * BLOCK_SIZE, npages=extent.npages,
            direction=direction)

    def service(self, prog: ProgramDriver, extent: Extent,
                when: Seconds, op: OpType
                ) -> tuple[DataSource, ServiceOutcome]:
        """Policy-route one extent; returns (actual source, result)."""
        spec = prog.spec
        policy = self.policy
        offset = extent.start * BLOCK_SIZE
        ctx = RequestContext(
            now=when, program=prog.name, profiled=spec.profiled,
            disk_pinned=spec.disk_pinned, inode=extent.inode,
            offset=offset, nbytes=extent.nbytes, op=op)
        source = policy.route(ctx)
        if self.faults is None:
            # Inlined _service_extent: this is the per-extent hot path.
            svc = (self._disk_service if source is DataSource.DISK
                   else self._wnic_service)
            result = svc.transfer(
                when, extent.nbytes, inode=extent.inode, offset=offset,
                npages=extent.npages,
                direction=(Direction.RECV if op is OpType.READ
                           else Direction.SEND))
        else:
            source, result = self._service_with_recovery(
                prog, extent, source, when, op, ctx)
        if op is OpType.READ:
            self.env.kernel.complete_fetch(extent, result.completion)
        if not spec.profiled and source is DataSource.DISK:
            policy.on_external_disk_request(when)
        policy.on_serviced(ctx, source, result)
        if self.checker is not None:
            self.checker.on_service(result, program=prog.name,
                                    source=source.value)
        return source, result

    # ------------------------------------------------------------------
    # fault recovery
    # ------------------------------------------------------------------
    def _effective_source(self, intended: DataSource,
                          ctx: RequestContext) -> DataSource:
        """Honour failover cooldowns: avoid a recently failed device."""
        if ctx.disk_pinned:
            return DataSource.DISK
        other = (DataSource.NETWORK if intended is DataSource.DISK
                 else DataSource.DISK)
        if (ctx.now < self._avoid_until[intended]
                and ctx.now >= self._avoid_until[other]):
            return other
        return intended

    def _service_with_recovery(
            self, prog: ProgramDriver, extent: Extent,
            intended: DataSource, when: Seconds, op: OpType,
            ctx: RequestContext,
    ) -> tuple[DataSource, ServiceOutcome]:
        """Service under faults: timeout -> backoff retries -> failover.

        A network fetch that hits an outage times out after
        ``spec.network_timeout`` and is retried with exponential backoff;
        once the retry budget is spent the request fails over mid-stage
        to the disk.  Symmetrically a disk whose spin-up retries are
        exhausted (the device retries internally) fails over to the
        WNIC.  Disk-pinned data has no replica, so it can only back off
        and retry the disk.  Returns ``(actual_source, result)``.
        """
        assert self.faults is not None
        spec = self.faults.spec
        current = self._effective_source(intended, ctx)
        t = when
        attempts_on = {DataSource.DISK: 0, DataSource.NETWORK: 0}
        total_attempts = 0
        cross_energy = 0.0
        while True:
            result = self._service_extent(extent, current, t, op)
            if current is not intended:
                cross_energy += result.energy
            if not getattr(result, "failed", False):
                break
            total_attempts += 1
            attempts_on[current] += 1
            self.fault_retries[current.value] = \
                self.fault_retries.get(current.value, 0) + 1
            self.fault_wasted[current.value] = \
                self.fault_wasted.get(current.value, 0.0) + result.energy
            if total_attempts >= self.MAX_FAULT_ATTEMPTS:
                raise SimulationError(
                    f"fault recovery for {prog.name!r} exceeded"
                    f" {self.MAX_FAULT_ATTEMPTS} attempts at"
                    f" t={result.completion:.3f}")
            t = result.completion
            # The disk retries spin-up internally (bounded backoff), so a
            # failed disk service has already spent its budget.
            budget = (spec.network_retries
                      if current is DataSource.NETWORK else 0)
            if attempts_on[current] > budget and not ctx.disk_pinned:
                fallback = (DataSource.DISK
                            if current is DataSource.NETWORK
                            else DataSource.NETWORK)
                self._avoid_until[current] = t + spec.failover_cooldown
                self.fault_failovers[current.value] = \
                    self.fault_failovers.get(current.value, 0) + 1
                self.policy.on_failover(t, current, fallback)
                current = fallback
                attempts_on[current] = 0
            else:
                t += spec.retry_backoff * 2 ** (attempts_on[current] - 1)
        if total_attempts or cross_energy:
            # Tell the policy so its stage-end audit can attribute the
            # retry waste / cross-device service to the intended source.
            self.policy.on_fault(result.completion, intended,
                                 cross_energy, total_attempts)
        if current is not intended:
            # The route() tally charged the intended device; move it.
            self.policy.routed_requests[intended] -= 1
            self.policy.routed_bytes[intended] -= ctx.nbytes
            self.policy.routed_requests[current] += 1
            self.policy.routed_bytes[current] += ctx.nbytes
        return current, result
