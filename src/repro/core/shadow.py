"""Shadow-execution sanitizer for the BurstPlan fast path.

The fast path (DESIGN.md §15–§16) is a performance shortcut with a
bit-identical contract: for every plan-shaped cell it must produce the
same :class:`~repro.core.telemetry.RunResult` — every float, dict and
counter — as the discrete event loop.  The static rules R10–R13
(``repro.lint.equiv``) catch the *structural* ways the two replays can
drift apart; this module is the dynamic half: with ``REPRO_SANITIZE=1``
(or ``flexfetch sweep --sanitize``) every cell that engages the fast
path is re-run through the event loop in shadow and the two runs are
diffed at the bit level, stage by stage:

1. **service** — the per-extent service stream (program, source,
   bytes, energy, completion) recorded by a telemetry sink on each run;
2. **syscall** — the demand-level observation stream the policy saw;
3. **result** — every ``RunResult`` field.

The first mismatch raises :class:`ReplayDivergenceError` carrying the
stage, the index of the diverging event, the field, both values and
both energy breakdowns — enough to localise a single wrong constant to
the record that first exposed it.

The toggle is resolved once at import time (exactly like
``REPRO_NO_NUMPY`` in :mod:`repro.core.costmodel`): reading the
environment inside the sweep worker's call cone would be a determinism
leak that lint rule R6 rightly rejects.
"""

from __future__ import annotations

import os
import struct
from collections.abc import Callable, Sequence
from dataclasses import fields
from typing import TYPE_CHECKING

from repro.core.telemetry import RecordingSink, RunResult

if TYPE_CHECKING:
    from repro.core.session import SimulationSession

#: Process-wide default for the sanitizer, from ``REPRO_SANITIZE``.
#: Explicit ``sanitize=`` arguments (CLI flag, executor knob) override
#: it per sweep; forked pool workers inherit the parent's value.
SANITIZE_DEFAULT: bool = bool(os.environ.get("REPRO_SANITIZE"))

_SERVICE_FIELDS = ("program", "source", "nbytes", "energy", "completion")
_SYSCALL_FIELDS = ("program", "op", "nbytes", "now")


class ReplayDivergenceError(RuntimeError):
    """The fast path and the event loop disagreed at the bit level.

    Attributes
    ----------
    stage:
        ``"service"``, ``"syscall"`` or ``"result"`` — the first
        comparison stage that diverged.
    index:
        Index of the diverging event within the stage's stream
        (``-1`` for the ``result`` stage, which has no stream).
    field:
        Name of the diverging field within that event (``"count"``
        when one replay produced more events than the other).
    fast / slow:
        The two diverging values (fast path first).
    fast_breakdown / slow_breakdown:
        The merged ``disk.*``/``wnic.*`` energy breakdowns of both
        runs, for post-mortem without re-running either path.
    """

    def __init__(self, *, stage: str, index: int, field: str,
                 fast: object, slow: object,
                 fast_breakdown: dict[str, float],
                 slow_breakdown: dict[str, float]) -> None:
        self.stage = stage
        self.index = index
        self.field = field
        self.fast = fast
        self.slow = slow
        self.fast_breakdown = dict(fast_breakdown)
        self.slow_breakdown = dict(slow_breakdown)
        at = f"[{index}]" if index >= 0 else ""
        super().__init__(
            f"fast path diverged from event loop at {stage}{at}"
            f".{field}: fast={fast!r} != slow={slow!r}")


def _bit_equal(a: object, b: object) -> bool:
    """Bitwise equality: NaN == NaN, but 0.0 != -0.0 stays visible."""
    if isinstance(a, float) and isinstance(b, float):
        return struct.pack("<d", a) == struct.pack("<d", b)
    if isinstance(a, dict) and isinstance(b, dict):
        return (a.keys() == b.keys()
                and all(_bit_equal(v, b[k]) for k, v in a.items()))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (len(a) == len(b)
                and all(_bit_equal(x, y) for x, y in zip(a, b)))
    return bool(a == b)


def _breakdown(result: RunResult) -> dict[str, float]:
    merged = dict(result.disk_breakdown)
    merged.update(result.wnic_breakdown)
    return merged


def _diff_stream(stage: str, names: tuple[str, ...],
                 fast_events: Sequence[tuple[object, ...]],
                 slow_events: Sequence[tuple[object, ...]],
                 fast: RunResult, slow: RunResult) -> None:
    for index, (a, b) in enumerate(zip(fast_events, slow_events)):
        for name, x, y in zip(names, a, b):
            if not _bit_equal(x, y):
                raise ReplayDivergenceError(
                    stage=stage, index=index, field=name, fast=x,
                    slow=y, fast_breakdown=_breakdown(fast),
                    slow_breakdown=_breakdown(slow))
    if len(fast_events) != len(slow_events):
        raise ReplayDivergenceError(
            stage=stage, index=min(len(fast_events), len(slow_events)),
            field="count", fast=len(fast_events),
            slow=len(slow_events), fast_breakdown=_breakdown(fast),
            slow_breakdown=_breakdown(slow))


def compare_runs(fast: RunResult, slow: RunResult,
                 fast_sink: RecordingSink | None = None,
                 slow_sink: RecordingSink | None = None) -> None:
    """Diff two replays; raise :class:`ReplayDivergenceError` on the
    first bit-level mismatch, event streams before summary fields."""
    if fast_sink is not None and slow_sink is not None:
        _diff_stream("service", _SERVICE_FIELDS, fast_sink.services,
                     slow_sink.services, fast, slow)
        _diff_stream("syscall", _SYSCALL_FIELDS, fast_sink.syscalls,
                     slow_sink.syscalls, fast, slow)
    for spec in fields(RunResult):
        a = getattr(fast, spec.name)
        b = getattr(slow, spec.name)
        if not _bit_equal(a, b):
            raise ReplayDivergenceError(
                stage="result", index=-1, field=spec.name, fast=a,
                slow=b, fast_breakdown=_breakdown(fast),
                slow_breakdown=_breakdown(slow))


def run_shadowed(session: SimulationSession,
                 build_twin: Callable[[], SimulationSession]
                 ) -> RunResult:
    """Run ``session``; if it took the fast path, replay ``build_twin``
    through the event loop and verify bit-identical behaviour.

    ``build_twin`` must recreate the session from scratch (policies and
    devices are stateful, so the primary cannot be re-run); the twin is
    forced onto the event loop with ``with_fast_path(False)``.  Returns
    the primary's result — a sanitized sweep is bit-identical to an
    unsanitized one or it raises.
    """
    fast_sink = RecordingSink()
    session.add_sink(fast_sink)
    fast = session.run()
    if not session.used_fast_path:
        return fast
    slow_sink = RecordingSink()
    twin = build_twin().with_fast_path(False).add_sink(slow_sink)
    slow = twin.run()
    compare_runs(fast, slow, fast_sink, slow_sink)
    return fast
