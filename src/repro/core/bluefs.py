"""BlueFS-style reactive data-source selection (§1.2, §3.3).

BlueFS (Nightingale & Flinn, OSDI '04) "selects a target device
currently of the lowest access cost" for every request and issues
*ghost hints* to a device it is not using when, in hindsight, that
device would have been cheaper — so an idle disk gets spun up once the
accumulated opportunity cost of fetching over the network exceeds the
spin-up investment.

This reproduction implements the scheme the paper compares against:

* **per-request myopic choice** — each request goes to the device with
  the smaller estimated marginal energy given its *current* power
  state (a standby disk is charged its spin-up; a dozing WNIC its mode
  switch);
* **ghost hints toward the disk** — every network-serviced request
  accumulates ``max(0, E_net - E_disk_if_spinning)``; when the
  accumulator passes the spin-up + spin-down investment, the disk is
  spun up proactively and the accumulator resets;
* **hint decay** — a disk spin-down wipes the accumulated hints (the
  opportunity window has closed).

The paper's observed pathologies emerge from exactly these mechanics:
with both devices powered, small requests still favour the seek-free
network while large ones favour the disk, so mixed workloads keep both
devices drawing power (§3.3.1), and sparse streams trigger fruitless
ghost-hint spin-ups (§3.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.decision import DataSource
from repro.core.policies import Policy, RequestContext
from repro.devices.disk import DiskState
from repro.units import Seconds

_IDLE = DiskState.IDLE.value
_STANDBY = DiskState.STANDBY.value


@dataclass(frozen=True, slots=True)
class BlueFSConfig:
    """Tunables of the BlueFS reproduction.

    ``hint_threshold_factor`` scales the spin-up investment the ghost
    hints must cover before the disk is spun up (1.0 = spin-up plus
    spin-down energy, the break-even investment).

    ``cost_metric`` selects what the per-request choice minimises.
    BlueFS is first a *performance* system — it picks the device that
    services the request fastest given its current power state — and
    manages energy through ghost hints; ``"time"`` (the default) models
    that and produces the paper's observed pathology of keeping both
    devices hot under mixed request sizes.  ``"energy"`` is a greedier
    variant used by the ablation benchmarks.
    """

    hint_threshold_factor: float = 0.3
    cost_metric: str = "time"
    #: ghost hints also refresh the disk power manager's idle timer: a
    #: request the spinning disk would have serviced more cheaply tells
    #: the manager the disk is still wanted, postponing its spin-down.
    #: This is what keeps *both* devices powered under mixed request
    #: sizes — the §3.3.1 pathology.
    hints_keep_disk_alive: bool = True

    def __post_init__(self) -> None:
        if self.hint_threshold_factor <= 0:
            raise ValueError("hint threshold factor must be positive")
        if self.cost_metric not in ("time", "energy"):
            raise ValueError(f"unknown cost metric: {self.cost_metric!r}")


class BlueFSPolicy(Policy):
    """Reactive lowest-current-cost selection with ghost hints."""

    name = "BlueFS"

    def __init__(self, config: BlueFSConfig | None = None) -> None:
        super().__init__()
        self.config = config or BlueFSConfig()
        self.ghost_hint_energy = 0.0
        self.ghost_spinups = 0
        self.decision_log: list[tuple[float, DataSource]] = []
        self._seen_spindowns = 0
        self._use_time = self.config.cost_metric == "time"
        self._investment: float | None = None

    # ------------------------------------------------------------------
    def choose(self, ctx: RequestContext) -> DataSource:
        assert self.env is not None
        d, n = self.env.cost_model.marginal_pair(ctx.now, ctx.nbytes,
                                                 ctx.op)
        if self._use_time:
            cost_d, cost_n = d.time, n.time
        else:
            cost_d, cost_n = d.energy, n.energy
        source = DataSource.DISK if cost_d <= cost_n else DataSource.NETWORK
        self.decision_log.append((ctx.now, source))
        return source

    # ------------------------------------------------------------------
    def on_serviced(self, ctx: RequestContext, source: DataSource,
                    result: Any) -> None:
        """Accumulate ghost hints for network-serviced requests."""
        assert self.env is not None
        disk = self.env.disk
        if source is DataSource.NETWORK:
            # What would this request have cost on a spinning disk?
            e_active = self.env.cost_model.disk_marginal(
                ctx.nbytes, from_state=_IDLE).energy
            actual = float(getattr(result, "energy", 0.0))
            self.ghost_hint_energy += max(0.0, actual - e_active)
            if (self.config.hints_keep_disk_alive
                    and actual > e_active
                    and disk.state != _STANDBY):
                disk.note_activity(ctx.now)
            investment = self._investment
            if investment is None:
                # Pure function of the frozen disk spec; computed once.
                investment = self._investment = \
                    self.env.cost_model.disk_transition_investment() \
                    * self.config.hint_threshold_factor
            if (self.ghost_hint_energy >= investment
                    and disk.state == _STANDBY):
                disk.force_spinup(ctx.now)
                self.ghost_spinups += 1
                self.ghost_hint_energy = 0.0
        else:
            # Disk serviced the request: the hints did their job.
            self.ghost_hint_energy = max(0.0, self.ghost_hint_energy
                                         - float(getattr(result, "energy",
                                                         0.0)))

    def begin_run(self, now: Seconds) -> None:
        self._seen_spindowns = 0

    def on_tick(self, now: Seconds) -> None:
        """Hints expire when the disk spins down (window closed)."""
        assert self.env is not None
        spindowns = self.env.disk.spindown_count
        if spindowns > self._seen_spindowns:
            self._seen_spindowns = spindowns
            self.ghost_hint_energy = 0.0
