"""I/O-burst extraction (§2.1).

"We define an I/O burst as a sequence of read/write system calls where
the think time is less than the I/O burst threshold.  In our experiments
we set the threshold as the disk access time, i.e., the average time to
receive the first byte of a random request on disk."  Within a burst,
"multiple requests that sequentially access the same file are merged
into one request of size up to 128 KB, the maximum prefetching window
size in Linux, to simulate the prefetch effects", and the small think
times inside a burst are not counted.

The extractor is used twice: offline, to turn a recorded trace into an
:class:`~repro.core.profile.ExecutionProfile`; and online, inside
:class:`~repro.core.flexfetch.FlexFetchPolicy`, to build the current
run's partial profile as requests stream past (§2.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.devices.specs import HITACHI_DK23DA
from repro.sim.clock import KB
from repro.traces.record import OpType, SyscallRecord
from repro.units import Bytes, Seconds

#: Default burst threshold — the disk access time (avg seek + rotation).
BURST_THRESHOLD_DEFAULT: float = HITACHI_DK23DA.access_time

#: Linux maximum prefetching window (§2.1): merged requests cap here.
MERGE_LIMIT_BYTES: Bytes = 128 * KB


@dataclass(frozen=True, slots=True)
class ProfiledRequest:
    """One merged device-independent request inside a burst."""

    inode: int
    offset: int
    size: int
    op: OpType

    def __post_init__(self) -> None:
        if self.offset < 0 or self.size <= 0:
            raise ValueError("profiled request needs offset>=0, size>0")

    @property
    def end_offset(self) -> int:
        return self.offset + self.size


@dataclass(frozen=True, slots=True)
class IOBurst:
    """A maximal run of calls separated by sub-threshold think times.

    ``start``/``end`` are recorded-run timestamps (used only for stage
    segmentation and diagnostics — replay re-times everything);
    ``requests`` are the post-merge device-independent requests.
    """

    requests: tuple[ProfiledRequest, ...]
    start: float
    end: float

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a burst has at least one request")
        if self.end < self.start:
            raise ValueError("burst ends before it starts")

    @property
    def nbytes(self) -> Bytes:
        """Total bytes requested in the burst."""
        return sum(r.size for r in self.requests)

    @property
    def duration(self) -> Seconds:
        """Recorded wall time of the burst."""
        return self.end - self.start

    @property
    def read_bytes(self) -> Bytes:
        return sum(r.size for r in self.requests if r.op is OpType.READ)

    @property
    def write_bytes(self) -> Bytes:
        return sum(r.size for r in self.requests if r.op is OpType.WRITE)


class _BurstAccumulator:
    """Mutable burst under construction, with sequential merging."""

    def __init__(self, first: SyscallRecord) -> None:
        self.start = first.timestamp
        self.end = first.end_time
        self.merged: list[ProfiledRequest] = []
        self._append(first)

    def _append(self, rec: SyscallRecord) -> None:
        last = self.merged[-1] if self.merged else None
        if (last is not None
                and last.inode == rec.inode
                and last.op == rec.op
                and last.end_offset == rec.offset
                and last.size + rec.size <= MERGE_LIMIT_BYTES):
            self.merged[-1] = ProfiledRequest(
                inode=last.inode, offset=last.offset,
                size=last.size + rec.size, op=last.op)
        else:
            self.merged.append(ProfiledRequest(
                inode=rec.inode, offset=rec.offset, size=rec.size,
                op=rec.op))

    def add(self, rec: SyscallRecord) -> None:
        self._append(rec)
        self.end = max(self.end, rec.end_time)

    def finish(self) -> IOBurst:
        return IOBurst(requests=tuple(self.merged), start=self.start,
                       end=self.end)


def extract_bursts(records: Iterable[SyscallRecord], *,
                   threshold: float = BURST_THRESHOLD_DEFAULT
                   ) -> tuple[list[IOBurst], list[float]]:
    """Split data-moving records into bursts and inter-burst think times.

    Returns ``(bursts, thinks)`` where ``thinks[i]`` is the think time
    *after* ``bursts[i]`` (the final entry is 0.0).  Records must be
    time-ordered; zero-size and non-data calls are skipped.
    """
    if threshold <= 0:
        raise ValueError("burst threshold must be positive")
    bursts: list[IOBurst] = []
    thinks: list[float] = []
    acc: _BurstAccumulator | None = None
    prev_end = 0.0
    for rec in records:
        if not rec.op.moves_data or rec.size == 0:
            continue
        if acc is None:
            acc = _BurstAccumulator(rec)
        else:
            gap = rec.timestamp - prev_end
            if gap >= threshold:
                bursts.append(acc.finish())
                thinks.append(max(0.0, gap))
                acc = _BurstAccumulator(rec)
            else:
                acc.add(rec)
        prev_end = max(prev_end, rec.end_time)
    if acc is not None:
        bursts.append(acc.finish())
        thinks.append(0.0)
    return bursts, thinks


class OnlineBurstTracker:
    """Streaming burst extraction for the current run (§2.3.1).

    Feed each observed request with :meth:`observe`; completed bursts
    accumulate in :attr:`bursts` / :attr:`thinks` with the same semantics
    as :func:`extract_bursts`.  Call :meth:`flush` at end of run to close
    the trailing burst.
    """

    def __init__(self, *, threshold: float = BURST_THRESHOLD_DEFAULT) -> None:
        if threshold <= 0:
            raise ValueError("burst threshold must be positive")
        self.threshold = threshold
        self.bursts: list[IOBurst] = []
        self.thinks: list[float] = []
        self._acc: _BurstAccumulator | None = None
        self._prev_end = 0.0
        self.total_bytes = 0

    def observe(self, inode: int, offset: int, size: int, op: OpType,
                start: float, end: float) -> IOBurst | None:
        """Record one serviced request; returns a burst if one closed."""
        if size <= 0:
            return None
        rec = SyscallRecord(pid=0, fd=0, inode=inode, offset=offset,
                            size=size, op=op, timestamp=start,
                            duration=max(0.0, end - start))
        closed: IOBurst | None = None
        if self._acc is None:
            self._acc = _BurstAccumulator(rec)
        else:
            gap = rec.timestamp - self._prev_end
            if gap >= self.threshold:
                closed = self._acc.finish()
                self.bursts.append(closed)
                self.thinks.append(max(0.0, gap))
                self._acc = _BurstAccumulator(rec)
            else:
                self._acc.add(rec)
        self._prev_end = max(self._prev_end, rec.end_time)
        self.total_bytes += size
        return closed

    def flush(self) -> None:
        """Close the trailing burst (end of run)."""
        if self._acc is not None:
            self.bursts.append(self._acc.finish())
            self.thinks.append(0.0)
            self._acc = None

    def snapshot(self) -> tuple[list[IOBurst], list[float]]:
        """Completed bursts so far plus the in-progress one, if any."""
        bursts = list(self.bursts)
        thinks = list(self.thinks)
        if self._acc is not None:
            bursts.append(self._acc.finish())
            thinks.append(0.0)
        return bursts, thinks
