"""The shared device cost model (§2.2).

"In order to estimate execution times and energy costs for servicing
I/O requests on various data sources, we need to calculate the length of
period of time when a device stays at each power mode.  To this end, we
maintain an on-line simulator for each device to emulate their power
saving policies."

Every (time, energy) what-if number in the reproduction comes from this
module — stage replays for FlexFetch and the clairvoyant oracle,
per-request marginal costs and the ghost-hint investment for BlueFS,
and the §2.3.3 spinning-disk marginal used by the stage audit.  The
policies themselves never touch device arithmetic; they consult the
:class:`CostModel` the :class:`~repro.core.system.MobileSystem` wires
over its live devices.

The on-line simulator here is simply a :meth:`clone` of the live device
model (so the estimate starts from the device's *actual* current power
state) replaying the stage's bursts closed-loop: requests within a burst
go back-to-back, inter-burst think times advance the clone's clock and
let its DPM policy fire — which is precisely what charges Disk-only for
idle watts between sparse bursts and the WNIC for CAM/PSM cycling.

The §2.3.2 buffer-cache filter is applied before estimation: profiled
requests whose data is resident in the page cache are shrunk or dropped.

Two evaluation paths produce the same numbers (DESIGN.md §16).  The
*object path* literally clones the device and replays request by
request.  The *packed path* — taken whenever the device is a stock
:class:`HardDisk` (fixed spin-down timeout, no sleep state) or
:class:`WirelessNic` (no PSM bulk transfers) — first packs the stage
into flat per-request columns (sizes, disk placement, transfer seconds;
numpy when available, ``array``-style lists otherwise), then walks them
in one tight loop that transcribes the clone's meter arithmetic
event-for-event.  Because float addition is not associative, the walk
accumulates per-bucket energy in the exact same order the
:class:`~repro.sim.metrics.EnergyMeter` would, so both paths are
bit-identical — a property the test suite asserts with Hypothesis.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import Protocol

from repro.core.burst import IOBurst, ProfiledRequest
from repro.core.decision import DataSource
from repro.devices.disk import DiskState, HardDisk
from repro.devices.dpm import FixedTimeout
from repro.devices.layout import DiskLayout
from repro.devices.wnic import Direction, WirelessNic, WnicMode
from repro.traces.record import OpType
from repro.units import (
    ABS_TOLERANCE,
    Bytes,
    Joules,
    Seconds,
    transfer_seconds,
)

if os.environ.get("REPRO_NO_NUMPY"):  # forced fallback (CI no-numpy leg)
    _np = None
else:
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - numpy ships with the image
        _np = None

_TOL = ABS_TOLERANCE
_IDLE = DiskState.IDLE.value
_ACTIVE = DiskState.ACTIVE.value
_STANDBY = DiskState.STANDBY.value
_SLEEP = DiskState.SLEEP.value
_CAM = WnicMode.CAM.value
_PSM = WnicMode.PSM.value


@dataclass(frozen=True, slots=True)
class StageEstimate:
    """Estimated cost of servicing a stage from one data source."""

    source: DataSource
    time: Seconds
    energy: Joules
    nbytes: Bytes
    requests: int


@dataclass(frozen=True, slots=True)
class MarginalCost:
    """Estimated (time, energy) of one request given current device state."""

    time: Seconds
    energy: Joules


class ResidencyOracle(Protocol):
    """Anything that can answer 'how much of this range is cached?'."""

    def resident_bytes(self, inode: int, offset: int, size: int) -> Bytes: ...


def filter_cached(bursts: Sequence[IOBurst],
                  vfs: ResidencyOracle) -> list[list[ProfiledRequest]]:
    """Apply the §2.3.2 cache filter to a stage's bursts.

    Returns, per burst, the requests that would still reach a device:
    fully resident requests vanish, partially resident ones shrink by
    the resident byte count (an approximation that preserves totals).
    Reads only — writes always dirty pages regardless of residency.
    """
    filtered: list[list[ProfiledRequest]] = []
    resident_bytes = vfs.resident_bytes
    for burst in bursts:
        keep: list[ProfiledRequest] = []
        for req in burst.requests:
            if req.op is OpType.READ:
                resident = resident_bytes(req.inode, req.offset, req.size)
                if resident <= 0:
                    # Nothing cached: the request passes through
                    # unchanged, so skip rebuilding an identical record.
                    keep.append(req)
                    continue
                remaining = req.size - resident
                if remaining <= 0:
                    continue
                keep.append(ProfiledRequest(
                    inode=req.inode, offset=req.offset,
                    size=remaining, op=req.op))
            else:
                keep.append(req)
        filtered.append(keep)
    return filtered


def replay_stage(source: DataSource,
                 device: HardDisk | WirelessNic,
                 bursts: Sequence[IOBurst],
                 thinks: Sequence[float],
                 *,
                 now: Seconds,
                 layout: DiskLayout | None = None,
                 vfs: ResidencyOracle | None = None,
                 other_device: HardDisk | WirelessNic | None = None,
                 min_duration: Seconds | None = None) -> StageEstimate:
    """Replay a stage through a clone of ``device`` starting at ``now``.

    ``thinks[i]`` follows ``bursts[i]``; the trailing think is not
    charged (it belongs to the next stage).  The estimate's ``time`` is
    from ``now`` to the completion of the last request plus the enclosed
    thinks; ``energy`` is the clone's consumption over that interval.

    When ``other_device`` is given, its clone is advanced (unused) over
    the same interval and its baseline draw — including any DPM
    transitions its idleness triggers — is added to the estimate.  This
    keeps the disk-vs-network comparison honest: choosing the disk still
    pays the WNIC's PSM idle watts, and choosing the network lets an
    active disk time out and spin down.

    ``min_duration`` extends the measured interval to at least that many
    seconds past ``now`` — the stage-end audit uses it so a stage whose
    requests finished early still charges the serving device's trailing
    idle, exactly as the measured side does.
    """
    if len(bursts) != len(thinks):
        raise ValueError("bursts and thinks must align")
    request_lists = (filter_cached(bursts, vfs) if vfs is not None
                     else [list(b.requests) for b in bursts])
    return _replay_requests(source, device, request_lists, thinks,
                            now=now, layout=layout,
                            other_device=other_device,
                            min_duration=min_duration)


def _packed_ok(device: HardDisk | WirelessNic) -> bool:
    """Whether the packed kernel reproduces a clone of ``device``.

    Clones are always fault-blind (``clone()`` drops the schedule), so
    an attached fault schedule never disqualifies a device; what does
    is machinery the walk does not model: subclasses, adaptive
    spin-down timeouts, the optional sleep state, and PSM bulk
    transfers.
    """
    if type(device) is HardDisk:
        return (type(device.spindown_policy) is FixedTimeout
                and device.spec.sleep_timeout is None
                and device.state != _SLEEP)
    if type(device) is WirelessNic:
        return not device.spec.psm_transfer_enabled
    return False


def _replay_requests(source: DataSource,
                     device: HardDisk | WirelessNic,
                     request_lists: Sequence[Sequence[ProfiledRequest]],
                     thinks: Sequence[float], *,
                     now: Seconds,
                     layout: DiskLayout | None,
                     other_device: HardDisk | WirelessNic | None,
                     min_duration: Seconds | None,
                     pack: _PackedStage | None = None) -> StageEstimate:
    """Dispatch a cache-filtered stage to the packed or object path."""
    if _packed_ok(device) and (other_device is None
                               or _packed_ok(other_device)):
        if pack is None:
            pack = _PackedStage(
                request_lists,
                layout if type(device) is HardDisk else None)
        return _replay_packed(source, device, pack, thinks, now=now,
                              other_device=other_device,
                              min_duration=min_duration)
    return _replay_object(source, device, request_lists, thinks, now=now,
                          layout=layout, other_device=other_device,
                          min_duration=min_duration)


class _PackedStage:
    """Device-independent flat columns for one cache-filtered stage.

    One instance serves both sides of a :meth:`CostModel.stage_pair`:
    the placement lookups happen once, and the per-request sizes are
    converted to transfer seconds per device bandwidth on demand.
    """

    __slots__ = ("counts", "sizes", "blocks", "nblocks", "recv",
                 "total_bytes", "total_requests", "_sizes_f")

    def __init__(self,
                 request_lists: Sequence[Sequence[ProfiledRequest]],
                 layout: DiskLayout | None) -> None:
        counts: list[int] = []
        sizes: list[int] = []
        blocks: list[int | None] = []
        nblocks: list[int] = []
        recv: list[bool] = []
        for requests in request_lists:
            counts.append(len(requests))
            for req in requests:
                if req.size < 0:
                    raise ValueError("negative request size")
                sizes.append(req.size)
                recv.append(req.op is OpType.READ)
                block = None
                nb = 0
                if layout is not None and req.inode in layout:
                    # Same placement rule as the object path: profiled
                    # offsets past the current file fall back to an
                    # average seek (block stays None).
                    ext = layout.get(req.inode)
                    rel = req.offset // 4096
                    if rel < ext.nblocks:
                        block = ext.start_block + rel
                        nb = -(-req.size // 4096)
                blocks.append(block)
                nblocks.append(nb)
        self.counts = counts
        self.sizes = sizes
        self.blocks = blocks
        self.nblocks = nblocks
        self.recv = recv
        self.total_bytes = sum(sizes)
        self.total_requests = len(sizes)
        self._sizes_f = None

    def transfer_column(self,
                        bandwidth_bps: BytesPerSecond) -> list[float]:
        """Per-request transfer seconds (``size / bandwidth``).

        The numpy path and the scalar fallback are bit-identical: both
        perform one correctly-rounded int->float64 conversion and one
        IEEE-754 division per element.
        """
        if _np is not None:
            if self._sizes_f is None:
                self._sizes_f = _np.asarray(self.sizes, dtype=_np.float64)
            return (self._sizes_f / bandwidth_bps).tolist()
        return [transfer_seconds(size, bandwidth_bps)
                for size in self.sizes]


#: shared empty stage for other-device baseline walks.
_NO_REQUESTS: _PackedStage | None = None


def _empty_pack() -> _PackedStage:
    global _NO_REQUESTS
    if _NO_REQUESTS is None:
        _NO_REQUESTS = _PackedStage((), None)
    return _NO_REQUESTS


def _replay_packed(source: DataSource,
                   device: HardDisk | WirelessNic,
                   pack: _PackedStage,
                   thinks: Sequence[float], *,
                   now: Seconds,
                   other_device: HardDisk | WirelessNic | None,
                   min_duration: Seconds | None) -> StageEstimate:
    end_floor = now + min_duration if min_duration is not None else None
    if type(device) is HardDisk:
        transfers = pack.transfer_column(device.spec.bandwidth_bps)
        t, energy = _disk_walk(device, pack, transfers, thinks, now,
                               end_floor)
    else:
        transfers = pack.transfer_column(device.spec.bandwidth_bps)
        t, energy = _wnic_walk(device, pack, transfers, thinks, now,
                               end_floor)
    if other_device is not None:
        other_end = t if t >= now else now
        empty = _empty_pack()
        if type(other_device) is HardDisk:
            _, other_energy = _disk_walk(other_device, empty, (), (),
                                         now, other_end)
        else:
            _, other_energy = _wnic_walk(other_device, empty, (), (),
                                         now, other_end)
        energy += other_energy
    return StageEstimate(source=source, time=max(0.0, t - now),
                         energy=energy, nbytes=pack.total_bytes,
                         requests=pack.total_requests)


def _disk_walk(device: HardDisk, pack: _PackedStage,
               transfers: Sequence[float], thinks: Sequence[float],
               now: Seconds, end_floor: float | None) -> tuple[float, float]:
    """Replay packed requests against a virtual clone of ``device``.

    Transcribes ``HardDisk.service`` / ``advance_to`` / the meter's
    bucket accumulation into plain locals, in the exact event order of
    the object path — including the zero-joule transition impulses,
    whose bucket insertions fix the order ``EnergyMeter.total`` sums in.
    Returns ``(end_time, max(0.0, energy_delta))``.
    """
    spec = device.spec
    idle_power = spec.idle_power
    active_power = spec.active_power
    standby_power = spec.standby_power
    access_time = spec.access_time
    t2t = spec.track_to_track_time
    avg_rotation = spec.avg_rotation_time
    seek_k = (spec.avg_seek_time - t2t) * 1.5
    total_blocks = max(1, spec.capacity_bytes // 4096)
    near = HardDisk.NEAR_SEEK_BLOCKS
    timeout = device.spindown_policy.timeout()
    trs = device._transitions
    sd = trs[(_IDLE, _STANDBY)]
    su = trs[(_STANDBY, _ACTIVE)]
    ia = trs[(_IDLE, _ACTIVE)]
    ai = trs[(_ACTIVE, _IDLE)]

    # clone(): fresh meter at the live meter's clock, current draw.
    meter = device.meter
    m_last = meter.last_time
    m_power = meter.power
    state = device.state
    m_bucket = "disk." + state
    last_activity = device.last_activity
    busy_until = device.busy_until
    head = device._head_position
    energy: dict[str, float] = {}
    get = energy.get

    def _advance_dpm(upto: float) -> None:
        # PowerStateMachine.advance_to + HardDisk._apply_dpm, inlined.
        nonlocal state, m_last, m_power, m_bucket, busy_until
        if upto <= m_last:
            return
        if state == _IDLE:
            deadline = (last_activity if last_activity >= busy_until
                        else busy_until) + timeout
            if upto >= deadline:
                dt = deadline - m_last
                if dt > 0.0 and m_power > _TOL:
                    energy[m_bucket] = get(m_bucket, 0.0) + m_power * dt
                if deadline > m_last:
                    m_last = deadline
                energy["disk.spindown"] = \
                    get("disk.spindown", 0.0) + sd.energy
                done = deadline + sd.time
                state = _STANDBY
                # transition window draws nothing; standby power after.
                if done > m_last:
                    m_last = done
                m_power = standby_power
                m_bucket = "disk.standby"
                if done > busy_until:
                    busy_until = done
        dt = upto - m_last
        if dt > 0.0 and m_power > _TOL:
            energy[m_bucket] = get(m_bucket, 0.0) + m_power * dt
        if upto > m_last:
            m_last = upto

    _advance_dpm(now)
    e0 = sum(energy.values())

    t = now
    idx = 0
    counts = pack.counts
    blocks = pack.blocks
    nblocks = pack.nblocks
    n_bursts = len(counts)
    for bi in range(n_bursts):
        for _ in range(counts[bi]):
            block = blocks[idx]
            nb = nblocks[idx]
            transfer = transfers[idx]
            idx += 1
            # service(t, ...): its advance_to(t) is a no-op here — the
            # walk keeps meter.last_time >= t at every request entry.
            start = t if t >= busy_until else busy_until
            dt = start - m_last
            if dt > 0.0 and m_power > _TOL:
                energy[m_bucket] = get(m_bucket, 0.0) + m_power * dt
            if start > m_last:
                m_last = start
            if state == _STANDBY:
                # demand spin-up (quiet-period feedback is a no-op for
                # FixedTimeout, the only policy this walk accepts)
                energy["disk.spinup"] = \
                    get("disk.spinup", 0.0) + su.energy
                done = start + su.time
                state = _ACTIVE
                if done > m_last:
                    m_last = done
                m_power = active_power
                m_bucket = "disk.active"
                if done > busy_until:
                    busy_until = done
                start = done
            elif state == _IDLE:
                energy["disk.idle->active"] = \
                    get("disk.idle->active", 0.0) + ia.energy
                done = start + ia.time
                state = _ACTIVE
                if done > m_last:
                    m_last = done
                m_power = active_power
                m_bucket = "disk.active"
                if done > busy_until:
                    busy_until = done
                # service() discards this transition's completion time.
            if block is None or head is None:
                position = access_time
            else:
                distance = block - head
                if distance < 0:
                    distance = -distance
                if distance == 0:
                    position = 0.0
                elif distance <= near:
                    position = t2t
                else:
                    frac = distance / total_blocks
                    if frac > 1.0:
                        frac = 1.0
                    position = t2t + seek_k * frac ** 0.5 + avg_rotation
            first_byte = start + position
            completion = first_byte + transfer
            # set_power(start, active, "disk.active"): advance no-ops.
            m_power = active_power
            m_bucket = "disk.active"
            dt = completion - m_last
            if dt > 0.0 and m_power > _TOL:
                energy[m_bucket] = get(m_bucket, 0.0) + m_power * dt
            if completion > m_last:
                m_last = completion
            # transition(completion, IDLE)
            energy["disk.active->idle"] = \
                get("disk.active->idle", 0.0) + ai.energy
            done = completion + ai.time
            state = _IDLE
            if done > m_last:
                m_last = done
            m_power = idle_power
            m_bucket = "disk.idle"
            if done > busy_until:
                busy_until = done
            if completion > last_activity:
                last_activity = completion
            if completion > busy_until:
                busy_until = completion
            if block is not None:
                head = block + nb
            t = completion
        if bi != n_bursts - 1:
            t += thinks[bi]
            _advance_dpm(t)
    if end_floor is not None and end_floor > t:
        t = end_floor
    _advance_dpm(t)
    e1 = sum(energy.values())
    delta = e1 - e0
    return t, (delta if delta > 0.0 else 0.0)


def _wnic_walk(device: WirelessNic, pack: _PackedStage,
               transfers: Sequence[float], thinks: Sequence[float],
               now: Seconds, end_floor: float | None) -> tuple[float, float]:
    """Packed-column twin of :func:`_disk_walk` for the WNIC.

    Transcribes ``WirelessNic.service`` (CAM path — PSM bulk transfers
    disqualify the device in :func:`_packed_ok`) and the CAM->PSM doze
    timeout.  Returns ``(end_time, max(0.0, energy_delta))``.
    """
    spec = device.spec
    cam_idle = spec.cam_idle_power
    psm_idle = spec.psm_idle_power
    cam_timeout = spec.cam_timeout
    latency = spec.latency
    recv_power = spec.cam_recv_power
    send_power = spec.cam_send_power
    trs = device._transitions
    doze = trs[(_CAM, _PSM)]
    wake = trs[(_PSM, _CAM)]

    meter = device.meter
    m_last = meter.last_time
    m_power = meter.power
    state = device.state
    m_bucket = "wnic." + state
    last_activity = device.last_activity
    busy_until = device.busy_until
    energy: dict[str, float] = {}
    get = energy.get

    def _advance_dpm(upto: float) -> None:
        # PowerStateMachine.advance_to + WirelessNic._apply_dpm, inlined.
        nonlocal state, m_last, m_power, m_bucket, busy_until
        if upto <= m_last:
            return
        if state == _CAM:
            deadline = (last_activity if last_activity >= busy_until
                        else busy_until) + cam_timeout
            if upto >= deadline:
                dt = deadline - m_last
                if dt > 0.0 and m_power > _TOL:
                    energy[m_bucket] = get(m_bucket, 0.0) + m_power * dt
                if deadline > m_last:
                    m_last = deadline
                energy["wnic.doze"] = get("wnic.doze", 0.0) + doze.energy
                done = deadline + doze.time
                state = _PSM
                if done > m_last:
                    m_last = done
                m_power = psm_idle
                m_bucket = "wnic.psm"
                if done > busy_until:
                    busy_until = done
        dt = upto - m_last
        if dt > 0.0 and m_power > _TOL:
            energy[m_bucket] = get(m_bucket, 0.0) + m_power * dt
        if upto > m_last:
            m_last = upto

    _advance_dpm(now)
    e0 = sum(energy.values())

    t = now
    idx = 0
    counts = pack.counts
    recvs = pack.recv
    n_bursts = len(counts)
    for bi in range(n_bursts):
        for _ in range(counts[bi]):
            transfer = transfers[idx]
            is_recv = recvs[idx]
            idx += 1
            start = t if t >= busy_until else busy_until
            dt = start - m_last
            if dt > 0.0 and m_power > _TOL:
                energy[m_bucket] = get(m_bucket, 0.0) + m_power * dt
            if start > m_last:
                m_last = start
            if state == _PSM:
                # transition(start, CAM, bucket="wnic.wakeup")
                energy["wnic.wakeup"] = \
                    get("wnic.wakeup", 0.0) + wake.energy
                done = start + wake.time
                state = _CAM
                if done > m_last:
                    m_last = done
                m_power = cam_idle
                m_bucket = "wnic.cam"
                if done > busy_until:
                    busy_until = done
                start = done
            first_byte = start + latency
            completion = first_byte + transfer
            # latency waits in CAM idle; transfer at directional power.
            m_power = cam_idle
            m_bucket = "wnic.cam"
            dt = first_byte - m_last
            if dt > 0.0 and m_power > _TOL:
                energy[m_bucket] = get(m_bucket, 0.0) + m_power * dt
            if first_byte > m_last:
                m_last = first_byte
            if is_recv:
                m_power = recv_power
                m_bucket = "wnic.recv"
            else:
                m_power = send_power
                m_bucket = "wnic.send"
            dt = completion - m_last
            if dt > 0.0 and m_power > _TOL:
                energy[m_bucket] = get(m_bucket, 0.0) + m_power * dt
            if completion > m_last:
                m_last = completion
            # set_state_power(completion): back to CAM idle draw.
            m_power = cam_idle
            m_bucket = "wnic.cam"
            if completion > last_activity:
                last_activity = completion
            if completion > busy_until:
                busy_until = completion
            t = completion
        if bi != n_bursts - 1:
            t += thinks[bi]
            _advance_dpm(t)
    if end_floor is not None and end_floor > t:
        t = end_floor
    _advance_dpm(t)
    e1 = sum(energy.values())
    delta = e1 - e0
    return t, (delta if delta > 0.0 else 0.0)


def _replay_object(source: DataSource,
                   device: HardDisk | WirelessNic,
                   request_lists: Sequence[Sequence[ProfiledRequest]],
                   thinks: Sequence[float], *,
                   now: Seconds,
                   layout: DiskLayout | None,
                   other_device: HardDisk | WirelessNic | None,
                   min_duration: Seconds | None) -> StageEstimate:
    """The literal clone-and-replay path (and the packed path's oracle)."""
    clone = device.clone()
    clone.advance_to(now)
    e0 = clone.energy(now)

    t = now
    total_bytes = 0
    total_requests = 0
    is_disk = isinstance(clone, HardDisk)
    for i, requests in enumerate(request_lists):
        for req in requests:
            total_bytes += req.size
            total_requests += 1
            if is_disk:
                block = None
                nblocks = None
                if layout is not None and req.inode in layout:
                    # Profiled offsets come from a *prior* run and may
                    # exceed the current file (different data set);
                    # unknown placement falls back to an average seek.
                    ext = layout.get(req.inode)
                    rel = req.offset // 4096
                    if rel < ext.nblocks:
                        block = ext.start_block + rel
                        nblocks = -(-req.size // 4096)
                result = clone.service(t, req.size, block=block,
                                       block_count=nblocks)
            else:
                direction = (Direction.RECV if req.op is OpType.READ
                             else Direction.SEND)
                result = clone.service(t, req.size, direction=direction)
            t = result.completion
        is_last = i == len(request_lists) - 1
        if not is_last:
            t += thinks[i]
            clone.advance_to(t)
    if min_duration is not None:
        t = max(t, now + min_duration)
    clone.advance_to(t)
    e1 = clone.energy(t)
    energy = max(0.0, e1 - e0)
    if other_device is not None:
        other = other_device.clone()
        other.advance_to(now)
        oe0 = other.energy(now)
        other.advance_to(max(t, now))
        energy += max(0.0, other.energy(max(t, now)) - oe0)
    return StageEstimate(source=source, time=max(0.0, t - now),
                         energy=energy,
                         nbytes=total_bytes, requests=total_requests)


class CostModel:
    """What-if cost oracle bound to a system's devices and disk layout.

    One instance lives on each
    :class:`~repro.core.system.MobileSystem` (as ``env.cost_model``).
    All estimates clone; the live devices are only ever *advanced*
    (idempotent forward in time), never serviced.
    """

    def __init__(self, disk: HardDisk, wnic: WirelessNic,
                 layout: DiskLayout | None = None) -> None:
        self.disk = disk
        self.wnic = wnic
        self.layout = layout
        # Per-device constants, computed once instead of per request.
        # Specs are frozen dataclasses, so these can never go stale; the
        # expressions mirror the spec properties exactly so every float
        # is bit-identical to the recomputed form.
        spec = disk.spec
        self._disk_access_time: Seconds = (spec.avg_seek_time
                                           + spec.avg_rotation_time)
        self._disk_bandwidth_bps = spec.bandwidth_bps
        self._disk_active_above_idle: float = (spec.active_power
                                               - spec.idle_power)
        self._disk_transition_investment: Joules = (spec.spinup_energy
                                                    + spec.spindown_energy)

    # -- stage-granular estimates --------------------------------------
    def stage_estimate(self, source: DataSource,
                       bursts: Sequence[IOBurst],
                       thinks: Sequence[float], *,
                       now: Seconds,
                       vfs: ResidencyOracle | None = None,
                       include_other: bool = True,
                       min_duration: Seconds | None = None,
                       disk: HardDisk | None = None,
                       wnic: WirelessNic | None = None) -> StageEstimate:
        """One scenario's estimate for a stage.

        ``disk``/``wnic`` override the live devices (FlexFetch-static
        estimates from pristine devices, blind to the runtime states);
        ``include_other=False`` drops the idle cross-baseline — the
        stage-end audit compares single-device energies.
        """
        d = disk if disk is not None else self.disk
        w = wnic if wnic is not None else self.wnic
        device: HardDisk | WirelessNic = \
            d if source is DataSource.DISK else w
        other: HardDisk | WirelessNic | None = None
        if include_other:
            other = w if source is DataSource.DISK else d
        return replay_stage(source, device, bursts, thinks, now=now,
                            layout=self.layout, vfs=vfs,
                            other_device=other,
                            min_duration=min_duration)

    def stage_pair(self, bursts: Sequence[IOBurst],
                   thinks: Sequence[float], *,
                   now: Seconds,
                   vfs: ResidencyOracle | None = None,
                   disk: HardDisk | None = None,
                   wnic: WirelessNic | None = None
                   ) -> tuple[StageEstimate, StageEstimate]:
        """Both scenarios' estimates, cross-baselines included.

        The §2.3.2 cache filter and the request packing run once and
        feed both replays — the pair is the hot call of FlexFetch's
        stage loop, and residency queries dominate its setup cost.
        """
        if len(bursts) != len(thinks):
            raise ValueError("bursts and thinks must align")
        d_dev = disk if disk is not None else self.disk
        w_dev = wnic if wnic is not None else self.wnic
        request_lists = (filter_cached(bursts, vfs) if vfs is not None
                         else [list(b.requests) for b in bursts])
        pack = (_PackedStage(request_lists, self.layout)
                if _packed_ok(d_dev) and _packed_ok(w_dev) else None)
        d = _replay_requests(DataSource.DISK, d_dev, request_lists,
                             thinks, now=now, layout=self.layout,
                             other_device=w_dev, min_duration=None,
                             pack=pack)
        n = _replay_requests(DataSource.NETWORK, w_dev, request_lists,
                             thinks, now=now, layout=self.layout,
                             other_device=d_dev, min_duration=None,
                             pack=pack)
        return d, n

    # -- per-request marginal costs (BlueFS's myopic view) -------------
    def marginal_pair(self, now: Seconds, nbytes: Bytes,
                      op: OpType) -> tuple[MarginalCost, MarginalCost]:
        """(disk, network) marginal cost of one request *right now*.

        Advances the live devices to ``now`` first so a pending DPM
        timeout (spin-down, CAM->PSM) is reflected in the device state
        the estimate starts from.
        """
        self.disk.advance_to(now)
        self.wnic.advance_to(now)
        t_d, e_d = self.disk.estimate_service(nbytes)
        direction = Direction.RECV if op is OpType.READ else Direction.SEND
        t_n, e_n = self.wnic.estimate_service(nbytes, direction=direction)
        return MarginalCost(t_d, e_d), MarginalCost(t_n, e_n)

    def disk_marginal(self, nbytes: Bytes, *,
                      from_state: str | None = None) -> MarginalCost:
        """Marginal disk cost of one request, optionally from a forced
        power state (the ghost-hint counterfactual uses IDLE)."""
        if from_state is None:
            t, e = self.disk.estimate_service(nbytes)
        else:
            t, e = self.disk.estimate_service(nbytes,
                                              from_state=from_state)
        return MarginalCost(t, e)

    # -- one-time investments and marginals ----------------------------
    def disk_transition_investment(self) -> Joules:
        """Energy of one spin-up + spin-down round trip — the
        break-even investment ghost hints must cover (§1.2)."""
        return self._disk_transition_investment

    def spinning_disk_marginal_energy(
            self, sizes: Iterable[Bytes]) -> Joules:
        """Marginal joules of servicing requests on an already-spinning
        disk: service time priced at active-above-idle watts (§2.3.3,
        "almost free" when something else keeps the disk up)."""
        access_time = self._disk_access_time
        bandwidth = self._disk_bandwidth_bps
        active_above_idle = self._disk_active_above_idle
        marginal = 0.0
        for size in sizes:
            marginal += (access_time + size / bandwidth) * active_above_idle
        return marginal
