"""The shared device cost model (§2.2).

"In order to estimate execution times and energy costs for servicing
I/O requests on various data sources, we need to calculate the length of
period of time when a device stays at each power mode.  To this end, we
maintain an on-line simulator for each device to emulate their power
saving policies."

Every (time, energy) what-if number in the reproduction comes from this
module — stage replays for FlexFetch and the clairvoyant oracle,
per-request marginal costs and the ghost-hint investment for BlueFS,
and the §2.3.3 spinning-disk marginal used by the stage audit.  The
policies themselves never touch device arithmetic; they consult the
:class:`CostModel` the :class:`~repro.core.system.MobileSystem` wires
over its live devices.

The on-line simulator here is simply a :meth:`clone` of the live device
model (so the estimate starts from the device's *actual* current power
state) replaying the stage's bursts closed-loop: requests within a burst
go back-to-back, inter-burst think times advance the clone's clock and
let its DPM policy fire — which is precisely what charges Disk-only for
idle watts between sparse bursts and the WNIC for CAM/PSM cycling.

The §2.3.2 buffer-cache filter is applied before estimation: profiled
requests whose data is resident in the page cache are shrunk or dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import Protocol

from repro.core.burst import IOBurst, ProfiledRequest
from repro.core.decision import DataSource
from repro.devices.disk import HardDisk
from repro.devices.layout import DiskLayout
from repro.devices.wnic import Direction, WirelessNic
from repro.traces.record import OpType
from repro.units import Bytes, Joules, Seconds


@dataclass(frozen=True, slots=True)
class StageEstimate:
    """Estimated cost of servicing a stage from one data source."""

    source: DataSource
    time: Seconds
    energy: Joules
    nbytes: Bytes
    requests: int


@dataclass(frozen=True, slots=True)
class MarginalCost:
    """Estimated (time, energy) of one request given current device state."""

    time: Seconds
    energy: Joules


class ResidencyOracle(Protocol):
    """Anything that can answer 'how much of this range is cached?'."""

    def resident_bytes(self, inode: int, offset: int, size: int) -> Bytes: ...


def filter_cached(bursts: Sequence[IOBurst],
                  vfs: ResidencyOracle) -> list[list[ProfiledRequest]]:
    """Apply the §2.3.2 cache filter to a stage's bursts.

    Returns, per burst, the requests that would still reach a device:
    fully resident requests vanish, partially resident ones shrink by
    the resident byte count (an approximation that preserves totals).
    Reads only — writes always dirty pages regardless of residency.
    """
    filtered: list[list[ProfiledRequest]] = []
    resident_bytes = vfs.resident_bytes
    for burst in bursts:
        keep: list[ProfiledRequest] = []
        for req in burst.requests:
            if req.op is OpType.READ:
                resident = resident_bytes(req.inode, req.offset, req.size)
                if resident <= 0:
                    # Nothing cached: the request passes through
                    # unchanged, so skip rebuilding an identical record.
                    keep.append(req)
                    continue
                remaining = req.size - resident
                if remaining <= 0:
                    continue
                keep.append(ProfiledRequest(
                    inode=req.inode, offset=req.offset,
                    size=remaining, op=req.op))
            else:
                keep.append(req)
        filtered.append(keep)
    return filtered


def replay_stage(source: DataSource,
                 device: HardDisk | WirelessNic,
                 bursts: Sequence[IOBurst],
                 thinks: Sequence[float],
                 *,
                 now: Seconds,
                 layout: DiskLayout | None = None,
                 vfs: ResidencyOracle | None = None,
                 other_device: HardDisk | WirelessNic | None = None,
                 min_duration: Seconds | None = None) -> StageEstimate:
    """Replay a stage through a clone of ``device`` starting at ``now``.

    ``thinks[i]`` follows ``bursts[i]``; the trailing think is not
    charged (it belongs to the next stage).  The estimate's ``time`` is
    from ``now`` to the completion of the last request plus the enclosed
    thinks; ``energy`` is the clone's consumption over that interval.

    When ``other_device`` is given, its clone is advanced (unused) over
    the same interval and its baseline draw — including any DPM
    transitions its idleness triggers — is added to the estimate.  This
    keeps the disk-vs-network comparison honest: choosing the disk still
    pays the WNIC's PSM idle watts, and choosing the network lets an
    active disk time out and spin down.

    ``min_duration`` extends the measured interval to at least that many
    seconds past ``now`` — the stage-end audit uses it so a stage whose
    requests finished early still charges the serving device's trailing
    idle, exactly as the measured side does.
    """
    if len(bursts) != len(thinks):
        raise ValueError("bursts and thinks must align")
    clone = device.clone()
    clone.advance_to(now)
    e0 = clone.energy(now)

    request_lists = (filter_cached(bursts, vfs) if vfs is not None
                     else [list(b.requests) for b in bursts])

    t = now
    total_bytes = 0
    total_requests = 0
    is_disk = isinstance(clone, HardDisk)
    for i, requests in enumerate(request_lists):
        for req in requests:
            total_bytes += req.size
            total_requests += 1
            if is_disk:
                block = None
                nblocks = None
                if layout is not None and req.inode in layout:
                    # Profiled offsets come from a *prior* run and may
                    # exceed the current file (different data set);
                    # unknown placement falls back to an average seek.
                    ext = layout.get(req.inode)
                    rel = req.offset // 4096
                    if rel < ext.nblocks:
                        block = ext.start_block + rel
                        nblocks = -(-req.size // 4096)
                result = clone.service(t, req.size, block=block,
                                       block_count=nblocks)
            else:
                direction = (Direction.RECV if req.op is OpType.READ
                             else Direction.SEND)
                result = clone.service(t, req.size, direction=direction)
            t = result.completion
        is_last = i == len(request_lists) - 1
        if not is_last:
            t += thinks[i]
            clone.advance_to(t)
    if min_duration is not None:
        t = max(t, now + min_duration)
    clone.advance_to(t)
    e1 = clone.energy(t)
    energy = max(0.0, e1 - e0)
    if other_device is not None:
        other = other_device.clone()
        other.advance_to(now)
        oe0 = other.energy(now)
        other.advance_to(max(t, now))
        energy += max(0.0, other.energy(max(t, now)) - oe0)
    return StageEstimate(source=source, time=max(0.0, t - now),
                         energy=energy,
                         nbytes=total_bytes, requests=total_requests)


class CostModel:
    """What-if cost oracle bound to a system's devices and disk layout.

    One instance lives on each
    :class:`~repro.core.system.MobileSystem` (as ``env.cost_model``).
    All estimates clone; the live devices are only ever *advanced*
    (idempotent forward in time), never serviced.
    """

    def __init__(self, disk: HardDisk, wnic: WirelessNic,
                 layout: DiskLayout | None = None) -> None:
        self.disk = disk
        self.wnic = wnic
        self.layout = layout
        # Per-device constants, computed once instead of per request.
        # Specs are frozen dataclasses, so these can never go stale; the
        # expressions mirror the spec properties exactly so every float
        # is bit-identical to the recomputed form.
        spec = disk.spec
        self._disk_access_time: Seconds = (spec.avg_seek_time
                                           + spec.avg_rotation_time)
        self._disk_bandwidth_bps = spec.bandwidth_bps
        self._disk_active_above_idle: float = (spec.active_power
                                               - spec.idle_power)
        self._disk_transition_investment: Joules = (spec.spinup_energy
                                                    + spec.spindown_energy)

    # -- stage-granular estimates --------------------------------------
    def stage_estimate(self, source: DataSource,
                       bursts: Sequence[IOBurst],
                       thinks: Sequence[float], *,
                       now: Seconds,
                       vfs: ResidencyOracle | None = None,
                       include_other: bool = True,
                       min_duration: Seconds | None = None,
                       disk: HardDisk | None = None,
                       wnic: WirelessNic | None = None) -> StageEstimate:
        """One scenario's estimate for a stage.

        ``disk``/``wnic`` override the live devices (FlexFetch-static
        estimates from pristine devices, blind to the runtime states);
        ``include_other=False`` drops the idle cross-baseline — the
        stage-end audit compares single-device energies.
        """
        d = disk if disk is not None else self.disk
        w = wnic if wnic is not None else self.wnic
        device: HardDisk | WirelessNic = \
            d if source is DataSource.DISK else w
        other: HardDisk | WirelessNic | None = None
        if include_other:
            other = w if source is DataSource.DISK else d
        return replay_stage(source, device, bursts, thinks, now=now,
                            layout=self.layout, vfs=vfs,
                            other_device=other,
                            min_duration=min_duration)

    def stage_pair(self, bursts: Sequence[IOBurst],
                   thinks: Sequence[float], *,
                   now: Seconds,
                   vfs: ResidencyOracle | None = None,
                   disk: HardDisk | None = None,
                   wnic: WirelessNic | None = None
                   ) -> tuple[StageEstimate, StageEstimate]:
        """Both scenarios' estimates, cross-baselines included."""
        d = self.stage_estimate(DataSource.DISK, bursts, thinks, now=now,
                                vfs=vfs, disk=disk, wnic=wnic)
        n = self.stage_estimate(DataSource.NETWORK, bursts, thinks,
                                now=now, vfs=vfs, disk=disk, wnic=wnic)
        return d, n

    # -- per-request marginal costs (BlueFS's myopic view) -------------
    def marginal_pair(self, now: Seconds, nbytes: Bytes,
                      op: OpType) -> tuple[MarginalCost, MarginalCost]:
        """(disk, network) marginal cost of one request *right now*.

        Advances the live devices to ``now`` first so a pending DPM
        timeout (spin-down, CAM->PSM) is reflected in the device state
        the estimate starts from.
        """
        self.disk.advance_to(now)
        self.wnic.advance_to(now)
        t_d, e_d = self.disk.estimate_service(nbytes)
        direction = Direction.RECV if op is OpType.READ else Direction.SEND
        t_n, e_n = self.wnic.estimate_service(nbytes, direction=direction)
        return MarginalCost(t_d, e_d), MarginalCost(t_n, e_n)

    def disk_marginal(self, nbytes: Bytes, *,
                      from_state: str | None = None) -> MarginalCost:
        """Marginal disk cost of one request, optionally from a forced
        power state (the ghost-hint counterfactual uses IDLE)."""
        if from_state is None:
            t, e = self.disk.estimate_service(nbytes)
        else:
            t, e = self.disk.estimate_service(nbytes,
                                              from_state=from_state)
        return MarginalCost(t, e)

    # -- one-time investments and marginals ----------------------------
    def disk_transition_investment(self) -> Joules:
        """Energy of one spin-up + spin-down round trip — the
        break-even investment ghost hints must cover (§1.2)."""
        return self._disk_transition_investment

    def spinning_disk_marginal_energy(
            self, sizes: Iterable[Bytes]) -> Joules:
        """Marginal joules of servicing requests on an already-spinning
        disk: service time priced at active-above-idle watts (§2.3.3,
        "almost free" when something else keeps the disk up)."""
        access_time = self._disk_access_time
        bandwidth = self._disk_bandwidth_bps
        active_above_idle = self._disk_active_above_idle
        marginal = 0.0
        for size in sizes:
            marginal += (access_time + size / bandwidth) * active_above_idle
        return marginal
